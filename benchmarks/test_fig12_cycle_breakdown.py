"""Figure 12: breakdown of total cycles for the automatic KDG runtime.

The paper profiles AVI, Billiards, DES and MST under their KDG-Auto
executors and buckets all cycles (summed over threads) into SAFETY_TEST /
EXECUTE / SCHEDULE / OTHER, for the serial baseline (S) and 1-40 threads.
Expected shapes: SCHEDULE (KDG maintenance) is a large share and grows
with thread count; unstable-source apps (Billiards, DES) show a
SAFETY_TEST component; DES scales worst (low parallelism, §5.2).
"""

from repro import SimMachine
from repro.apps import APPS
from repro.machine import Category

from .harness import make_state, save_results

FIG12_APPS = ["avi", "billiards", "des", "mst"]
THREADS = [1, 10, 20, 30, 40]
BUCKETS = [Category.SAFETY_TEST, Category.EXECUTE, Category.SCHEDULE, Category.OTHER]


def _bucketed(stats) -> dict[str, float]:
    """Collapse the profile into the paper's four buckets.

    Idle/commit/abort cycles fold into OTHER (the profiler's 'cost that
    could not be categorized'), except idle on the serial run (none).
    """
    raw = stats.breakdown()
    out = {bucket.value: raw[bucket] for bucket in BUCKETS}
    out[Category.OTHER.value] += raw[Category.IDLE]
    return out


def test_fig12_cycle_breakdown(benchmark):
    def sweep():
        table: dict[str, dict[str, dict[str, float]]] = {}
        for app in FIG12_APPS:
            spec = APPS[app]
            table[app] = {}
            state = make_state(app, "small")
            serial = spec.run(state, "serial", SimMachine(1))
            spec.validate(state)
            table[app]["S"] = _bucketed(serial.stats)
            for threads in THREADS:
                state = make_state(app, "small")
                result = spec.run(state, "kdg-auto", SimMachine(threads))
                spec.validate(state)
                table[app][str(threads)] = _bucketed(result.stats)
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_results("fig12", table)

    print("\n=== Figure 12: total-cycle breakdown (billions -> millions here) ===")
    for app, columns in table.items():
        print(f"\n{app}:")
        print(f"{'threads':>8} " + " ".join(f"{b.value:>13}" for b in BUCKETS))
        for label, buckets in columns.items():
            cells = " ".join(f"{buckets[b.value] / 1e6:>12.2f}M" for b in BUCKETS)
            print(f"{label:>8} {cells}")

    for app, columns in table.items():
        # KDG maintenance (SCHEDULE) grows with the number of threads,
        # "with the exception of DES" (§5.2 — low parallelism makes its
        # in-flight graph shrink), which we reproduce.
        if app == "des":
            assert (
                columns["40"][Category.SCHEDULE.value]
                >= 0.75 * columns["1"][Category.SCHEDULE.value]
            )
        else:
            assert (
                columns["40"][Category.SCHEDULE.value]
                >= columns["1"][Category.SCHEDULE.value]
            )
        # EXECUTE cycles also grow with threads (bandwidth, §5.2).
        assert (
            columns["40"][Category.EXECUTE.value]
            >= 0.95 * columns["1"][Category.EXECUTE.value]
        )
    for app in ("billiards", "des"):
        assert table[app]["40"][Category.SAFETY_TEST.value] > 0, (
            f"{app} is unstable-source: its profile must show SAFETY_TEST"
        )
    for app in ("avi", "mst"):
        assert table[app]["40"][Category.SAFETY_TEST.value] == 0.0, (
            f"{app} is stable-source: no safe-source test should run"
        )
