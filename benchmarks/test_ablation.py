"""Ablations of the KDG design choices (beyond the paper's figures).

Quantifies, on the simulated machine, the design decisions DESIGN.md calls
out:

* **Asynchrony** (§3.6.3): AVI under the asynchronous explicit KDG vs the
  same executor forced into bulk-synchronous rounds.
* **Read/write intents**: Kruskal with directional rw-sets vs the paper's
  single-set (all-write) model — the all-write model serializes every edge
  touching a large component.
* **Windowing** (§3.6.1): MST's IKDG with the adaptive policy vs a pinned
  small window vs no windowing (one huge window).
* **Level windowing**: BFS's IKDG with level windows vs adaptive windows.
"""

from repro import SimMachine
from repro.apps import APPS
from repro.core.algorithm import OrderedAlgorithm
from repro.runtime import AdaptiveWindow, run_ikdg, run_kdg_rna

from .harness import make_state, save_results

THREADS = 16


def test_ablation_asynchrony(benchmark):
    """Removing barriers (async executor) must speed AVI up."""

    def sweep():
        spec = APPS["avi"]
        state = make_state("avi", "small")
        rounds = run_kdg_rna(
            spec.algorithm(state), SimMachine(THREADS), asynchronous=False
        )
        state = make_state("avi", "small")
        asynchronous = run_kdg_rna(spec.algorithm(state), SimMachine(THREADS))
        return {
            "rounds_seconds": rounds.elapsed_seconds,
            "async_seconds": asynchronous.elapsed_seconds,
        }

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_results("ablation_async", result)
    gain = result["rounds_seconds"] / result["async_seconds"]
    print(f"\nAVI async vs rounds: {gain:.2f}x faster without barriers")
    assert gain > 1.2


def _all_write_algorithm(algorithm: OrderedAlgorithm) -> OrderedAlgorithm:
    """Wrap an algorithm so every declared location becomes a write."""
    original_visit = algorithm.visit_rw_sets

    def visit(item, ctx):
        original_visit(item, ctx)
        for loc in ctx.rw_set:
            ctx.write(loc)

    return OrderedAlgorithm(
        name=algorithm.name + "-allwrite",
        initial_items=algorithm.initial_items,
        priority=algorithm.priority,
        visit_rw_sets=visit,
        apply_update=algorithm.apply_update,
        properties=algorithm.properties,
        safe_source_test=algorithm.safe_source_test,
        safe_test_work=algorithm.safe_test_work,
        level_of=algorithm.level_of,
        memory_bound_fraction=algorithm.memory_bound_fraction,
    )


def test_ablation_read_write_intents(benchmark):
    """Directional rw-sets unlock Kruskal's big-component tail."""

    def sweep():
        # A reduced grid: the all-write arm degenerates to ~1 commit/round
        # on the giant-component tail, so its wall cost grows quadratically.
        from repro.apps.mst import make_grid_state

        spec = APPS["mst"]
        state = make_grid_state(36, 36, seed=2)
        directional = run_ikdg(spec.algorithm(state), SimMachine(THREADS))
        state = make_grid_state(36, 36, seed=2)
        allwrite = run_ikdg(
            _all_write_algorithm(spec.algorithm(state)), SimMachine(THREADS)
        )
        return {
            "directional_seconds": directional.elapsed_seconds,
            "directional_rounds": directional.rounds,
            "allwrite_seconds": allwrite.elapsed_seconds,
            "allwrite_rounds": allwrite.rounds,
        }

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_results("ablation_rw", result)
    gain = result["allwrite_seconds"] / result["directional_seconds"]
    print(
        f"\nMST read/write intents: {gain:.1f}x faster, rounds "
        f"{result['allwrite_rounds']} -> {result['directional_rounds']}"
    )
    assert gain > 2.0  # on the full small input the gain exceeds 100x
    assert result["directional_rounds"] < result["allwrite_rounds"]


def test_ablation_window_policy(benchmark):
    """Adaptive windows beat both a starved window and no windowing."""

    def sweep():
        spec = APPS["mst"]
        out = {}
        policies = {
            "adaptive": AdaptiveWindow(),
            "pinned-small": AdaptiveWindow(initial=32, max_size=32),
            "unwindowed": AdaptiveWindow(initial=1 << 20),
        }
        for label, policy in policies.items():
            state = make_state("mst", "small")
            result = run_ikdg(
                spec.algorithm(state), SimMachine(THREADS), window_policy=policy
            )
            out[label] = result.elapsed_seconds
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_results("ablation_window", result)
    print("\nMST window policy (simulated seconds):")
    for label, seconds in result.items():
        print(f"  {label:<14} {seconds * 1e3:9.3f}ms")
    assert result["adaptive"] < result["pinned-small"]
    # An unwindowed KDG re-marks every pending task every round.
    assert result["adaptive"] < result["unwindowed"]


def test_ablation_level_windows(benchmark):
    """BFS: level windowing vs generic adaptive windowing."""

    def sweep():
        spec = APPS["bfs"]
        state = make_state("bfs", "large")
        level = run_ikdg(
            spec.algorithm(state), SimMachine(THREADS), level_windows=True
        )
        state = make_state("bfs", "large")
        adaptive = run_ikdg(spec.algorithm(state), SimMachine(THREADS))
        return {
            "level_seconds": level.elapsed_seconds,
            "adaptive_seconds": adaptive.elapsed_seconds,
        }

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_results("ablation_level_windows", result)
    gain = result["adaptive_seconds"] / result["level_seconds"]
    print(f"\nBFS level windows: {gain:.2f}x vs adaptive windows")
    assert gain > 1.0
