"""Figure 13: speculative-executor time breakdown.

The paper profiles the speculation executor on AVI, DES and MST at 1-8
threads and breaks each thread's time into Abort / Commit / Schedule /
Execute.  Expected shapes: the Execute share shrinks as threads are added
while Commit (waiting on the in-order commit queue) grows to dominate —
"threads spend most of their time waiting to commit".
"""

from repro import SimMachine
from repro.apps import APPS
from repro.machine import Category

from .harness import make_state, save_results

FIG13_APPS = ["avi", "des", "mst"]
THREADS = [1, 2, 4, 8]
BUCKETS = [Category.ABORT, Category.COMMIT, Category.SCHEDULE, Category.EXECUTE]


def _shares(stats) -> dict[str, float]:
    """Fraction of busy time per bucket (idle folded into commit-wait as
    the paper's per-thread time bars do not show idle separately)."""
    raw = stats.breakdown()
    merged = {bucket.value: raw[bucket] for bucket in BUCKETS}
    merged[Category.COMMIT.value] += raw[Category.IDLE]
    total = sum(merged.values()) or 1.0
    return {k: v / total for k, v in merged.items()}


def test_fig13_speculation_breakdown(benchmark):
    def sweep():
        table: dict[str, dict[str, dict[str, float]]] = {}
        for app in FIG13_APPS:
            spec = APPS[app]
            table[app] = {}
            for threads in THREADS:
                state = make_state(app, "small")
                result = spec.run(state, "speculation", SimMachine(threads))
                spec.validate(state)
                table[app][str(threads)] = _shares(result.stats)
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_results("fig13", table)

    print("\n=== Figure 13: speculation time breakdown (share of thread time) ===")
    for app, columns in table.items():
        print(f"\n{app}:")
        print(f"{'threads':>8} " + " ".join(f"{b.value:>10}" for b in BUCKETS))
        for label, buckets in columns.items():
            cells = " ".join(f"{buckets[b.value]:>9.1%}" for b in BUCKETS)
            print(f"{label:>8} {cells}")

    for app, columns in table.items():
        execute_1 = columns["1"][Category.EXECUTE.value]
        execute_8 = columns["8"][Category.EXECUTE.value]
        commit_1 = columns["1"][Category.COMMIT.value]
        commit_8 = columns["8"][Category.COMMIT.value]
        assert execute_8 < execute_1, f"{app}: Execute share must shrink"
        assert commit_8 > commit_1, f"{app}: commit-queue share must grow"
        assert commit_8 > 0.3, f"{app}: threads should mostly wait to commit"
