"""Conservative KDG vs optimistic Time Warp on DES (the paper's §6 contrast).

The paper argues the KDG's conservative scheduling avoids Time Warp's
speculation costs.  This benchmark quantifies the trade on the 8-bit tree
multiplier: Time Warp is competitive at moderate thread counts (its
optimism finds the same parallelism without safe-source tests) but pays
state saving on every event and collapses into rollback thrash when
over-committed, while the KDG curves stay monotone.
"""

from .harness import print_series_table, run, save_results

THREADS = [1, 8, 16, 24, 40]
IMPLS = {
    "KDG-Auto": "kdg-auto",
    "KDG-Manual": "kdg-manual",
    "Chandy-Misra": "other",
    "Time-Warp": "time-warp",
}


def test_timewarp_vs_kdg(benchmark):
    base = run("des", "serial", 1).elapsed_seconds

    def sweep():
        series = {}
        rollbacks = []
        for label, impl in IMPLS.items():
            column = []
            for threads in THREADS:
                result = run("des", impl, threads)
                column.append(base / result.elapsed_seconds)
                if impl == "time-warp":
                    rollbacks.append(result.metrics["rollbacks"])
            series[label] = column
        return series, rollbacks

    series, rollbacks = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series_table("DES: conservative KDG vs Time Warp", THREADS, series)
    print(f"Time Warp rollbacks per thread count: {dict(zip(THREADS, rollbacks))}")
    save_results(
        "timewarp", {"threads": THREADS, "series": series, "rollbacks": rollbacks}
    )

    timewarp = series["Time-Warp"]
    # Rollbacks rise steeply with over-commitment...
    assert rollbacks[-1] > 10 * max(1, rollbacks[1])
    # ...and the curve stops improving (thrash), unlike the manual KDG.
    assert timewarp[-1] < timewarp[-2] * 1.1
    assert series["KDG-Manual"][-1] >= series["KDG-Manual"][1]
