"""Figure 5: AVI speedup under four parallelization strategies.

The paper compares, on AVI, the KDG runtime against the hand-written
edge-flipping DAG (Manual), priority-level (level-by-level) execution, and
Kulkarni-style speculation, over 1-24 threads.  Expected shape: KDG and
Manual scale well and track each other; Priority-Levels is far below 1x
(1.38 tasks per level); Speculation stays flat (commit-queue bound).
"""

from .harness import print_series_table, run, save_results

THREADS = [1, 2, 4, 8, 16, 24]
IMPLS = {
    "KDG": "kdg-auto",
    "Manual": "kdg-manual",
    "Priority-Levels": "level-by-level",
    "Speculation": "speculation",
}


def test_fig05_avi_executor_comparison(benchmark):
    base = run("avi", "serial", 1).elapsed_seconds

    def sweep():
        series = {}
        for label, impl in IMPLS.items():
            series[label] = [
                base / run("avi", impl, threads).elapsed_seconds
                for threads in THREADS
            ]
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series_table("Figure 5: AVI speedup (small mesh)", THREADS, series)
    save_results("fig05", {"threads": THREADS, "series": series})

    kdg, manual = series["KDG"], series["Manual"]
    levels, speculation = series["Priority-Levels"], series["Speculation"]
    # Paper shapes: KDG/Manual scale; the other two never take off.
    assert kdg[-1] > 8.0, "KDG should scale well on AVI"
    assert manual[-1] > 8.0
    assert max(levels) < 1.0, "priority-levels collapses on AVI"
    assert max(speculation) < 4.0, "speculation is commit-queue bound"
    assert kdg[-1] > 2.5 * max(speculation)
