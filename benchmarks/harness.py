"""Shared harness for the paper-reproduction benchmarks.

Each ``test_figXX_*`` module regenerates one table or figure of the paper
from the simulated machine: it runs the relevant implementations, prints
the same rows/series the paper reports, and stores the measurements as JSON
under ``benchmarks/results/`` (consumed by EXPERIMENTS.md).

"Time" is always simulated (makespan cycles at 2.2 GHz), never Python wall
time — see DESIGN.md §2 for the hardware substitution.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import SimMachine
from repro.apps import APPS
from repro.runtime import LoopResult

RESULTS_DIR = Path(__file__).parent / "results"

#: Thread counts for speedup sweeps (the paper's x-axis, Fig. 11b).
SWEEP_THREADS = [1, 4, 8, 16, 24, 40]


def make_state(app: str, size: str):
    spec = APPS[app]
    return spec.make_small() if size == "small" else spec.make_large()


def run(app: str, impl: str, threads: int, size: str = "small") -> LoopResult:
    """Run one implementation on a fresh state; validates the result."""
    spec = APPS[app]
    state = make_state(app, size)
    result = spec.run(state, impl, SimMachine(threads))
    spec.validate(state)
    return result


def baseline_seconds(app: str, size: str = "small") -> float:
    """Best-serial running time (the paper's speedup baseline, §5.1)."""
    return run(app, "serial-best", 1, size).elapsed_seconds


def speedups(
    app: str,
    impls: list[str],
    threads_list: list[int],
    size: str = "small",
    base: float | None = None,
) -> dict[str, list[float]]:
    """Speedup series per implementation over ``threads_list``."""
    if base is None:
        base = baseline_seconds(app, size)
    series: dict[str, list[float]] = {}
    for impl in impls:
        if not APPS[app].has_impl(impl):
            continue
        series[impl] = [
            base / run(app, impl, threads, size).elapsed_seconds
            for threads in threads_list
        ]
    return series


def save_results(name: str, payload: dict) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=str))
    return path


def load_baseline(name: str, *, required: bool = False) -> dict | None:
    """Load stored results ``benchmarks/results/<name>.json``, tolerantly.

    Baselines are build artifacts, not checked in — a fresh clone has none.
    A missing or unparseable file returns ``None`` (or, with
    ``required=True`` inside a test, skips the test with a message naming
    the producing benchmark) instead of raising.
    """
    path = RESULTS_DIR / f"{name}.json"
    if not path.is_file():
        message = (
            f"no stored baseline {path.name}; run the producing benchmark "
            f"(pytest benchmarks/ -k {name}) first"
        )
        if required:
            import pytest

            pytest.skip(message)
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        message = f"stored baseline {path.name} unreadable: {exc}"
        if required:
            import pytest

            pytest.skip(message)
        return None


def print_series_table(
    title: str, threads_list: list[int], series: dict[str, list[float]]
) -> None:
    print(f"\n=== {title} ===")
    header = f"{'threads':>8} " + " ".join(f"{impl:>14}" for impl in series)
    print(header)
    for i, threads in enumerate(threads_list):
        row = f"{threads:>8} " + " ".join(
            f"{values[i]:>13.2f}x" for values in series.values()
        )
        print(row)
