"""Figure 14: parallelism exposed by the level-by-level executor.

The paper reports, per application, the number of priority levels (a
critical-path measure) and the average number of tasks per level (a
parallelism measure).  Expected shapes, mirroring the paper's table:

* AVI and Billiards: time-stamps are real numbers, so levels are almost
  all singletons (~1 task/level) — level-by-level exposes no parallelism.
* BFS: few fat levels on the random graph, many thin ones on the road-like
  grid.
* MST: one level per distinct edge weight, each with many edges.
* DES: integer-ish event times give moderate level sizes.
* Tree: one level per depth, each huge.
"""

from repro import SimMachine
from repro.apps import APPS, bfs

from .harness import make_state, save_results

FIG14_ROWS = [
    ("avi", "small", None),
    ("bfs-random", "large", None),
    ("bfs-road", "small", None),
    ("billiards", "small", None),
    ("des", "small", None),
    ("mst", "small", None),
    ("treesum", "small", None),
]


def _run_level(app_key: str, size: str):
    if app_key == "bfs-random":
        spec, state = APPS["bfs"], bfs.make_random_state(16000, seed=3)
    elif app_key == "bfs-road":
        spec, state = APPS["bfs"], make_state("bfs", "small")
    else:
        spec, state = APPS[app_key], make_state(app_key, size)
    result = spec.run(state, "level-by-level", SimMachine(8))
    spec.validate(state)
    return result


def test_fig14_level_statistics(benchmark):
    def sweep():
        table = {}
        for app_key, size, _ in FIG14_ROWS:
            result = _run_level(app_key, size)
            table[app_key] = {
                "num_levels": result.metrics["num_levels"],
                "avg_tasks_per_level": result.metrics["avg_tasks_per_level"],
            }
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_results("fig14", table)

    print("\n=== Figure 14: level-by-level parallelism ===")
    print(f"{'application':<14} {'#levels':>10} {'avg tasks/level':>18}")
    for app_key, row in table.items():
        print(
            f"{app_key:<14} {row['num_levels']:>10} "
            f"{row['avg_tasks_per_level']:>18.2f}"
        )

    # Paper shapes.
    assert table["avi"]["avg_tasks_per_level"] < 2.0
    assert table["billiards"]["avg_tasks_per_level"] < 2.0
    assert table["bfs-random"]["num_levels"] < 40
    assert table["bfs-random"]["avg_tasks_per_level"] > 500
    assert table["bfs-road"]["num_levels"] > 10 * table["bfs-random"]["num_levels"]
    assert table["mst"]["num_levels"] <= 110  # ~one per distinct weight
    assert table["mst"]["avg_tasks_per_level"] > 50
    assert table["treesum"]["num_levels"] < 40
    assert table["treesum"]["avg_tasks_per_level"] > 100
