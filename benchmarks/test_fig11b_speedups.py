"""Figure 11b: speedup vs. thread count for all seven applications.

The paper plots, per application (small input), the speedup of KDG-Auto,
KDG-Manual and the third-party implementation relative to the best serial
time, over 1-40 threads.  Expected shapes: AVI/LU/Tree scale well; MST and
DES scale moderately; Billiards is parallelism-limited at our reduced ball
count; BFS-small (road-like) stays low for all implementations.
"""

import pytest

from repro.apps import APPS

from .harness import SWEEP_THREADS, baseline_seconds, print_series_table, run, save_results

IMPLS = ["kdg-auto", "kdg-manual", "other"]
_collected: dict[str, dict] = {}


@pytest.mark.parametrize("app", list(APPS))
def test_fig11b_speedup_curve(app, benchmark):
    base = baseline_seconds(app)

    def sweep():
        series = {}
        for impl in IMPLS:
            if not APPS[app].has_impl(impl):
                continue
            series[impl] = [
                base / run(app, impl, threads).elapsed_seconds
                for threads in SWEEP_THREADS
            ]
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series_table(f"Figure 11b: {app} (small input)", SWEEP_THREADS, series)
    _collected[app] = {"threads": SWEEP_THREADS, "series": series}
    save_results("fig11b", _collected)

    auto = series["kdg-auto"]
    # Parallel speedup must improve from 1 thread toward the sweet spot.
    assert max(auto) > auto[0]
    if app in ("avi", "lu", "treesum"):
        assert max(auto) > 8.0, f"{app}: KDG-Auto should scale"
    if app in ("mst", "des"):
        assert max(auto) > 3.0
    # The hand-tuned KDG is never dramatically worse than automatic.
    manual = series.get("kdg-manual")
    if manual:
        assert max(manual) > 0.7 * max(auto)
