"""Figure 11a: inputs and best running times for all seven applications.

The paper's table reports, per application and input size, the *best*
(simulated) running time of the serial baseline and of the KDG-Auto,
KDG-Manual and third-party (Other) parallel implementations — best over
thread counts, as in the paper.  Expected shape: every KDG-Auto beats
serial; KDG-Manual is at least comparable to Other where Other exists.
"""

from repro.apps import APPS, PAPER_IMPLS

from .harness import run, save_results

PARALLEL_THREADS = (8, 40)
SIZES = ("small", "large")


def test_fig11a_running_times(benchmark):
    def sweep():
        table = {}
        for app in APPS:
            table[app] = {}
            for size in SIZES:
                row = {}
                for impl in PAPER_IMPLS:
                    if not APPS[app].has_impl(impl):
                        row[impl] = None
                        continue
                    if impl == "serial":
                        row[impl] = run(app, "serial-best", 1, size).elapsed_seconds
                    else:
                        row[impl] = min(
                            run(app, impl, threads, size).elapsed_seconds
                            for threads in PARALLEL_THREADS
                        )
                table[app][size] = row
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_results("fig11a", {"threads": list(PARALLEL_THREADS), "table": table})

    print("\n=== Figure 11a: best running times (simulated seconds) ===")
    header = f"{'app':<10} {'size':<6} " + " ".join(
        f"{impl:>12}" for impl in PAPER_IMPLS
    )
    print(header)
    for app, sizes in table.items():
        for size, row in sizes.items():
            cells = " ".join(
                f"{row[impl]:>12.4f}" if row[impl] is not None else f"{'-':>12}"
                for impl in PAPER_IMPLS
            )
            print(f"{app:<10} {size:<6} {cells}")

    for app, sizes in table.items():
        for size, row in sizes.items():
            serial = row["serial"]
            assert row["kdg-auto"] < serial, (
                f"{app}/{size}: KDG-Auto slower than serial"
            )
            if row["kdg-manual"] is not None:
                assert row["kdg-manual"] < serial
