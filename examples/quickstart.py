"""Quickstart: write your own ordered algorithm and run it on the KDG.

The example models a tiny priority-ordered workload from scratch — a
"token routing" network: tokens hop between mailboxes in time order, each
hop costing simulated work and possibly scheduling a later hop.  It shows
the four ingredients of the programming model (§3.1 of the paper):

1. work items + a priority function (the ``orderedby`` clause),
2. a cautious rw-set visitor (the read-only prefix),
3. the loop body (which may push new, later work),
4. declared algorithm properties that let the runtime pick an optimized
   KDG executor.

Run:  python examples/quickstart.py
"""

from repro import AlgorithmProperties, Category, SimMachine, for_each_ordered

NUM_MAILBOXES = 64
HOPS_PER_TOKEN = 12
HOP_WORK = 350.0  # simulated cycles per hop


def main() -> None:
    # Application state: a value per mailbox, updated by hops.
    load = [0] * NUM_MAILBOXES

    def priority(item):
        time, mailbox, hops_left = item
        return (time, mailbox)  # embed a tie-break in the priority

    def visit_rw_sets(item, ctx):
        _, mailbox, _ = item
        ctx.write(("mailbox", mailbox))

    def apply_update(item, ctx):
        time, mailbox, hops_left = item
        ctx.access(("mailbox", mailbox))
        ctx.work(HOP_WORK)
        load[mailbox] += 1
        if hops_left > 0:
            target = (mailbox * 7 + 13) % NUM_MAILBOXES
            ctx.push((time + 1.5 + 0.01 * mailbox, target, hops_left - 1))

    initial = [(0.0, m, HOPS_PER_TOKEN) for m in range(NUM_MAILBOXES)]
    properties = AlgorithmProperties(
        stable_source=True,            # every source is safe
        monotonic=True,                # hops only move forward in time
        structure_based_rw_sets=True,  # a hop's rw-set comes from its item
    )

    print("token routing:", NUM_MAILBOXES, "tokens x", HOPS_PER_TOKEN, "hops")
    print(f"{'executor':>16} {'threads':>8} {'sim time':>12} {'speedup':>9}")
    baseline = None
    for executor, threads in [
        ("serial", 1),
        ("auto", 4),
        ("auto", 16),
        ("level-by-level", 16),
        ("speculation", 16),
    ]:
        for m in range(NUM_MAILBOXES):
            load[m] = 0
        result = for_each_ordered(
            initial,
            priority=priority,
            visit_rw_sets=visit_rw_sets,
            apply_update=apply_update,
            properties=properties,
            name="token-routing",
            executor=executor,
            machine=SimMachine(threads),
        )
        assert sum(load) == NUM_MAILBOXES * (HOPS_PER_TOKEN + 1)
        if baseline is None:
            baseline = result.elapsed_seconds
        print(
            f"{result.executor:>16} {threads:>8} "
            f"{result.elapsed_seconds * 1e3:>10.3f}ms "
            f"{baseline / result.elapsed_seconds:>8.2f}x"
        )

    # Where did the cycles go?  (the paper's Figure 12 view)
    result = for_each_ordered(
        initial,
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=properties,
        name="token-routing",
        machine=SimMachine(16),
    )
    breakdown = result.breakdown()
    busy = {c: v for c, v in breakdown.items() if v > 0 and c != Category.IDLE}
    print("\ncycle breakdown at 16 threads (auto executor:", result.executor + "):")
    for category, cycles in sorted(busy.items(), key=lambda kv: -kv[1]):
        print(f"  {category.value:<12} {cycles:>12.0f} cycles")


if __name__ == "__main__":
    main()
