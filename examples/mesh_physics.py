"""Asynchronous variational integration of a 2-D mesh (the paper's §2 AVI).

Reproduces the paper's motivating experiment (Figure 5) as a runnable
example: a triangulated membrane where each element advances with its own
time step.  Compares the automatic KDG executor against the hand-written
edge-flipping DAG, level-by-level execution, and speculation — then shows
why level-by-level collapses (time-stamps are nearly all distinct).

Run:  python examples/mesh_physics.py
"""

from repro import SimMachine
from repro.apps import avi

GRID = (20, 20)  # 800 triangles
END_TIME = 0.4
THREADS = 16


def fresh_state() -> avi.AVIState:
    return avi.make_state(*GRID, end_time=END_TIME, seed=42)


def main() -> None:
    probe = fresh_state()
    print(
        f"AVI membrane: {probe.mesh.num_elements} elements, "
        f"{probe.mesh.num_vertices} vertices, end time {END_TIME}"
    )
    print(
        f"element time steps: min {probe.step.min():.4f} "
        f"max {probe.step.max():.4f} (asynchronous by construction)"
    )

    runs = [
        ("serial (priority queue)", "serial", 1),
        ("KDG-Auto (async RNA)", "kdg-auto", THREADS),
        ("KDG-Manual (edge flips)", "kdg-manual", THREADS),
        ("Priority-Levels", "level-by-level", THREADS),
        ("Speculation", "speculation", THREADS),
    ]
    baseline = None
    reference = None
    print(f"\n{'implementation':<26} {'updates':>8} {'sim time':>12} {'speedup':>9}")
    for label, impl, threads in runs:
        state = fresh_state()
        result = avi.SPEC.run(state, impl, SimMachine(threads))
        state.validate()
        snapshot = state.snapshot()
        if reference is None:
            reference = snapshot
        assert snapshot == reference, f"{label} diverged from serial physics!"
        if baseline is None:
            baseline = result.elapsed_seconds
        extra = ""
        if impl == "level-by-level":
            extra = (
                f"   ({result.metrics['num_levels']} levels, "
                f"{result.metrics['avg_tasks_per_level']:.2f} tasks/level)"
            )
        print(
            f"{label:<26} {result.executed:>8} "
            f"{result.elapsed_seconds * 1e3:>10.3f}ms "
            f"{baseline / result.elapsed_seconds:>8.2f}x{extra}"
        )

    print("\nall executors produced bit-identical displacement fields.")


if __name__ == "__main__":
    main()
