"""Discrete-event simulation of a digital circuit (the paper's §4.5 DES).

Builds a 16-bit Kogge–Stone adder at the gate level, drives it with a
sequence of random operand pairs, and simulates the event traffic under
the KDG runtime — verifying at the end that the settled outputs equal the
arithmetic sum.  Compares the asynchronous automatic executor against the
per-station manual KDG and the Chandy–Misra null-message comparator.

Run:  python examples/circuit_simulation.py
"""

import numpy as np

from repro import SimMachine
from repro.apps import des
from repro.inputs import kogge_stone_adder

BITS = 16
VECTORS = 10
THREADS = 16


def bits_of(value: int, prefix: str) -> dict[str, int]:
    return {f"{prefix}{i}": (value >> i) & 1 for i in range(BITS)}


def fresh_state(seed: int = 7) -> des.DESState:
    rng = np.random.RandomState(seed)
    circuit = kogge_stone_adder(BITS)
    vectors = []
    for _ in range(VECTORS):
        a, b = int(rng.randint(0, 2**BITS)), int(rng.randint(0, 2**BITS))
        vectors.append({**bits_of(a, "a"), **bits_of(b, "b")})
    return des.DESState(circuit, vectors)


def main() -> None:
    probe = fresh_state()
    print(f"{BITS}-bit Kogge-Stone adder: {probe.circuit.num_gates} gates, "
          f"{len(probe.initial_events)} initial events, {VECTORS} stimulus vectors")

    runs = [
        ("serial (priority queue)", "serial", 1),
        ("KDG-Auto (async RNA)", "kdg-auto", THREADS),
        ("KDG-Manual (station PQs)", "kdg-manual", THREADS),
        ("Chandy-Misra (null msgs)", "other", THREADS),
    ]
    baseline = None
    print(f"\n{'implementation':<26} {'events':>8} {'sim time':>12} {'speedup':>9}")
    for label, impl, threads in runs:
        state = fresh_state()
        result = des.SPEC.run(state, impl, SimMachine(threads))
        state.validate()  # outputs equal the functional oracle
        if baseline is None:
            baseline = result.elapsed_seconds
        print(
            f"{label:<26} {result.executed:>8} "
            f"{result.elapsed_seconds * 1e3:>10.3f}ms "
            f"{baseline / result.elapsed_seconds:>8.2f}x"
        )

    # Show the arithmetic check explicitly for the last run.
    state = fresh_state()
    des.SPEC.run(state, "kdg-auto", SimMachine(THREADS))
    final_inputs = {name: 0 for name in state.circuit.inputs}
    for vector in state.vectors:
        final_inputs.update(vector)
    a = sum(final_inputs[f"a{i}"] << i for i in range(BITS))
    b = sum(final_inputs[f"b{i}"] << i for i in range(BITS))
    out = state.output_values()
    total = sum(out[f"s{i}"] << i for i in range(BITS + 1))
    print(f"\nsettled outputs: {a} + {b} = {total} "
          f"({'correct' if total == a + b else 'WRONG'})")


if __name__ == "__main__":
    main()
