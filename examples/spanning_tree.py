"""Parallel Kruskal with a kinetic dependence graph (the paper's §4.2).

Kruskal's MST is the paper's example of *changing* rw-sets: contracting an
edge merges two components, growing the rw-sets of pending edges.  The
automatic runtime therefore picks the implicit KDG with windowing, which
re-derives rw-sets every round.  This example builds a random weighted
graph, runs serial / IKDG / manual / PBBS-style implementations, checks
them against networkx, and prints the window-adaptation metrics.

Run:  python examples/spanning_tree.py
"""

import networkx as nx

from repro import SimMachine
from repro.apps import mst

NUM_NODES = 4000
THREADS = 16


def fresh_state() -> mst.MSTState:
    return mst.make_random_state(NUM_NODES, avg_degree=4.0, seed=9)


def main() -> None:
    probe = fresh_state()
    print(f"random graph: {NUM_NODES} nodes, {len(probe.items)} edges")

    # Oracle via networkx.
    g = nx.Graph()
    for w, u, v, _ in probe.items:
        if not g.has_edge(u, v) or g[u][v]["weight"] > w:
            g.add_edge(u, v, weight=w)
    oracle = sum(
        d["weight"] for _, _, d in nx.minimum_spanning_tree(g).edges(data=True)
    )
    print(f"networkx MST weight: {oracle:.0f}")

    runs = [
        ("serial Kruskal", "serial", 1),
        ("KDG-Auto (IKDG windowed)", "kdg-auto", THREADS),
        ("KDG-Manual (inlined IKDG)", "kdg-manual", THREADS),
        ("PBBS-style (Blelloch)", "other", THREADS),
    ]
    baseline = None
    print(f"\n{'implementation':<26} {'weight':>9} {'rounds':>7} "
          f"{'sim time':>12} {'speedup':>9}")
    for label, impl, threads in runs:
        state = fresh_state()
        result = mst.SPEC.run(state, impl, SimMachine(threads))
        state.validate()
        assert state.mst_weight == oracle, f"{label}: wrong MST weight!"
        if baseline is None:
            baseline = result.elapsed_seconds
        print(
            f"{label:<26} {state.mst_weight:>9.0f} {result.rounds:>7} "
            f"{result.elapsed_seconds * 1e3:>10.3f}ms "
            f"{baseline / result.elapsed_seconds:>8.2f}x"
        )

    state = fresh_state()
    result = mst.SPEC.run(state, "kdg-auto", SimMachine(THREADS))
    print(
        f"\nIKDG window grew to {result.metrics['final_window_size']} "
        f"(mean round size {result.metrics['mean_round_size']:.0f} tasks)"
    )


if __name__ == "__main__":
    main()
