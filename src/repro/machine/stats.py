"""Cycle accounting for the simulated machine.

The paper's Figure 12 breaks total cycles (summed over all threads) into
SAFETY_TEST / EXECUTE / SCHEDULE / OTHER, and Figure 13 breaks speculative
execution time into Abort / Commit / Schedule / Execute.  ``CycleStats``
records per-thread, per-category cycle counts so both breakdowns can be
regenerated from a single run.
"""

from __future__ import annotations

from enum import Enum


class Category(str, Enum):
    """Where a simulated cycle was spent (labels match the paper's figures)."""

    SAFETY_TEST = "SAFETY_TEST"
    EXECUTE = "EXECUTE"
    SCHEDULE = "SCHEDULE"
    COMMIT = "COMMIT"
    ABORT = "ABORT"
    IDLE = "IDLE"
    OTHER = "OTHER"


class CycleStats:
    """Per-thread, per-category cycle counters (plus commit attribution)."""

    def __init__(self, num_threads: int):
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = num_threads
        self._cycles = [dict.fromkeys(Category, 0.0) for _ in range(num_threads)]
        self._commits = [0] * num_threads

    def charge(self, tid: int, category: Category, cycles: float) -> None:
        """Add ``cycles`` to thread ``tid`` under ``category``."""
        if cycles < 0:
            raise ValueError(f"negative cycle charge: {cycles}")
        self._cycles[tid][category] += cycles

    def rows(self) -> list[dict["Category", float]]:
        """The mutable per-thread counter rows, indexed by thread id.

        The machine's phase loops accumulate into these directly — one dict
        ``+=`` instead of a :meth:`charge` call per item-category.  Callers
        own the non-negativity guarantee that :meth:`charge` checks.
        """
        return self._cycles

    def record_commit(self, tid: int, count: int = 1) -> None:
        """Attribute ``count`` committed tasks to thread ``tid``.

        Executors call this once per committed task so the execution-trace
        oracle (and Fig. 12-style load-balance questions) can see which
        simulated thread retired each task.
        """
        if count < 0:
            raise ValueError(f"negative commit count: {count}")
        self._commits[tid] += count

    def commits_by_thread(self) -> list[int]:
        """Committed-task count per thread, indexed by thread id."""
        return list(self._commits)

    def total_commits(self) -> int:
        return sum(self._commits)

    def thread_total(self, tid: int, *, include_idle: bool = True) -> float:
        row = self._cycles[tid]
        return sum(
            c for cat, c in row.items() if include_idle or cat is not Category.IDLE
        )

    def total(self, category: Category | None = None) -> float:
        """Total cycles over all threads, optionally for one category."""
        if category is None:
            return sum(sum(row.values()) for row in self._cycles)
        return sum(row[category] for row in self._cycles)

    def breakdown(self) -> dict[Category, float]:
        """Aggregate cycles per category, summed over all threads."""
        out = dict.fromkeys(Category, 0.0)
        for row in self._cycles:
            for cat, c in row.items():
                out[cat] += c
        return out

    def fractions(self, categories: list[Category] | None = None) -> dict[Category, float]:
        """Per-category share of the total, over ``categories`` (default: all)."""
        bd = self.breakdown()
        if categories is not None:
            bd = {cat: bd[cat] for cat in categories}
        denom = sum(bd.values())
        if denom == 0:
            return {cat: 0.0 for cat in bd}
        return {cat: c / denom for cat, c in bd.items()}

    def reclassify(
        self, tid: int, source: Category, target: Category, cycles: float
    ) -> None:
        """Move up to ``cycles`` already-charged cycles between categories.

        Used when work turns out to have been wasted (e.g. a committed-queue
        task is aborted: its EXECUTE cycles become ABORT cycles).
        """
        moved = min(cycles, self._cycles[tid][source])
        self._cycles[tid][source] -= moved
        self._cycles[tid][target] += moved

    def merge(self, other: "CycleStats") -> None:
        """Fold another stats object (same thread count) into this one."""
        if other.num_threads != self.num_threads:
            raise ValueError("cannot merge stats with different thread counts")
        for tid in range(self.num_threads):
            for cat, c in other._cycles[tid].items():
                self._cycles[tid][cat] += c
            self._commits[tid] += other._commits[tid]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bd = {cat.value: round(c, 1) for cat, c in self.breakdown().items() if c}
        return f"CycleStats(threads={self.num_threads}, {bd})"


class WallPhaseStats:
    """Wall-clock per-worker phase accounting for real-parallel backends.

    ``CycleStats`` counts *simulated* cycles; this counts measured seconds
    on the host, per worker process and per bulk-synchronous phase, so the
    mp backend's scaling behavior is attributable: ``mark`` is the sharded
    Phase-A scatter, ``reduce`` the cross-slab min merge, ``ownership`` the
    Phase-C gather + failure count, and ``wait`` the time a worker sat in
    barrier receives.  ``utilization()`` (busy / (busy + wait)) is the
    number that says whether more workers would help.
    """

    PHASES = ("mark", "reduce", "ownership", "wait")

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.seconds = [dict.fromkeys(self.PHASES, 0.0) for _ in range(workers)]
        self.rounds = [0] * workers
        #: Parent-side per-round bookkeeping (sort, headers, barrier turns).
        self.parent_seconds = 0.0
        #: Rounds dispatched to the worker pool / handled inline instead.
        self.mp_rounds = 0
        self.fallback_rounds = 0

    def record(self, worker: int, phase: str, seconds: float) -> None:
        if phase not in self.seconds[worker]:
            raise ValueError(f"unknown phase {phase!r}")
        if seconds < 0:
            raise ValueError(f"negative wall charge: {seconds}")
        self.seconds[worker][phase] += seconds

    def busy(self, worker: int) -> float:
        row = self.seconds[worker]
        return sum(v for phase, v in row.items() if phase != "wait")

    def utilization(self) -> list[float]:
        """Busy share of each worker's accounted time (0.0 when idle)."""
        out = []
        for worker in range(self.workers):
            busy = self.busy(worker)
            total = busy + self.seconds[worker]["wait"]
            out.append(busy / total if total > 0 else 0.0)
        return out

    def summary(self) -> dict:
        """JSON-ready digest for ``LoopResult.metrics`` / bench payloads."""
        utils = self.utilization()
        return {
            "workers": self.workers,
            "mp_rounds": self.mp_rounds,
            "fallback_rounds": self.fallback_rounds,
            "parent_seconds": self.parent_seconds,
            "per_worker": [
                {
                    "busy_seconds": self.busy(w),
                    "wait_seconds": self.seconds[w]["wait"],
                    "rounds": self.rounds[w],
                    "utilization": utils[w],
                    "phase_seconds": dict(self.seconds[w]),
                }
                for w in range(self.workers)
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        utils = ", ".join(f"{u:.0%}" for u in self.utilization())
        return (
            f"WallPhaseStats(workers={self.workers}, mp_rounds={self.mp_rounds}, "
            f"utilization=[{utils}])"
        )
