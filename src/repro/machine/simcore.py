"""The simulated multicore: per-thread clocks and bulk-synchronous phases.

``SimMachine`` is the substitute for the paper's 40-core Xeon (DESIGN.md §2).
Executors run their semantics once, in Python, and charge cycle costs here.
Two usage patterns:

* **Bulk-synchronous phases** (`run_phase`): a list of per-item cost
  breakdowns is distributed over threads with greedy least-loaded chunk
  scheduling (modeling Galois' dynamic work distribution), then a global
  barrier aligns all thread clocks.  Used by the round-based KDG-RNA and
  IKDG executors and the level-by-level executor.
* **Direct charging** (`charge` / `charge_serial`): used by the serial
  executor and by the event-driven asynchronous simulator
  (:mod:`repro.machine.async_sim`), which manages thread clocks itself and
  deposits them via `set_clock`.

The *makespan* (`elapsed_cycles`) is the maximum thread clock and is the
"running time" every benchmark reports.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from .costmodel import DEFAULT_COST_MODEL, CostModel
from .stats import Category, CycleStats

#: A per-item cost breakdown: cycles charged per category.
CostBreakdown = Mapping[Category, float]


class SimMachine:
    """A deterministic simulated shared-memory multicore."""

    def __init__(self, num_threads: int, cost_model: CostModel | None = None):
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = num_threads
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.stats = CycleStats(num_threads)
        self.clocks = [0.0] * num_threads
        self.barrier_count = 0
        self.phase_count = 0
        #: Wall-clock per-worker stats, attached by a real-parallel backend
        #: (:class:`repro.machine.stats.WallPhaseStats`); ``None`` for the
        #: inline backends.  Simulated cycles above are never affected.
        self.wall_stats = None

    # ------------------------------------------------------------------
    # Low-level charging
    # ------------------------------------------------------------------
    def charge(self, tid: int, category: Category, cycles: float) -> None:
        """Charge ``cycles`` to thread ``tid``, advancing its clock."""
        self.stats.charge(tid, category, cycles)
        self.clocks[tid] += cycles

    def charge_serial(self, category: Category, cycles: float) -> None:
        """Charge thread 0 (serial execution)."""
        self.charge(0, category, cycles)

    def set_clock(self, tid: int, value: float) -> None:
        """Set a thread clock directly (used by the async simulator)."""
        if value < self.clocks[tid]:
            raise ValueError("thread clocks cannot move backwards")
        self.clocks[tid] = value

    # ------------------------------------------------------------------
    # Bulk-synchronous phases
    # ------------------------------------------------------------------
    def run_phase(
        self,
        item_costs: Iterable[CostBreakdown],
        chunk_size: int = 1,
        barrier: bool = True,
    ) -> list[int]:
        """Distribute per-item costs over threads, then (optionally) barrier.

        Items are assigned in order, ``chunk_size`` at a time, to the
        currently least-loaded thread — a deterministic stand-in for dynamic
        (work-stealing) scheduling.  Each item's cycles are charged to the
        thread that received it under the item's own categories.

        Returns the thread id assigned to each item, in input order, so
        callers (the execution-trace oracle) can attribute per-item work —
        e.g. task commits — to simulated threads.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.phase_count += 1
        assigned: list[int] = []
        rows = self.stats.rows()
        if self.num_threads == 1:
            # Single-thread shortcut: every item lands on thread 0 in input
            # order regardless of chunking, so the least-loaded heap is pure
            # overhead.  Charge order (hence float accumulation) is
            # identical to the general path.
            row = rows[0]
            append = assigned.append
            clock = self.clocks[0]
            for cost in item_costs:
                append(0)
                for category, cycles in cost.items():
                    if cycles:
                        row[category] += cycles
                        clock += cycles
            self.clocks[0] = clock
        else:
            # Least-loaded selection over a plain per-thread load list: the
            # lexicographic-min (clock, tid) pop of the old heap is exactly
            # ``loads.index(min(loads))`` — ``min`` returns the smallest
            # load and ``index`` its first (lowest-tid) holder — and for
            # the simulated core counts (≤ 40) two C-level scans beat a
            # heappop/heappush pair with its tuple churn.  Identical greedy
            # trajectory, identical float accumulation order.
            clocks = self.clocks
            loads = clocks[:]
            find = loads.index
            if chunk_size == 1:
                append = assigned.append
                for cost in item_costs:
                    tid = find(min(loads))
                    append(tid)
                    clock = loads[tid]
                    row = rows[tid]
                    for category, cycles in cost.items():
                        if cycles:
                            row[category] += cycles
                            clock += cycles
                    loads[tid] = clock
            else:
                chunk: list[CostBreakdown] = []
                for cost in item_costs:
                    chunk.append(cost)
                    if len(chunk) == chunk_size:
                        self._assign_chunk(loads, chunk, assigned)
                        chunk = []
                if chunk:
                    self._assign_chunk(loads, chunk, assigned)
            clocks[:] = loads
        if barrier:
            self.global_barrier()
        return assigned

    def run_phase_scalar(
        self,
        category: Category,
        item_cycles: Iterable[float],
        chunk_size: int = 1,
        barrier: bool = True,
    ) -> list[int]:
        """Fast path for phases whose items each cost a single category.

        Bit-for-bit equivalent to
        ``run_phase([{category: c} for c in item_cycles], ...)`` — the same
        cycles are charged to the same threads in the same order — without
        allocating one dict per item.  Used by executors for their uniform
        phases (worklist refills, rw-set marking, graph build), which
        profiling shows dominate phase-dispatch cost.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.phase_count += 1
        assigned: list[int] = []
        rows = self.stats.rows()
        append = assigned.append
        if self.num_threads == 1:
            row = rows[0]
            clock = self.clocks[0]
            for cycles in item_cycles:
                append(0)
                if cycles:
                    row[category] += cycles
                    clock += cycles
            self.clocks[0] = clock
        else:
            clocks = self.clocks
            loads = clocks[:]
            find = loads.index
            if chunk_size == 1:
                for cycles in item_cycles:
                    tid = find(min(loads))
                    append(tid)
                    if cycles:
                        rows[tid][category] += cycles
                        loads[tid] = loads[tid] + cycles
            else:
                chunk: list[float] = []
                for cycles in item_cycles:
                    chunk.append(cycles)
                    if len(chunk) == chunk_size:
                        self._assign_chunk_scalar(loads, category, chunk, assigned)
                        chunk = []
                if chunk:
                    self._assign_chunk_scalar(loads, category, chunk, assigned)
            clocks[:] = loads
        if barrier:
            self.global_barrier()
        return assigned

    def _assign_chunk(
        self,
        loads: list[float],
        chunk: Iterable[CostBreakdown],
        assigned: list[int],
    ) -> None:
        tid = loads.index(min(loads))
        clock = loads[tid]
        row = self.stats.rows()[tid]
        append = assigned.append
        for cost in chunk:
            append(tid)
            for category, cycles in cost.items():
                if cycles:
                    row[category] += cycles
                    clock += cycles
        loads[tid] = clock

    def _assign_chunk_scalar(
        self,
        loads: list[float],
        category: Category,
        chunk: list[float],
        assigned: list[int],
    ) -> None:
        tid = loads.index(min(loads))
        clock = loads[tid]
        row = self.stats.rows()[tid]
        append = assigned.append
        for cycles in chunk:
            append(tid)
            if cycles:
                row[category] += cycles
                clock += cycles
        loads[tid] = clock

    def global_barrier(self) -> None:
        """Align all threads at max clock; charge idle time and barrier cost."""
        self.barrier_count += 1
        target = max(self.clocks)
        cost = self.cost_model.barrier_cost(self.num_threads)
        for tid in range(self.num_threads):
            idle = target - self.clocks[tid]
            if idle > 0:
                self.stats.charge(tid, Category.IDLE, idle)
            if cost > 0:
                self.stats.charge(tid, Category.OTHER, cost)
            self.clocks[tid] = target + cost

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def elapsed_cycles(self) -> float:
        """Makespan: the maximum simulated thread clock."""
        return max(self.clocks)

    def elapsed_seconds(self) -> float:
        """Makespan converted at the modeled clock frequency."""
        return self.cost_model.cycles_to_seconds(self.elapsed_cycles())
