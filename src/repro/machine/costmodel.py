"""Cycle-cost model for the simulated multicore.

The paper evaluated on a 40-core Intel Xeon E7-4860 at 2.2 GHz.  CPython
cannot exhibit shared-memory speedups, so the reproduction charges every
runtime operation a cycle cost on a simulated machine instead (see
DESIGN.md §2).  The constants below are order-of-magnitude estimates for a
2010s Xeon: tens of cycles for heap/graph operations, a CAS in the tens,
barriers that grow with thread count, and contention penalties on shared
structures that grow with the number of contending threads.

The *shape* of every result in the paper (scaling curves, overhead
breakdowns, executor crossovers) is driven by schedule structure — available
parallelism, critical path, barrier counts, commit serialization — and is
insensitive to the precise constants; the defaults were chosen once and are
used unchanged by every benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Cycle costs for application work and runtime operations."""

    # Application work: apps charge op counts; 1 op = 1 cycle by convention.
    cycles_per_work: float = 1.0

    # Priority queue (binary heap) operation: base + log-term in queue size.
    pq_base: float = 18.0
    pq_log: float = 6.0

    # Explicit KDG graph maintenance (task graph G and rw-graph B).
    graph_add_node: float = 40.0
    graph_add_edge: float = 22.0
    graph_remove_node: float = 35.0
    graph_remove_edge: float = 16.0

    # Computing rw-sets: per-location cost of the read-only prefix bookkeeping.
    rw_visit: float = 14.0

    # IKDG marking: one CAS per location, cheap reset.
    mark_cas: float = 26.0
    mark_reset: float = 8.0

    # Safe-source test fixed overhead (apps add their own work on top).
    safe_test_base: float = 12.0

    # Per-task scheduler dispatch (worklist push/pop), plus contention that
    # grows with the number of threads hammering the shared worklist.
    worklist_op: float = 18.0
    contention_per_thread: float = 1.0

    # Bulk-synchronous barrier: base + per-thread arrival/release cost.
    barrier_base: float = 250.0
    barrier_per_thread: float = 90.0

    # Speculation: in-order commit queue and conflict aborts.
    commit_op: float = 300.0
    abort_base: float = 150.0
    undo_log_per_work: float = 0.6

    # Shared memory-bandwidth pressure: the memory-bound share of a task's
    # execution slows down as more threads stream through the same memory
    # controllers.  The paper observes exactly this (§5.2: "task execution
    # when using KDG executors takes longer ... because of the cache space
    # and memory bandwidth consumed").
    bandwidth_penalty_per_thread: float = 0.025

    # Clock frequency used to convert cycles to seconds (paper's machine).
    frequency_hz: float = 2.2e9

    def pq_cost(self, size: int) -> float:
        """Cost of one push/pop on a binary heap holding ``size`` items."""
        return self.pq_base + self.pq_log * math.log2(size + 2)

    def barrier_cost(self, num_threads: int) -> float:
        """Cost of one global barrier across ``num_threads`` threads."""
        if num_threads <= 1:
            return 0.0
        return self.barrier_base + self.barrier_per_thread * num_threads

    def worklist_cost(self, num_threads: int) -> float:
        """One shared-worklist push or pop, including contention."""
        return self.worklist_op + self.contention_per_thread * (num_threads - 1)

    def cas_cost(self, contenders: int = 1) -> float:
        """One CAS; retries make it grow with the number of contenders."""
        return self.mark_cas * max(1, contenders)

    def work_cost(self, ops: float) -> float:
        """Cycles for ``ops`` units of application work."""
        return ops * self.cycles_per_work

    def bandwidth_slowdown(self, num_threads: int, memory_fraction: float) -> float:
        """Execution-time inflation from shared memory bandwidth.

        ``memory_fraction`` is the memory-bound share of a task's execution
        (0 = pure compute, 1 = pure pointer chasing).  That share stretches
        linearly with the number of co-running threads.
        """
        if num_threads <= 1 or memory_fraction <= 0:
            return 1.0
        stretch = 1.0 + self.bandwidth_penalty_per_thread * (num_threads - 1)
        return (1.0 - memory_fraction) + memory_fraction * stretch

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz


DEFAULT_COST_MODEL = CostModel()
