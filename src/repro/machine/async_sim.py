"""Event-driven list-scheduling simulation for asynchronous executors.

The paper's optimized executors for stable-source + structure-based
applications (AVI, LU, DES with a local safe-source test) run with *no
rounds and no barriers*: worker threads pull safe sources from a shared
worklist, execute them, apply the update rule, and newly exposed sources
become available immediately.

``simulate_async`` reproduces the timing of that execution exactly as a
list-scheduling problem over the dynamically unfolding dependence graph:

* A task becomes *available* at the simulated instant the task that exposed
  it completes (its release time).
* An idle worker takes the earliest-priority available task; if none is
  available it idles until the next completion event.
* Each task occupies its worker for the sum of its charged cycles
  (dispatch + rw-set work + execution + update-rule maintenance).

Semantically the ``step`` callback runs tasks one at a time in assignment
order; because concurrently scheduled tasks are safe sources with disjoint
rw-sets, any assignment order is a legal serialization, so the computed
state is exact while the clock models the parallel schedule.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable
from typing import Any

from .simcore import SimMachine
from .stats import Category

#: ``step(task) -> (cost_breakdown, newly_exposed_tasks)``
StepFn = Callable[[Any], tuple[dict[Category, float], list[Any]]]
#: Priority key: smaller = earlier.  Must totally order tasks.
KeyFn = Callable[[Any], Any]
#: ``on_assign(task, thread_id)``: called as a worker picks up a task.
AssignFn = Callable[[Any, int], None]


def simulate_async(
    machine: SimMachine,
    initial: Iterable[Any],
    key: KeyFn,
    step: StepFn,
    on_assign: AssignFn | None = None,
) -> int:
    """Run an asynchronous schedule on ``machine``; return tasks executed.

    ``initial`` are the sources available at time zero.  ``step`` executes a
    task (application code plus update rule), returning its cycle-cost
    breakdown and the tasks it newly exposed as sources.  ``on_assign`` is
    invoked with ``(task, thread_id)`` just before each ``step`` so callers
    can attribute the task to the simulated worker that ran it.
    """
    seq = 0
    available: list[tuple[Any, int, Any]] = []  # (priority key, seq, task)
    for task in initial:
        available.append((key(task), seq, task))
        seq += 1
    heapq.heapify(available)

    idle: list[int] = list(range(machine.num_threads))
    heapq.heapify(idle)
    thread_clock = list(machine.clocks)
    # (completion_time, seq, tid, newly_exposed)
    completions: list[tuple[float, int, int, list[Any]]] = []
    now = max(thread_clock) if thread_clock else 0.0
    executed = 0

    while available or completions:
        while available and idle:
            tid = heapq.heappop(idle)
            _, _, task = heapq.heappop(available)
            if on_assign is not None:
                on_assign(task, tid)
            breakdown, exposed = step(task)
            executed += 1
            idle_time = now - thread_clock[tid]
            if idle_time > 0:
                machine.stats.charge(tid, Category.IDLE, idle_time)
            duration = 0.0
            for category, cycles in breakdown.items():
                if cycles:
                    machine.stats.charge(tid, category, cycles)
                    duration += cycles
            completion = now + duration
            thread_clock[tid] = completion
            heapq.heappush(completions, (completion, seq, tid, exposed))
            seq += 1
        if not completions:
            break
        completion, _, tid, exposed = heapq.heappop(completions)
        now = completion
        heapq.heappush(idle, tid)
        for task in exposed:
            heapq.heappush(available, (key(task), seq, task))
            seq += 1

    # Deposit final clocks; idle stragglers wait for the last completion.
    for tid in range(machine.num_threads):
        if thread_clock[tid] < now:
            machine.stats.charge(tid, Category.IDLE, now - thread_clock[tid])
            thread_clock[tid] = now
        machine.set_clock(tid, thread_clock[tid])
    return executed
