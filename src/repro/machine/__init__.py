"""Simulated multicore substrate (substitute for the paper's 40-core Xeon)."""

from .async_sim import simulate_async
from .costmodel import DEFAULT_COST_MODEL, CostModel
from .simcore import SimMachine
from .stats import Category, CycleStats, WallPhaseStats

__all__ = [
    "Category",
    "CostModel",
    "CycleStats",
    "DEFAULT_COST_MODEL",
    "SimMachine",
    "WallPhaseStats",
    "simulate_async",
]
