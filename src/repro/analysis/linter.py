"""Static cautiousness & property linter for ordered-algorithm sources.

The paper's optimization story (§3.2, Definitions 1–4) rests on *declared*
algorithm properties; until now nothing checked a declaration before the
executor trusted it.  This module inspects an application module's AST —
the ``OrderedAlgorithm(...)`` construction, its ``visit_rw_sets`` /
``apply_update`` function definitions and its ``AlgorithmProperties`` — and
flags declarations the source code contradicts, each finding anchored to a
``file:line``.

Rules (ids are stable; tests and the JSON report depend on them):

``cautiousness``
    A shared-state write (assignment through a closed-over name, a bare
    mutating call on one, or ``ctx.push``) is reachable before a later
    ``ctx.access`` declaration on the same control-flow path of the loop
    body — the body is not cautious (§3.2).  Also fires when the rw-set
    visitor itself mutates shared state: the prefix must be read-only.

``no-adds``
    ``ctx.push`` appears in the body of an algorithm declaring
    ``no_new_tasks`` ("No-Adds", §3.6.2).

``monotonic``
    A pushed item's priority can decrease below its parent's
    (Definition 2).  Each push is first compared symbolically against the
    parent's priority via :mod:`repro.analysis.effects`: a provable
    decrease fires the rule outright, while a provably non-decreasing push
    (``max(parent, child)`` clamps, tuple-prefix copies) is exempt.  Only
    when the comparator is inconclusive does the syntactic fallback run: a
    component computed by subtracting from (or negating) a value derived
    from the incoming item.  Opaque priority computations inside
    application state remain unanalyzed.

``structure-based``
    Under ``structure_based_rw_sets`` the rw-set visitor reads state the
    loop body writes, so rw-sets are data-dependent and neither clause of
    Definition 4 can hold.

``unused-property``
    A declaration that cannot take effect: a ``safe_source_test`` under
    ``stable_source`` (the test is never invoked), ``local_safe_source_test``
    combined with ``stable_source`` (subsumed), or an explicit
    ``non_increasing_rw_sets`` alongside ``structure_based_rw_sets``
    (implied by Definition 4).

The linter is a *falsifier on source form*: a clean report means no rule
fired, not that the properties provably hold.  It never imports or executes
the linted module.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Any

RULE_CAUTIOUSNESS = "cautiousness"
RULE_NO_ADDS = "no-adds"
RULE_MONOTONIC = "monotonic"
RULE_STRUCTURE_BASED = "structure-based"
RULE_UNUSED_PROPERTY = "unused-property"

#: rule id -> one-line description (README table, ``repro lint --rules``).
RULES: dict[str, str] = {
    RULE_CAUTIOUSNESS: (
        "a shared-state write or ctx.push is reachable before a later "
        "ctx.access declaration (the body is not cautious), or the rw-set "
        "visitor mutates shared state"
    ),
    RULE_NO_ADDS: "ctx.push in the body of an algorithm declaring no_new_tasks",
    RULE_MONOTONIC: (
        "a pushed item's priority can decrease below its parent's under "
        "monotonic (symbolic comparison, with a subtraction heuristic "
        "fallback; provably non-decreasing pushes are exempt)"
    ),
    RULE_STRUCTURE_BASED: (
        "the rw-set visitor reads state the loop body writes, so rw-sets "
        "are data-dependent under structure_based_rw_sets"
    ),
    RULE_UNUSED_PROPERTY: (
        "a declared property or safe_source_test that cannot take effect"
    ),
}

#: Boolean flags of AlgorithmProperties, in declaration order.
_PROPERTY_FLAGS = (
    "stable_source",
    "monotonic",
    "non_increasing_rw_sets",
    "structure_based_rw_sets",
    "no_new_tasks",
    "local_safe_source_test",
)


@dataclass(frozen=True)
class Finding:
    """One linter finding, anchored to a source location."""

    rule: str
    message: str
    file: str
    line: int
    col: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "col": self.col,
        }

    def __str__(self) -> str:
        return f"{self.file}:{self.line}:{self.col}: {self.rule}: {self.message}"


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
def _root_name(node: ast.AST) -> ast.Name | None:
    """The base ``Name`` of an attribute/subscript chain, or ``None``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node if isinstance(node, ast.Name) else None


def _access_path(node: ast.AST) -> tuple[str, ...] | None:
    """``state.next_time[elem]`` -> ``("state", "next_time")``; subscripts
    are transparent (they index *into* the named object)."""
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return tuple(reversed(parts))
        else:
            return None


def _paths_overlap(a: tuple[str, ...], b: tuple[str, ...]) -> bool:
    """One path is a prefix of the other (they can alias the same data)."""
    n = min(len(a), len(b))
    return a[:n] == b[:n]


def _local_names(fn: ast.FunctionDef) -> set[str]:
    """Parameters plus every name the function binds (stores)."""
    names = {arg.arg for arg in fn.args.args}
    names.update(arg.arg for arg in fn.args.posonlyargs)
    names.update(arg.arg for arg in fn.args.kwonlyargs)
    if fn.args.vararg:
        names.add(fn.args.vararg.arg)
    if fn.args.kwarg:
        names.add(fn.args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
            names.add(node.name)
    return names


def _ctx_calls(expr: ast.AST, ctx_name: str, method: str) -> list[ast.Call]:
    """All ``<ctx>.<method>(...)`` calls inside an expression tree."""
    out = []
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == ctx_name
        ):
            out.append(node)
    return out


# ----------------------------------------------------------------------
# Extraction: find OrderedAlgorithm(...) constructions in a module
# ----------------------------------------------------------------------
@dataclass
class AlgorithmUnit:
    """One ``OrderedAlgorithm(...)`` call and its resolved pieces."""

    call: ast.Call
    properties: dict[str, bool]          # effective (Definition-4 coupling)
    declared: dict[str, bool]            # exactly as written in the source
    properties_line: int
    visit_fn: ast.FunctionDef | None
    update_fn: ast.FunctionDef | None
    safe_test_node: ast.expr | None      # value of safe_source_test=, if any


def _bool_kwargs(call: ast.Call) -> dict[str, bool]:
    out: dict[str, bool] = {}
    for kw in call.keywords:
        if kw.arg in _PROPERTY_FLAGS and isinstance(kw.value, ast.Constant):
            out[kw.arg] = bool(kw.value.value)
    return out


def _call_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _extract_units(tree: ast.Module) -> list[AlgorithmUnit]:
    functions: dict[str, ast.FunctionDef] = {}
    property_calls: dict[str, ast.Call] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            functions[node.name] = node
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _call_name(node.value) == "AlgorithmProperties":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        property_calls[target.id] = node.value

    units: list[AlgorithmUnit] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and _call_name(node) == "OrderedAlgorithm"):
            continue
        declared: dict[str, bool] = {}
        properties_line = node.lineno
        visit_fn = update_fn = None
        safe_test_node: ast.expr | None = None
        for kw in node.keywords:
            if kw.arg == "properties":
                props_call = None
                if isinstance(kw.value, ast.Call) and _call_name(kw.value) == "AlgorithmProperties":
                    props_call = kw.value
                elif isinstance(kw.value, ast.Name):
                    props_call = property_calls.get(kw.value.id)
                if props_call is not None:
                    declared = _bool_kwargs(props_call)
                    properties_line = props_call.lineno
            elif kw.arg == "visit_rw_sets" and isinstance(kw.value, ast.Name):
                visit_fn = functions.get(kw.value.id)
            elif kw.arg == "apply_update" and isinstance(kw.value, ast.Name):
                update_fn = functions.get(kw.value.id)
            elif kw.arg == "safe_source_test":
                if not (isinstance(kw.value, ast.Constant) and kw.value.value is None):
                    safe_test_node = kw.value
        effective = dict(declared)
        if effective.get("structure_based_rw_sets"):
            effective["non_increasing_rw_sets"] = True  # Definition 4 ⊃ 3
        units.append(
            AlgorithmUnit(
                call=node,
                properties=effective,
                declared=declared,
                properties_line=properties_line,
                visit_fn=visit_fn,
                update_fn=update_fn,
                safe_test_node=safe_test_node,
            )
        )
    return units


# ----------------------------------------------------------------------
# Loop-body scan: cautiousness, writes, pushes
# ----------------------------------------------------------------------
class _BodyScan:
    """Control-flow-aware scan of ``apply_update`` (or the visitor).

    Tracks, along each path, whether a shared-state write has already
    happened ("dirty"); a ``ctx.access`` reached while dirty is a
    cautiousness violation.  Collects every write path (for the
    structure-based cross-check) and every push (for no-adds/monotonic).
    """

    def __init__(self, fn: ast.FunctionDef, file: str):
        self.fn = fn
        self.file = file
        self.locals = _local_names(fn)
        args = fn.args.posonlyargs + fn.args.args
        self.ctx_name = args[1].arg if len(args) > 1 else "ctx"
        self.findings: list[Finding] = []
        self.pushes: list[ast.Call] = []
        self.write_paths: dict[tuple[str, ...], int] = {}  # path -> first line
        self._seen: set[tuple[int, int]] = set()

    # -- events --------------------------------------------------------
    def _emit(self, node: ast.AST, dirty: tuple[int, str]) -> None:
        key = (node.lineno, node.col_offset)
        if key in self._seen:
            return
        self._seen.add(key)
        line, what = dirty
        self.findings.append(
            Finding(
                RULE_CAUTIOUSNESS,
                f"rw-set access declared after {what} at line {line}; the "
                "read-only prefix must precede every shared-state write",
                self.file,
                node.lineno,
                node.col_offset,
            )
        )

    def _is_shared(self, node: ast.AST) -> bool:
        root = _root_name(node)
        return root is not None and root.id not in self.locals

    def _record_write(self, node: ast.AST, line: int) -> None:
        path = _access_path(node)
        if path is not None:
            self.write_paths.setdefault(path, line)

    def _eval_expr(
        self, expr: ast.expr | None, dirty: tuple[int, str] | None
    ) -> tuple[int, str] | None:
        """Accesses are checked against the incoming state; pushes dirty it."""
        if expr is None:
            return dirty
        for call in _ctx_calls(expr, self.ctx_name, "access"):
            if dirty is not None:
                self._emit(call, dirty)
        for call in _ctx_calls(expr, self.ctx_name, "push"):
            self.pushes.append(call)
            if dirty is None:
                dirty = (call.lineno, "a ctx.push")
        return dirty

    # -- statements ----------------------------------------------------
    def _scan_stmt(
        self, stmt: ast.stmt, dirty: tuple[int, str] | None
    ) -> tuple[tuple[int, str] | None, bool]:
        """Returns ``(dirty, terminated)`` after the statement."""
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return dirty, False
        if isinstance(stmt, ast.Return):
            return self._eval_expr(stmt.value, dirty), True
        if isinstance(stmt, (ast.Break, ast.Continue, ast.Raise)):
            return dirty, True
        if isinstance(stmt, ast.If):
            dirty = self._eval_expr(stmt.test, dirty)
            d1, t1 = self._scan_body(stmt.body, dirty)
            d2, t2 = self._scan_body(stmt.orelse, dirty)
            if t1 and t2:
                return dirty, True
            if t1:
                return d2, False
            if t2:
                return d1, False
            return d1 if d1 is not None else d2, False
        if isinstance(stmt, (ast.For, ast.While)):
            head = stmt.iter if isinstance(stmt, ast.For) else stmt.test
            dirty = self._eval_expr(head, dirty)
            d1, _ = self._scan_body(stmt.body, dirty)
            # Second pass with loop-carried state: an access after a write
            # across iterations is also a violation (duplicates deduped).
            d2, _ = self._scan_body(stmt.body, d1)
            out = d2 if d2 is not None else dirty
            d3, _ = self._scan_body(stmt.orelse, out)
            return d3 if d3 is not None else out, False
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                dirty = self._eval_expr(item.context_expr, dirty)
            return self._scan_body(stmt.body, dirty)
        if isinstance(stmt, ast.Try):
            dirty, terminated = self._scan_body(stmt.body, dirty)
            for handler in stmt.handlers:
                dh, _ = self._scan_body(handler.body, dirty)
                dirty = dh if dh is not None else dirty
            dirty, _ = self._scan_body(stmt.orelse, dirty)[0], False
            df, tf = self._scan_body(stmt.finalbody, dirty)
            return df if df is not None else dirty, terminated and tf
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            dirty = self._eval_expr(stmt.value, dirty)
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                elts = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
                for elt in elts:
                    if isinstance(elt, (ast.Attribute, ast.Subscript)) and self._is_shared(elt):
                        self._record_write(elt, stmt.lineno)
                        if dirty is None:
                            dirty = (stmt.lineno, "a shared-state write")
            return dirty, False
        if isinstance(stmt, ast.Expr):
            dirty = self._eval_expr(stmt.value, dirty)
            # A bare call on a closed-over object is (almost always) a
            # mutation — why else discard the result?  Calls whose value is
            # used (assigned, tested, iterated) stay neutral, which keeps
            # read-only helpers like ``uf.find_no_compress`` clean.
            value = stmt.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and self._is_shared(value.func)
                and _root_name(value.func).id != self.ctx_name
            ):
                if dirty is None:
                    dirty = (stmt.lineno, "a mutating call")
            return dirty, False
        if isinstance(stmt, ast.Assert):
            return self._eval_expr(stmt.test, dirty), False
        return dirty, False

    def _scan_body(
        self, body: list[ast.stmt], dirty: tuple[int, str] | None
    ) -> tuple[tuple[int, str] | None, bool]:
        for stmt in body:
            dirty, terminated = self._scan_stmt(stmt, dirty)
            if terminated:
                return dirty, True
        return dirty, False

    def scan(self) -> None:
        self._scan_body(self.fn.body, None)


class _VisitorScan(_BodyScan):
    """The rw-set visitor is the cautious *prefix*: strictly read-only."""

    def scan(self) -> None:
        for node in ast.walk(self.fn):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)) and self._is_shared(target):
                        self.findings.append(
                            Finding(
                                RULE_CAUTIOUSNESS,
                                "the rw-set visitor writes shared state; the "
                                "cautious prefix must be read-only",
                                self.file,
                                node.lineno,
                                node.col_offset,
                            )
                        )
            elif (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and self._is_shared(node.value.func)
                and _root_name(node.value.func).id != self.ctx_name
            ):
                self.findings.append(
                    Finding(
                        RULE_CAUTIOUSNESS,
                        "the rw-set visitor calls a mutating method on shared "
                        "state; the cautious prefix must be read-only",
                        self.file,
                        node.lineno,
                        node.col_offset,
                    )
                )

    def read_paths(self) -> dict[tuple[str, ...], int]:
        """Shared attribute/subscript chains the visitor reads."""
        out: dict[tuple[str, ...], int] = {}
        for node in ast.walk(self.fn):
            if not isinstance(node, (ast.Attribute, ast.Subscript)):
                continue
            if not isinstance(getattr(node, "ctx", ast.Load()), ast.Load):
                continue
            if not self._is_shared(node):
                continue
            path = _access_path(node)
            if path is not None:
                out.setdefault(path, node.lineno)
        return out


# ----------------------------------------------------------------------
# Monotonicity heuristic
# ----------------------------------------------------------------------
def _item_derived_names(fn: ast.FunctionDef) -> tuple[set[str], dict[str, ast.expr]]:
    """Names derived from the incoming item, plus a name -> RHS map."""
    args = fn.args.posonlyargs + fn.args.args
    derived: set[str] = {args[0].arg} if args else set()
    rhs: dict[str, ast.expr] = {}
    assigns = sorted(
        (n for n in ast.walk(fn) if isinstance(n, ast.Assign)),
        key=lambda n: n.lineno,
    )
    for node in assigns:
        mentions = any(
            isinstance(sub, ast.Name) and sub.id in derived
            for sub in ast.walk(node.value)
        )
        for target in node.targets:
            elts = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
            for elt in elts:
                if isinstance(elt, ast.Name):
                    rhs[elt.id] = node.value
                    if mentions:
                        derived.add(elt.id)
    return derived, rhs


def _decreasing_subexpr(
    expr: ast.expr, derived: set[str], rhs: dict[str, ast.expr], depth: int = 0
) -> ast.expr | None:
    """A ``Sub``/``USub`` applied to an item-derived value, if any."""
    if depth > 3:
        return None

    def is_derived(node: ast.expr) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in derived:
                return True
        return False

    for node in ast.walk(expr):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
            if is_derived(node.left):
                return node
        elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            if is_derived(node.operand):
                return node
        elif isinstance(node, ast.Name) and node.id in rhs and node.id not in derived:
            continue
    # One level of local resolution: names whose RHS itself decreases.
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in rhs:
            hit = _decreasing_subexpr(rhs[node.id], derived, rhs, depth + 1)
            if hit is not None:
                return hit
    return None


def _push_priority_comparisons(file: str, source: str) -> dict[int, str]:
    """Symbolic child-vs-parent priority verdict per ``ctx.push`` line.

    Runs the effects engine (:mod:`repro.analysis.effects`) over the module
    and maps each reachable push to ``compare_priorities``'s verdict
    (``gt``/``ge``/``eq``/``lt``/``unknown``).  Full cross-module resolution
    is used when ``file`` matches what is on disk; otherwise the engine
    analyzes the given text alone.  Any analysis failure degrades to an
    empty map — the syntactic heuristic then judges every push.
    """
    try:
        from .effects import summarize_file

        path = Path(file)
        if path.is_file() and path.read_text() == source:
            units = summarize_file(path)
        else:
            units = summarize_file(path, source=source)
        verdicts: dict[int, str] = {}
        for unit in units:
            for push, verdict in unit.push_comparisons():
                verdicts.setdefault(push.line, verdict)
        return verdicts
    except Exception:  # noqa: BLE001 - a linter must not crash on odd input
        return {}


# ----------------------------------------------------------------------
# Per-unit rule application
# ----------------------------------------------------------------------
def _lint_unit(
    unit: AlgorithmUnit, file: str, push_verdicts: dict[int, str] | None = None
) -> list[Finding]:
    findings: list[Finding] = []
    props = unit.properties

    update_scan: _BodyScan | None = None
    if unit.update_fn is not None:
        update_scan = _BodyScan(unit.update_fn, file)
        update_scan.scan()
        findings.extend(update_scan.findings)

    visitor_scan: _VisitorScan | None = None
    if unit.visit_fn is not None:
        visitor_scan = _VisitorScan(unit.visit_fn, file)
        visitor_scan.scan()
        findings.extend(visitor_scan.findings)

    if update_scan is not None and props.get("no_new_tasks"):
        for push in update_scan.pushes:
            findings.append(
                Finding(
                    RULE_NO_ADDS,
                    "ctx.push in the body of an algorithm declaring "
                    "no_new_tasks (No-Adds, §3.6.2)",
                    file,
                    push.lineno,
                    push.col_offset,
                )
            )

    if update_scan is not None and props.get("monotonic"):
        derived, rhs = _item_derived_names(unit.update_fn)
        verdicts = push_verdicts or {}
        for push in update_scan.pushes:
            verdict = verdicts.get(push.lineno)
            if verdict in ("gt", "ge", "eq"):
                # Provably non-decreasing — e.g. a max(parent, child) clamp
                # or a tuple-prefix copy of the priority components.  The
                # symbolic comparison supersedes the subtraction heuristic,
                # which would false-positive on the inner subtraction.
                continue
            if verdict == "lt":
                findings.append(
                    Finding(
                        RULE_MONOTONIC,
                        "pushed item's priority is provably lower than its "
                        "parent's; the child precedes its parent "
                        "(Definition 2)",
                        file,
                        push.lineno,
                        push.col_offset,
                    )
                )
                continue
            for arg in push.args:
                hit = _decreasing_subexpr(arg, derived, rhs)
                if hit is not None:
                    findings.append(
                        Finding(
                            RULE_MONOTONIC,
                            "pushed item subtracts from a value derived from "
                            "the incoming item; the child's priority can "
                            "precede its parent's (Definition 2)",
                            file,
                            hit.lineno,
                            hit.col_offset,
                        )
                    )
                    break

    if (
        visitor_scan is not None
        and update_scan is not None
        and props.get("structure_based_rw_sets")
    ):
        writes = update_scan.write_paths
        for path, line in sorted(visitor_scan.read_paths().items(), key=lambda kv: kv[1]):
            for wpath, wline in writes.items():
                if _paths_overlap(path, wpath):
                    findings.append(
                        Finding(
                            RULE_STRUCTURE_BASED,
                            f"the rw-set visitor reads {'.'.join(path)}, which "
                            f"the loop body writes (line {wline}); rw-sets are "
                            "data-dependent, contradicting "
                            "structure_based_rw_sets (Definition 4)",
                            file,
                            line,
                            0,
                        )
                    )
                    break

    declared = unit.declared
    if unit.safe_test_node is not None and declared.get("stable_source"):
        findings.append(
            Finding(
                RULE_UNUSED_PROPERTY,
                "safe_source_test is never invoked: stable_source declares "
                "every source safe (Definition 1)",
                file,
                unit.safe_test_node.lineno,
                unit.safe_test_node.col_offset,
            )
        )
    if declared.get("local_safe_source_test") and declared.get("stable_source"):
        findings.append(
            Finding(
                RULE_UNUSED_PROPERTY,
                "local_safe_source_test is subsumed by stable_source (no "
                "safe-source test runs at all)",
                file,
                unit.properties_line,
                0,
            )
        )
    if declared.get("non_increasing_rw_sets") and declared.get("structure_based_rw_sets"):
        findings.append(
            Finding(
                RULE_UNUSED_PROPERTY,
                "non_increasing_rw_sets is implied by structure_based_rw_sets "
                "(Definition 4 strengthens Definition 3); drop the redundant "
                "declaration",
                file,
                unit.properties_line,
                0,
            )
        )
    return findings


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def lint_source(source: str, file: str = "<string>") -> list[Finding]:
    """Lint Python source text; returns findings sorted by location."""
    tree = ast.parse(source, filename=file)
    units = _extract_units(tree)
    push_verdicts: dict[int, str] | None = None
    if any(u.properties.get("monotonic") and u.update_fn is not None for u in units):
        push_verdicts = _push_priority_comparisons(file, source)
    findings: list[Finding] = []
    for unit in units:
        findings.extend(_lint_unit(unit, file, push_verdicts))
    return sorted(findings, key=lambda f: (f.line, f.col, f.rule))


def lint_file(path: str | Path) -> list[Finding]:
    """Lint one Python file."""
    path = Path(path)
    return lint_source(path.read_text(), file=str(path))


def app_source_path(app: str) -> Path:
    """The ``app.py`` module a registered application's algorithm lives in."""
    import repro.apps as apps_pkg

    path = Path(apps_pkg.__file__).parent / app / "app.py"
    if not path.is_file():
        raise ValueError(f"no source module for app {app!r} at {path}")
    return path


def lint_app(app: str) -> list[Finding]:
    """Lint a registered application by name, with repo-relative anchors."""
    path = app_source_path(app)
    display = path
    cwd = Path.cwd()
    try:
        display = path.relative_to(cwd)
    except ValueError:
        pass
    return lint_source(path.read_text(), file=str(display))
