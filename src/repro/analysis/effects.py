"""Interprocedural effect summaries for ordered-algorithm operators.

The linter (:mod:`.linter`) falsifies property declarations from *source
form*; this module goes further and builds the abstract-interpretation
substrate a prover needs.  For every ``OrderedAlgorithm(...)`` construction
it summarizes the operator functions — ``visit_rw_sets``, ``apply_update``,
``safe_source_test`` and the helpers they call, resolved across the app's
module graph — into an :class:`OperatorEffects` record:

* shared locations **read** and **written**, as attribute paths rooted at
  the operator's closure (``("state", "est")`` for ``est[v] = h`` under a
  ``est = state.est`` alias), with writes split into three confidence
  classes: *direct* (an assignment the analysis saw), *opaque* (a shared
  object flowed into a call that mutates it, e.g. an LU kernel mutating a
  block in place — the container is known, the element granularity is
  lost) and *weak* (a shared receiver passed to a call the analysis could
  not resolve: no mutation proven, none excluded);
* every ``ctx.push`` site with an **abstract payload** — a symbolic value
  over the incoming item's components — plus the path condition it was
  pushed under (``item[0] == "fwd"``);
* the rw-set visitor's declared keys and which item components they
  depend on;
* whether a ``safe_source_test`` reads the global :class:`SourceView`.

Abstract values form a small algebra (item projections, constants, shared
paths, ``base + const`` offsets, ``max(...)``, tuples, opaque-with-taint)
that is just rich enough to evaluate the app's ``priority`` function
symbolically on a pushed payload and compare it lexicographically against
the parent's priority — the engine behind the conclusive ``monotonic``
verdicts in :mod:`.infer` and the priority-aware linter rule.

The analysis never imports or executes the analyzed module: cross-module
resolution walks package ``__init__``-delimited source trees only.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Boolean flags of AlgorithmProperties, in declaration order.
PROPERTY_FLAGS = (
    "stable_source",
    "monotonic",
    "non_increasing_rw_sets",
    "structure_based_rw_sets",
    "no_new_tasks",
    "local_safe_source_test",
)

#: Method names that grow a container in place (Definition 3 evidence).
GROW_METHODS = frozenset(
    {"append", "appendleft", "add", "insert", "extend", "update", "setdefault", "push"}
)

#: Calls that preserve the ordering of their single argument.
_ORDER_PRESERVING = frozenset({"int", "float", "abs"})

_BUILTINS = frozenset(
    {
        "len", "range", "sorted", "enumerate", "zip", "sum", "min", "max",
        "abs", "int", "float", "bool", "str", "tuple", "list", "set", "dict",
        "frozenset", "print", "isinstance", "iter", "next", "reversed", "map",
        "filter", "all", "any", "repr", "round", "divmod", "slice", "id",
        "hash", "None", "True", "False", "Exception", "ValueError",
        "RuntimeError", "AssertionError", "KeyError", "IndexError",
    }
)


# ----------------------------------------------------------------------
# Abstract values
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AV:
    """One abstract value; ``kind`` selects which fields are meaningful."""

    kind: str                       # item|const|shared|opaque|tuple|offset|max|ctx|task|view|ref|ext
    proj: tuple = ()                # item: projection path into the item
    value: Any = None               # const: the literal
    path: tuple = ()                # shared: attribute path from a root name
    base: "AV | None" = None        # offset: base + delta
    delta: Any = None               # offset: numeric constant
    elems: tuple = ()               # tuple / max arguments
    deps: frozenset = frozenset()   # item projections this value depends on
    cls: Any = None                 # shared: resolved ClassInfo, if known
    ref: Any = None                 # ref: ("func",mi,fn) | ("method",ci,fn,recv,sub) | ("module",mi)


def ITEM(proj: tuple = ()) -> AV:
    return AV(kind="item", proj=proj, deps=frozenset({proj}))


def CONST(value: Any) -> AV:
    return AV(kind="const", value=value)


def SHARED(path: tuple, cls: Any = None, deps: frozenset = frozenset()) -> AV:
    return AV(kind="shared", path=path, cls=cls, deps=deps)


def OPAQUE(deps: frozenset = frozenset()) -> AV:
    return AV(kind="opaque", deps=deps)


def TUP(elems: tuple) -> AV:
    return AV(kind="tuple", elems=tuple(elems),
              deps=frozenset().union(*(e.deps for e in elems)) if elems else frozenset())


def OFFSET(base: AV, delta: Any) -> AV:
    if base.kind == "const" and isinstance(base.value, (int, float)):
        return CONST(base.value + delta)
    if base.kind == "offset":
        return OFFSET(base.base, base.delta + delta)
    return AV(kind="offset", base=base, delta=delta, deps=base.deps)


def MAXV(elems: tuple) -> AV:
    return AV(kind="max", elems=tuple(elems),
              deps=frozenset().union(*(e.deps for e in elems)) if elems else frozenset())


_EXT = AV(kind="ext")
_CTX = AV(kind="ctx")
_TASK = AV(kind="task")
_VIEW = AV(kind="view")
_OPAQUE = OPAQUE()


def av_equal(a: AV, b: AV) -> bool:
    """Structural equality strong enough to mean "provably the same value"."""
    if a.kind != b.kind:
        return False
    if a.kind == "item":
        return a.proj == b.proj
    if a.kind == "const":
        return type(a.value) is type(b.value) and a.value == b.value
    if a.kind == "shared":
        return a.path == b.path
    if a.kind == "offset":
        return a.delta == b.delta and av_equal(a.base, b.base)
    if a.kind in ("tuple", "max"):
        return len(a.elems) == len(b.elems) and all(
            av_equal(x, y) for x, y in zip(a.elems, b.elems)
        )
    return False  # opaque/ext/ctx/... are never provably equal


# ----------------------------------------------------------------------
# Symbolic priority comparison
# ----------------------------------------------------------------------
def _cmp_component(child: AV, parent: AV) -> str:
    """Compare one priority component: ``gt``/``ge``/``eq``/``lt``/``unknown``."""
    if av_equal(child, parent):
        return "eq"
    if child.kind == "const" and parent.kind == "const":
        try:
            if child.value > parent.value:
                return "gt"
            if child.value < parent.value:
                return "lt"
            return "eq"
        except TypeError:
            return "unknown"
    if child.kind == "offset" and av_equal(child.base, parent):
        if child.delta > 0:
            return "gt"
        if child.delta < 0:
            return "lt"
        return "eq"
    if parent.kind == "offset" and av_equal(parent.base, child):
        if parent.delta > 0:
            return "lt"
        if parent.delta < 0:
            return "gt"
        return "eq"
    if (
        child.kind == "offset"
        and parent.kind == "offset"
        and av_equal(child.base, parent.base)
    ):
        if child.delta > parent.delta:
            return "gt"
        if child.delta < parent.delta:
            return "lt"
        return "eq"
    if child.kind == "max":
        # max(a, ...) >= a: a lower bound >= parent bounds the max.
        best = "unknown"
        for arm in child.elems:
            cmp = _cmp_component(arm, parent)
            if cmp == "gt":
                return "gt"
            if cmp in ("eq", "ge"):
                best = "ge"
        return best
    return "unknown"


def compare_priorities(child: AV, parent: AV) -> str:
    """Lexicographic compare of two abstract priorities.

    Returns ``gt``/``ge``/``eq`` (child never precedes parent), ``lt``
    (child provably precedes: Definition 2 is violated) or ``unknown``.
    """
    if child.kind == "tuple" and parent.kind == "tuple":
        if len(child.elems) != len(parent.elems):
            return "unknown"
        pairs = list(zip(child.elems, parent.elems))
    else:
        pairs = [(child, parent)]
    ge_seen = False
    for c, p in pairs:
        cmp = _cmp_component(c, p)
        if cmp == "eq":
            continue
        if cmp == "gt":
            return "gt"
        if cmp == "ge":
            ge_seen = True
            continue
        # A later decrease (or unknown) only matters if every earlier
        # component was provably equal; under a pending ">=" the earlier
        # component may already be strictly greater.
        return "unknown" if ge_seen else cmp if cmp == "lt" else "unknown"
    return "ge" if ge_seen else "eq"


# ----------------------------------------------------------------------
# Module graph
# ----------------------------------------------------------------------
@dataclass
class ClassInfo:
    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    _attr_types: dict[str, "ClassInfo | None"] | None = None

    def attr_type(self, index: "ProgramIndex", attr: str) -> "ClassInfo | None":
        """Resolved class of ``self.<attr>``, from ``__init__`` or AnnAssign."""
        if self._attr_types is None:
            self._attr_types = {}
            init = self.methods.get("__init__")
            if init is not None:
                params = {
                    a.arg: a.annotation
                    for a in init.args.posonlyargs + init.args.args
                    if a.annotation is not None
                }
                for node in ast.walk(init):
                    target = value = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign) and node.value is not None:
                        target, value = node.target, node.value
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    cls: ClassInfo | None = None
                    if isinstance(value, ast.Call):
                        cls = index.resolve_class_expr(self.module, value.func)
                    elif isinstance(value, ast.Name) and value.id in params:
                        cls = index.resolve_class_expr(self.module, params[value.id])
                    if cls is not None:
                        self._attr_types.setdefault(target.attr, cls)
        return self._attr_types.get(attr)


@dataclass
class ModuleInfo:
    dotted: str                      # "repro.apps.bfs.app" ("" when unknown)
    path: Path
    tree: ast.Module
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    constants: dict[str, Any] = field(default_factory=dict)
    imports: dict[str, tuple[str, str | None]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, dotted: str) -> "ModuleInfo":
        return _index_tree(path, dotted, ast.parse(path.read_text(), filename=str(path)))


class ProgramIndex:
    """Parsed modules reachable from one entry file, resolved by source path
    only (nothing is imported)."""

    def __init__(self, entry: Path):
        self.entry = Path(entry).resolve()
        self._modules: dict[str, ModuleInfo | None] = {}
        # Find the package root: walk up while __init__.py exists.
        parent = self.entry.parent
        parts: list[str] = []
        while (parent / "__init__.py").is_file():
            parts.append(parent.name)
            parent = parent.parent
        self.root = parent
        self.entry_dotted = ".".join(reversed(parts + []))
        if self.entry_dotted:
            self.entry_dotted += "." + self.entry.stem
        self.entry_module = ModuleInfo.parse(self.entry, self.entry_dotted)
        if self.entry_dotted:
            self._modules[self.entry_dotted] = self.entry_module

    def module(self, dotted: str) -> ModuleInfo | None:
        if dotted in self._modules:
            return self._modules[dotted]
        mi: ModuleInfo | None = None
        if dotted:
            base = self.root / Path(*dotted.split("."))
            for candidate in (base.with_suffix(".py"), base / "__init__.py"):
                if candidate.is_file():
                    try:
                        mi = ModuleInfo.parse(candidate, dotted)
                    except SyntaxError:
                        mi = None
                    break
        self._modules[dotted] = mi
        return mi

    def resolve_name(self, mi: ModuleInfo, name: str):
        """What a module-scope name denotes: ('func',mi,fn) | ('class',ci) |
        ('module',mi) | ('const',value) | None."""
        if name in mi.functions:
            return ("func", mi, mi.functions[name])
        if name in mi.classes:
            return ("class", mi.classes[name])
        if name in mi.constants:
            return ("const", mi.constants[name])
        if name in mi.imports:
            target, attr = mi.imports[name]
            if attr is None:
                sub = self.module(target)
                return ("module", sub) if sub is not None else None
            sub = self.module(target)
            if sub is not None:
                if attr in sub.functions or attr in sub.classes or attr in sub.constants:
                    return self.resolve_name(sub, attr)
            # "from . import kernels" arrives as ImportFrom(module=None).
            child = self.module((target + "." if target else "") + attr)
            if child is not None:
                return ("module", child)
        return None

    def resolve_class_expr(self, mi: ModuleInfo, node: ast.AST | None) -> ClassInfo | None:
        """A class named by an expression: ``Name``, ``mod.Name`` or a
        string annotation."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):  # Optional[X], list[X] → not a class
            return None
        if isinstance(node, ast.BinOp):  # X | None → X
            return self.resolve_class_expr(mi, node.left)
        if isinstance(node, ast.Name):
            hit = self.resolve_name(mi, node.id)
            return hit[1] if hit is not None and hit[0] == "class" else None
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            hit = self.resolve_name(mi, node.value.id)
            if hit is not None and hit[0] == "module":
                sub = hit[1]
                inner = self.resolve_name(sub, node.attr)
                return inner[1] if inner is not None and inner[0] == "class" else None
        return None


# ----------------------------------------------------------------------
# Effect summaries
# ----------------------------------------------------------------------
@dataclass
class PushSite:
    payload: AV
    node: ast.Call
    line: int
    constraints: tuple[tuple[tuple, Any], ...]  # ((proj, const-value), ...)


@dataclass
class Decl:
    """One ``ctx.read``/``ctx.write`` (visitor) or ``ctx.access`` (body)."""

    op: str
    key: AV
    line: int


@dataclass
class Summary:
    """Effects of one operator function, interprocedurally resolved."""

    reads: dict[tuple, int] = field(default_factory=dict)
    writes: dict[tuple, int] = field(default_factory=dict)         # direct
    opaque_writes: dict[tuple, int] = field(default_factory=dict)  # via calls
    grow_writes: dict[tuple, int] = field(default_factory=dict)    # append/add/...
    weak_writes: dict[tuple, int] = field(default_factory=dict)    # unresolved call
    pushes: list[PushSite] = field(default_factory=list)
    decls: list[Decl] = field(default_factory=list)
    view_uses: list[tuple[str, int]] = field(default_factory=list)
    unresolved: list[tuple[str, int]] = field(default_factory=list)
    ctx_escapes: bool = False      # ctx handed to an unresolved call
    view_escapes: bool = False     # SourceView handed to any call
    ret: AV = field(default_factory=lambda: _OPAQUE)

    def all_write_paths(self) -> dict[tuple, int]:
        out = dict(self.writes)
        for src in (self.opaque_writes, self.weak_writes):
            for p, line in src.items():
                out.setdefault(p, line)
        return out

    def _rec(self, table: dict[tuple, int], path: tuple, line: int) -> None:
        if path:
            table.setdefault(tuple(path), line)


def paths_overlap(a: tuple, b: tuple) -> bool:
    n = min(len(a), len(b))
    return a[:n] == b[:n]


_MAX_CALL_DEPTH = 6


class _FunctionAnalyzer(ast.NodeVisitor):
    """Abstract interpretation of one function body.

    ``env`` maps local names to abstract values; free names fall through to
    ``closure`` (the enclosing ``make_algorithm`` scope or module scope).
    Effects accumulate into ``self.summary`` with paths already expressed
    in the *caller's* frame (callee analysis happens in its own frame and
    is substituted at the call site).
    """

    def __init__(
        self,
        engine: "EffectsEngine",
        mi: ModuleInfo,
        fn: ast.FunctionDef | ast.Lambda,
        env: dict[str, AV],
        closure: dict[str, AV],
        depth: int = 0,
    ):
        self.engine = engine
        self.index = engine.index
        self.mi = mi
        self.fn = fn
        self.env = env
        self.closure = closure
        self.depth = depth
        self.summary = Summary()
        self.ctx_name: str | None = None
        self.constraints: dict[tuple, Any] = {}
        self._returns: list[AV] = []

    # -- name / environment helpers ------------------------------------
    def _params(self) -> list[ast.arg]:
        return self.fn.args.posonlyargs + self.fn.args.args

    def _lookup(self, name: str) -> AV:
        if name in self.env:
            return self.env[name]
        if name in self.closure:
            return self.closure[name]
        hit = self.index.resolve_name(self.mi, name)
        if hit is not None:
            if hit[0] == "const":
                return CONST(hit[1])
            if hit[0] in ("func", "class", "module"):
                return AV(kind="ref", ref=hit)
        if name in _BUILTINS:
            return _EXT
        # A true closure/global whose binding we cannot see: shared state
        # addressed by its own name.
        return SHARED((name,))

    def _bind(self, target: ast.expr, value: AV, line: int) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for i, elt in enumerate(target.elts):
                if isinstance(elt, ast.Starred):
                    self._bind(elt.value, OPAQUE(value.deps), line)
                    continue
                self._bind(elt, self._project(value, i), line)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            path = self._target_path(target)
            if path is not None:
                self.summary._rec(self.summary.writes, path, line)

    def _project(self, value: AV, i: int) -> AV:
        if value.kind == "item":
            return ITEM(value.proj + (i,))
        if value.kind == "tuple" and i < len(value.elems):
            return value.elems[i]
        if value.kind == "shared":
            return SHARED(value.path, cls=None, deps=value.deps)
        return OPAQUE(value.deps)

    def _target_path(self, node: ast.expr) -> tuple | None:
        """Shared path of an assignment target (subscript-transparent)."""
        attrs: list[str] = []
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute):
                attrs.append(node.attr)
            else:
                self._eval(node.slice)  # indices are reads
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self._lookup(node.id)
        if node.id in self.env and base.kind != "shared":
            return None  # write to a local object the caller can't see
        attrs.reverse()
        if base.kind == "shared":
            return base.path + tuple(attrs)
        if base.kind in ("ref", "ext", "ctx", "task", "view", "const"):
            return None
        # Closure name bound to an opaque per-run value (e.g. a scratch
        # numpy array created in make_algorithm): address it by name.
        if node.id not in self.env:
            return (node.id, *attrs)
        return None

    # -- expression evaluation -----------------------------------------
    def _eval(self, node: ast.expr | None, inner: bool = False) -> AV:
        if node is None:
            return _OPAQUE
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node, inner)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child)
        return _OPAQUE

    def _eval_Constant(self, node: ast.Constant, inner: bool) -> AV:
        return CONST(node.value)

    def _eval_Name(self, node: ast.Name, inner: bool) -> AV:
        value = self._lookup(node.id)
        if value.kind == "item" and value.proj in self.constraints:
            return CONST(self.constraints[value.proj])
        if value.kind == "shared" and not inner and node.id not in self.env:
            self.summary._rec(self.summary.reads, value.path, node.lineno)
        return value

    def _eval_Tuple(self, node: ast.Tuple, inner: bool) -> AV:
        return TUP(tuple(self._eval(e) for e in node.elts))

    _eval_List = _eval_Tuple

    def _eval_Attribute(self, node: ast.Attribute, inner: bool) -> AV:
        base = self._eval(node.value, inner=True)
        if base.kind == "view":
            self.summary.view_uses.append((node.attr, node.lineno))
            return OPAQUE()
        if base.kind == "task":
            if node.attr == "item":
                return ITEM(())
            return _OPAQUE
        if base.kind == "ref":
            kind = base.ref[0]
            if kind == "module":
                hit = self.index.resolve_name(base.ref[1], node.attr)
                if hit is not None:
                    if hit[0] == "const":
                        return CONST(hit[1])
                    return AV(kind="ref", ref=hit)
                return _EXT
            if kind == "class":
                ci = base.ref[1]
                if node.attr in ci.methods:
                    return AV(kind="ref", ref=("func", ci.module, ci.methods[node.attr]))
            return _EXT
        if base.kind == "ext":
            return _EXT
        if base.kind == "shared":
            cls = None
            if base.cls is not None:
                # Attribute may itself have a known class; method lookups
                # happen in _eval_Call, data attributes here.
                cls = base.cls.attr_type(self.index, node.attr)
            value = SHARED(base.path + (node.attr,), cls=cls, deps=base.deps)
            if not inner:
                self.summary._rec(self.summary.reads, value.path, node.lineno)
            return value
        return OPAQUE(base.deps)

    def _eval_Subscript(self, node: ast.Subscript, inner: bool) -> AV:
        base = self._eval(node.value, inner=True)
        idx = self._eval(node.slice)
        if base.kind == "item" and idx.kind == "const" and isinstance(idx.value, int):
            value = ITEM(base.proj + (idx.value,))
            if value.proj in self.constraints:
                return CONST(self.constraints[value.proj])
            return value
        if base.kind == "tuple" and idx.kind == "const" and isinstance(idx.value, int):
            if -len(base.elems) <= idx.value < len(base.elems):
                return base.elems[idx.value]
            return _OPAQUE
        if base.kind == "shared":
            value = SHARED(base.path, cls=None, deps=base.deps | idx.deps)
            if not inner:
                self.summary._rec(self.summary.reads, value.path, node.lineno)
            return value
        if base.kind == "const" and idx.kind == "const":
            try:
                return CONST(base.value[idx.value])
            except Exception:
                return _OPAQUE
        return OPAQUE(base.deps | idx.deps)

    def _eval_BinOp(self, node: ast.BinOp, inner: bool) -> AV:
        left = self._eval(node.left)
        right = self._eval(node.right)
        if left.kind == "const" and right.kind == "const":
            try:
                return CONST(_apply_binop(node.op, left.value, right.value))
            except Exception:
                return _OPAQUE
        if isinstance(node.op, ast.Add):
            if right.kind == "const" and isinstance(right.value, (int, float)):
                return OFFSET(left, right.value)
            if left.kind == "const" and isinstance(left.value, (int, float)):
                return OFFSET(right, left.value)
        if isinstance(node.op, ast.Sub) and right.kind == "const" and isinstance(
            right.value, (int, float)
        ):
            return OFFSET(left, -right.value)
        return OPAQUE(left.deps | right.deps)

    def _eval_UnaryOp(self, node: ast.UnaryOp, inner: bool) -> AV:
        operand = self._eval(node.operand)
        if operand.kind == "const" and isinstance(node.op, ast.USub):
            try:
                return CONST(-operand.value)
            except Exception:
                return _OPAQUE
        return OPAQUE(operand.deps)

    def _eval_BoolOp(self, node: ast.BoolOp, inner: bool) -> AV:
        deps: frozenset = frozenset()
        for v in node.values:
            deps |= self._eval(v).deps
        return OPAQUE(deps)

    def _eval_Compare(self, node: ast.Compare, inner: bool) -> AV:
        deps = self._eval(node.left).deps
        for comp in node.comparators:
            deps |= self._eval(comp).deps
        return OPAQUE(deps)

    def _eval_IfExp(self, node: ast.IfExp, inner: bool) -> AV:
        self._eval(node.test)
        a = self._eval(node.body)
        b = self._eval(node.orelse)
        if av_equal(a, b):
            return a
        return OPAQUE(a.deps | b.deps)

    def _eval_JoinedStr(self, node: ast.JoinedStr, inner: bool) -> AV:
        for v in node.values:
            self._eval(v)
        return _OPAQUE

    def _eval_FormattedValue(self, node: ast.FormattedValue, inner: bool) -> AV:
        self._eval(node.value)
        return _OPAQUE

    def _eval_Starred(self, node: ast.Starred, inner: bool) -> AV:
        return self._eval(node.value)

    def _comprehension(self, node, parts: list[ast.expr]) -> AV:
        saved = dict(self.env)
        deps: frozenset = frozenset()
        for gen in node.generators:
            it = self._eval(gen.iter)
            deps |= it.deps
            self._bind(gen.target, OPAQUE(it.deps), node.lineno)
            for cond in gen.ifs:
                deps |= self._eval(cond).deps
        for part in parts:
            deps |= self._eval(part).deps
        self.env = saved
        return OPAQUE(deps)

    def _eval_ListComp(self, node: ast.ListComp, inner: bool) -> AV:
        return self._comprehension(node, [node.elt])

    _eval_SetComp = _eval_ListComp
    _eval_GeneratorExp = _eval_ListComp

    def _eval_DictComp(self, node: ast.DictComp, inner: bool) -> AV:
        return self._comprehension(node, [node.key, node.value])

    def _eval_Dict(self, node: ast.Dict, inner: bool) -> AV:
        deps: frozenset = frozenset()
        for k, v in zip(node.keys, node.values):
            if k is not None:
                deps |= self._eval(k).deps
            deps |= self._eval(v).deps
        return OPAQUE(deps)

    def _eval_Lambda(self, node: ast.Lambda, inner: bool) -> AV:
        return _OPAQUE

    # -- calls ---------------------------------------------------------
    def _eval_Call(self, node: ast.Call, inner: bool, discarded: bool = False) -> AV:
        func = node.func
        # ctx.<op>(...)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == self.ctx_name
        ):
            return self._ctx_call(func.attr, node)
        func_av = self._eval(func, inner=True)
        args = [self._eval(a) for a in node.args]
        kw_avs = [self._eval(kw.value) for kw in node.keywords]
        if any(a.kind == "view" for a in args + kw_avs):
            self.summary.view_escapes = True
        arg_deps = frozenset().union(*(a.deps for a in args)) if args else frozenset()

        if func_av.kind == "ext":
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            if name == "max" and len(args) >= 2:
                return MAXV(tuple(args))
            if name in _ORDER_PRESERVING and len(args) == 1:
                return args[0]
            if self._ctx_in_args(node):
                self.summary.ctx_escapes = True
            return OPAQUE(arg_deps)

        if func_av.kind == "ref" and func_av.ref[0] == "func":
            return self._resolved_call(func_av.ref[1], func_av.ref[2], node, args)

        if func_av.kind == "ref" and func_av.ref[0] == "class":
            return OPAQUE(arg_deps)  # constructing a fresh object

        # Method on a shared object?
        if isinstance(func, ast.Attribute):
            recv = self._eval(func.value, inner=True)
            if recv.kind == "shared":
                if recv.cls is not None and func.attr in recv.cls.methods:
                    return self._resolved_call(
                        recv.cls.module,
                        recv.cls.methods[func.attr],
                        node,
                        args,
                        recv=recv,
                        recv_subscripted=isinstance(func.value, ast.Subscript),
                    )
                # Unresolved method on shared state.
                self.summary._rec(self.summary.reads, recv.path, node.lineno)
                for a in args:
                    if a.kind == "shared":
                        self.summary._rec(self.summary.reads, a.path, node.lineno)
                if discarded:
                    self.summary._rec(self.summary.opaque_writes, recv.path, node.lineno)
                    if func.attr in GROW_METHODS:
                        self.summary._rec(self.summary.grow_writes, recv.path, node.lineno)
                else:
                    self.summary._rec(self.summary.weak_writes, recv.path, node.lineno)
                self.summary.unresolved.append((func.attr, node.lineno))
                if self._ctx_in_args(node):
                    self.summary.ctx_escapes = True
                return OPAQUE(arg_deps | recv.deps)

        # Fully unresolved callable: taint shared arguments weakly.
        for a in args:
            if a.kind == "shared":
                self.summary._rec(self.summary.reads, a.path, node.lineno)
                self.summary._rec(self.summary.weak_writes, a.path, node.lineno)
        if self._ctx_in_args(node):
            self.summary.ctx_escapes = True
        name = getattr(func, "id", getattr(func, "attr", "?"))
        self.summary.unresolved.append((str(name), node.lineno))
        return OPAQUE(arg_deps)

    def _ctx_in_args(self, node: ast.Call) -> bool:
        for a in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(a, ast.Name) and a.id == self.ctx_name:
                return True
        return False

    def _ctx_call(self, op: str, node: ast.Call) -> AV:
        args = [self._eval(a) for a in node.args]
        if op == "push" and args:
            self.summary.pushes.append(
                PushSite(
                    payload=args[0],
                    node=node,
                    line=node.lineno,
                    constraints=tuple(sorted(self.constraints.items())),
                )
            )
        elif op in ("read", "write", "access") and args:
            self.summary.decls.append(Decl(op=op, key=args[0], line=node.lineno))
        return _OPAQUE

    def _resolved_call(
        self,
        callee_mi: ModuleInfo,
        callee: ast.FunctionDef,
        node: ast.Call,
        args: list[AV],
        recv: AV | None = None,
        recv_subscripted: bool = False,
    ) -> AV:
        if self.depth >= _MAX_CALL_DEPTH or id(callee) in self.engine.call_stack:
            if recv is not None:
                self.summary._rec(self.summary.weak_writes, recv.path, node.lineno)
            return _OPAQUE
        sub = self.engine.generic_summary(callee_mi, callee, self.depth + 1)
        params = [a.arg for a in callee.args.posonlyargs + callee.args.args]
        binding: dict[str, tuple[AV, bool]] = {}
        pos = list(args)
        if recv is not None and params:
            binding[params[0]] = (recv, recv_subscripted)
            params = params[1:]
        for pname, (aexpr, aval) in zip(params, zip(node.args, pos)):
            binding[pname] = (
                aval,
                isinstance(aexpr, ast.Subscript),
            )
        for kw in node.keywords:
            if kw.arg is not None:
                binding[kw.arg] = (self._eval(kw.value), isinstance(kw.value, ast.Subscript))
        self._absorb(sub, binding, callee_mi, node.lineno)
        return _substitute_av(sub.ret, binding)

    def _absorb(
        self,
        sub: Summary,
        binding: dict[str, tuple[AV, bool]],
        callee_mi: ModuleInfo,
        line: int,
    ) -> None:
        """Fold a callee summary into this one through an argument binding."""

        def rebase(path: tuple, writing: bool) -> tuple | None:
            root, rest = path[0], path[1:]
            if root in binding:
                av, subscripted = binding[root]
                if av.kind == "shared":
                    if writing and subscripted:
                        # Writing *into an element* of the caller's object:
                        # the container is affected, precision is lost.
                        return ("__opaque__",) + av.path
                    return av.path + rest
                if av.kind == "item":
                    return ("$item",) if writing else None
                return None  # const/opaque arguments: nothing addressable
            if root.startswith("$") or ":" in root:
                return path
            # Callee's own module-level state.
            return (f"{callee_mi.dotted or callee_mi.path.name}:{root}", *rest)

        for p, ln in sub.reads.items():
            rb = rebase(p, writing=False)
            if rb is not None:
                self.summary._rec(self.summary.reads, rb, line)
        for table_name in ("writes", "opaque_writes", "grow_writes", "weak_writes"):
            for p, ln in getattr(sub, table_name).items():
                rb = rebase(p, writing=True)
                if rb is None:
                    continue
                if rb[0] == "__opaque__":
                    rb = rb[1:]
                    target = (
                        self.summary.grow_writes
                        if table_name == "grow_writes"
                        else self.summary.opaque_writes
                    )
                else:
                    target = getattr(self.summary, table_name)
                self.summary._rec(target, rb, line)
        for push in sub.pushes:
            self.summary.pushes.append(
                PushSite(
                    payload=_substitute_av(push.payload, binding),
                    node=push.node,
                    line=push.line,
                    constraints=tuple(sorted(self.constraints.items())),
                )
            )
        for name, ln in sub.unresolved:
            self.summary.unresolved.append((name, ln))
        self.summary.view_uses.extend(sub.view_uses)
        if sub.ctx_escapes:
            self.summary.ctx_escapes = True
        if sub.view_escapes:
            self.summary.view_escapes = True

    # -- statements ----------------------------------------------------
    def exec_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        line = stmt.lineno
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self.env[stmt.name] = _OPAQUE
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._returns.append(self._eval(stmt.value))
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = self._eval(stmt.value) if stmt.value is not None else _OPAQUE
            if isinstance(stmt, ast.AugAssign):
                target = stmt.target
                path = self._target_path(target) if not isinstance(target, ast.Name) else None
                if isinstance(target, ast.Name):
                    base = self._lookup(target.id)
                    if target.id in self.env:
                        self.env[target.id] = OPAQUE(base.deps | value.deps)
                    elif base.kind == "shared":
                        self.summary._rec(self.summary.reads, base.path, line)
                        self.summary._rec(self.summary.writes, base.path, line)
                elif path is not None:
                    self.summary._rec(self.summary.reads, path, line)
                    self.summary._rec(self.summary.writes, path, line)
                return
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                self._bind(target, value, line)
            return
        if isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Call):
                self._eval_Call(stmt.value, inner=False, discarded=True)
            else:
                self._eval(stmt.value)
            return
        if isinstance(stmt, ast.If):
            test_constraint = self._extract_constraint(stmt.test)
            self._eval(stmt.test)
            saved_env = dict(self.env)
            if test_constraint is not None:
                proj, val = test_constraint
                old = self.constraints.get(proj, _MISSING)
                self.constraints[proj] = val
                self.exec_block(stmt.body)
                if old is _MISSING:
                    del self.constraints[proj]
                else:
                    self.constraints[proj] = old
            else:
                self.exec_block(stmt.body)
            env_then = self.env
            self.env = saved_env
            self.exec_block(stmt.orelse)
            self.env = _merge_env(env_then, self.env)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            it = self._eval(stmt.iter)
            self._bind(stmt.target, OPAQUE(it.deps), line)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr)
            self.exec_block(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
            return
        if isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
            return
        if isinstance(stmt, (ast.Raise, ast.Pass, ast.Break, ast.Continue,
                             ast.Global, ast.Nonlocal, ast.Import, ast.ImportFrom)):
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                self._eval(stmt.exc)
            return
        self.generic_visit(stmt)

    def _extract_constraint(self, test: ast.expr) -> tuple[tuple, Any] | None:
        """``item[0] == SOME_CONST`` (either side) → (projection, value)."""
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
        ):
            return None
        left = self._eval(test.left)
        right = self._eval(test.comparators[0])
        if left.kind == "item" and right.kind == "const":
            return (left.proj, right.value)
        if right.kind == "item" and left.kind == "const":
            return (right.proj, left.value)
        return None

    def run(self) -> Summary:
        body = self.fn.body if isinstance(self.fn, ast.FunctionDef) else [ast.Return(value=self.fn.body)]
        if isinstance(self.fn, ast.Lambda):
            self._returns.append(self._eval(self.fn.body))
        else:
            self.exec_block(body)
        if self._returns:
            first = self._returns[0]
            if all(av_equal(first, r) for r in self._returns[1:]):
                self.summary.ret = first
        return self.summary


_MISSING = object()


def _merge_env(a: dict[str, AV], b: dict[str, AV]) -> dict[str, AV]:
    out = dict(a)
    for k, v in b.items():
        if k not in out:
            out[k] = v
        elif not av_equal(out[k], v):
            out[k] = OPAQUE(out[k].deps | v.deps)
    return out


def _substitute_av(av: AV, binding: dict[str, tuple[AV, bool]]) -> AV:
    """Rewrite a callee-frame abstract value into the caller's frame."""
    if av.kind == "shared" and av.path:
        root = av.path[0]
        if root in binding:
            repl, _ = binding[root]
            if repl.kind == "shared":
                return SHARED(repl.path + av.path[1:], deps=repl.deps)
            if not av.path[1:]:
                return repl
            if repl.kind == "item" and all(
                False for _ in av.path[1:]
            ):
                return repl
            return OPAQUE(repl.deps)
        return av
    if av.kind == "tuple":
        return TUP(tuple(_substitute_av(e, binding) for e in av.elems))
    if av.kind == "max":
        return MAXV(tuple(_substitute_av(e, binding) for e in av.elems))
    if av.kind == "offset":
        return OFFSET(_substitute_av(av.base, binding), av.delta)
    return av


def _apply_binop(op: ast.operator, a: Any, b: Any) -> Any:
    if isinstance(op, ast.Add):
        return a + b
    if isinstance(op, ast.Sub):
        return a - b
    if isinstance(op, ast.Mult):
        return a * b
    if isinstance(op, ast.FloorDiv):
        return a // b
    if isinstance(op, ast.Mod):
        return a % b
    raise TypeError("unsupported constant fold")


# ----------------------------------------------------------------------
# Engine: per-unit operator effects
# ----------------------------------------------------------------------
@dataclass
class OperatorEffects:
    """Everything the inference pass needs about one OrderedAlgorithm."""

    name: str
    file: str
    call_line: int
    declared: dict[str, bool]
    effective: dict[str, bool]       # with the Definition-4 coupling applied
    properties_line: int
    visitor: Summary | None
    body: Summary | None
    safe_test: Summary | None
    has_safe_test: bool
    priority_fn: ast.FunctionDef | ast.Lambda | None
    visitor_key_deps: frozenset      # item projections the rw-set keys use
    closure: dict[str, AV]
    module: ModuleInfo
    engine: "EffectsEngine"

    def push_comparisons(self) -> list[tuple[PushSite, str]]:
        """(push site, compare_priorities verdict) for every reachable push."""
        out: list[tuple[PushSite, str]] = []
        if self.body is None:
            return out
        for push in self.body.pushes:
            out.append((push, self.engine.compare_push(self, push)))
        return out


class EffectsEngine:
    """Analyzes one module file; caches generic callee summaries."""

    def __init__(self, path: str | Path, source: str | None = None):
        self.path = Path(path)
        if source is not None:
            # Parse from the given text (unsaved buffers, tests): no
            # package root, so cross-module resolution is disabled.
            self.index = ProgramIndex.__new__(ProgramIndex)
            self.index.entry = self.path
            self.index._modules = {}
            self.index.root = self.path.parent
            self.index.entry_dotted = ""
            self.index.entry_module = _index_tree(
                self.path, "", ast.parse(source, filename=str(self.path))
            )
        else:
            self.index = ProgramIndex(self.path)
        self.mi = self.index.entry_module
        self.call_stack: set[int] = set()
        self._generic: dict[int, Summary] = {}
        self._priority_cache: dict[tuple, AV | None] = {}

    # -- generic callee summaries --------------------------------------
    def generic_summary(self, mi: ModuleInfo, fn: ast.FunctionDef, depth: int) -> Summary:
        key = id(fn)
        if key in self._generic:
            return self._generic[key]
        self.call_stack.add(key)
        owner = None
        for ci in mi.classes.values():
            if fn in ci.methods.values():
                owner = ci
                break
        env: dict[str, AV] = {}
        ctx_param: str | None = None
        params = fn.args.posonlyargs + fn.args.args
        for i, arg in enumerate(params):
            cls = self.index.resolve_class_expr(mi, arg.annotation)
            if cls is None and i == 0 and owner is not None and arg.arg in ("self", "cls"):
                cls = owner
            ann = arg.annotation
            ann_name = (
                ann.id
                if isinstance(ann, ast.Name)
                else ann.attr
                if isinstance(ann, ast.Attribute)
                else None
            )
            if arg.arg == "ctx" or ann_name in ("BodyContext", "RWSetContext"):
                env[arg.arg] = _CTX
                ctx_param = arg.arg
            else:
                env[arg.arg] = SHARED((arg.arg,), cls=cls)
        analyzer = _FunctionAnalyzer(self, mi, fn, env, closure={}, depth=depth)
        if ctx_param is not None:
            analyzer.ctx_name = ctx_param
        # Shared roots here are the parameters themselves; locals that
        # shadow them are handled by _bind overwriting env.
        for name in list(env):
            analyzer.env[name] = env[name]
        summary = analyzer.run()
        self.call_stack.discard(key)
        self._generic[key] = summary
        return summary

    # -- operator analysis ---------------------------------------------
    def analyze_operator(
        self,
        fn: ast.FunctionDef | ast.Lambda,
        closure: dict[str, AV],
        kind: str,
    ) -> Summary:
        env: dict[str, AV] = {}
        params = fn.args.posonlyargs + fn.args.args
        analyzer = _FunctionAnalyzer(self, self.mi, fn, env, closure)
        if kind in ("visitor", "body"):
            if params:
                env[params[0].arg] = ITEM(())
            if len(params) > 1:
                env[params[1].arg] = _CTX
                analyzer.ctx_name = params[1].arg
        elif kind == "safe_test":
            if params:
                env[params[0].arg] = _TASK
            if len(params) > 1:
                env[params[1].arg] = _VIEW
        for extra in params[2:]:
            env.setdefault(extra.arg, _OPAQUE)
        return analyzer.run()

    def eval_priority(
        self,
        fn: ast.FunctionDef | ast.Lambda | None,
        item: AV,
        closure: dict[str, AV],
        constraints: dict[tuple, Any] | None = None,
    ) -> AV | None:
        """Symbolically run the priority function on an abstract item.

        Returns ``None`` when branching on unresolvable state makes the
        result ambiguous.
        """
        if fn is None:
            return None
        params = fn.args.posonlyargs + fn.args.args
        if not params:
            return None
        env: dict[str, AV] = {params[0].arg: item}
        analyzer = _FunctionAnalyzer(self, self.mi, fn, env, closure)
        if constraints:
            analyzer.constraints.update(constraints)
        if isinstance(fn, ast.Lambda):
            return analyzer._eval(fn.body)
        result = _run_priority_block(analyzer, fn.body)
        if result is _AMBIGUOUS or result is None:
            return None
        return result

    def compare_push(self, unit: "OperatorEffects", push: PushSite) -> str:
        """compare_priorities(priority(payload), priority(parent item))."""
        constraints = dict(push.constraints)
        parent = self.eval_priority(
            unit.priority_fn, ITEM(()), unit.closure, constraints
        )
        child = self.eval_priority(unit.priority_fn, push.payload, unit.closure)
        if parent is None or child is None:
            return "unknown"
        return compare_priorities(child, parent)


_AMBIGUOUS = object()


def _run_priority_block(analyzer: _FunctionAnalyzer, stmts: list[ast.stmt]):
    """Execute a priority function's statements; returns the AV of the
    single reachable Return, _AMBIGUOUS, or None for fallthrough."""
    for stmt in stmts:
        if isinstance(stmt, ast.Return):
            return analyzer._eval(stmt.value)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = analyzer._eval(stmt.value) if stmt.value is not None else _OPAQUE
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for t in targets:
                analyzer._bind(t, value, stmt.lineno)
            continue
        if isinstance(stmt, ast.If):
            decided = _decide_test(analyzer, stmt.test)
            if decided is True:
                result = _run_priority_block(analyzer, stmt.body)
                if result is not None:
                    return result
                continue
            if decided is False:
                result = _run_priority_block(analyzer, stmt.orelse)
                if result is not None:
                    return result
                continue
            # Undecidable branch: both arms must agree.
            then_r = _run_priority_block(analyzer, stmt.body)
            else_r = _run_priority_block(analyzer, stmt.orelse)
            if then_r is _AMBIGUOUS or else_r is _AMBIGUOUS:
                return _AMBIGUOUS
            if then_r is not None and else_r is not None:
                if isinstance(then_r, AV) and isinstance(else_r, AV) and av_equal(then_r, else_r):
                    return then_r
                return _AMBIGUOUS
            if then_r is not None or else_r is not None:
                return _AMBIGUOUS  # one arm returns, the other falls through
            continue
        if isinstance(stmt, (ast.Expr, ast.Pass, ast.Assert)):
            continue
        return _AMBIGUOUS  # loops/try/etc. in a priority fn: give up
    return None


def _decide_test(analyzer: _FunctionAnalyzer, test: ast.expr) -> bool | None:
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left = analyzer._eval(test.left)
        right = analyzer._eval(test.comparators[0])
        if left.kind == "const" and right.kind == "const":
            op = test.ops[0]
            try:
                if isinstance(op, ast.Eq):
                    return bool(left.value == right.value)
                if isinstance(op, ast.NotEq):
                    return bool(left.value != right.value)
                if isinstance(op, ast.Lt):
                    return bool(left.value < right.value)
                if isinstance(op, ast.LtE):
                    return bool(left.value <= right.value)
                if isinstance(op, ast.Gt):
                    return bool(left.value > right.value)
                if isinstance(op, ast.GtE):
                    return bool(left.value >= right.value)
            except TypeError:
                return None
    return None


def _index_tree(path: Path, dotted: str, tree: ast.Module) -> ModuleInfo:
    """Build a :class:`ModuleInfo` index over an already-parsed tree."""
    mi = ModuleInfo(dotted=dotted, path=path, tree=tree)
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            mi.functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            ci = ClassInfo(name=node.name, module=mi, node=node)
            for sub in node.body:
                if isinstance(sub, ast.FunctionDef):
                    ci.methods[sub.name] = sub
            mi.classes[node.name] = ci
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    mi.constants[target.id] = node.value.value
        elif (
            # Multi-constant form: LU0, FWD = "lu0", "fwd"
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Tuple)
            and isinstance(node.value, ast.Tuple)
            and len(node.targets[0].elts) == len(node.value.elts)
        ):
            for t, v in zip(node.targets[0].elts, node.value.elts):
                if isinstance(t, ast.Name) and isinstance(v, ast.Constant):
                    mi.constants[t.id] = v.value
        elif isinstance(node, ast.Import):
            for alias in node.names:
                mi.imports[alias.asname or alias.name.split(".")[0]] = (alias.name, None)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                parts = dotted.split(".") if dotted else []
                # Relative to the containing package of this module.
                base = parts[: max(0, len(parts) - node.level)]
                target = ".".join(base + ([node.module] if node.module else []))
            else:
                target = node.module or ""
            for alias in node.names:
                mi.imports[alias.asname or alias.name] = (target, alias.name)
    return mi


# ----------------------------------------------------------------------
# Unit extraction (scope-aware: closures resolved via make_algorithm)
# ----------------------------------------------------------------------
def _call_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _bool_kwargs(call: ast.Call) -> dict[str, bool]:
    out: dict[str, bool] = {}
    for kw in call.keywords:
        if kw.arg in PROPERTY_FLAGS and isinstance(kw.value, ast.Constant):
            out[kw.arg] = bool(kw.value.value)
    return out


def summarize_file(path: str | Path, source: str | None = None) -> list[OperatorEffects]:
    """All OrderedAlgorithm units in a module, fully summarized."""
    engine = EffectsEngine(path, source=source)
    mi = engine.mi
    tree = mi.tree

    # Parent links so each OrderedAlgorithm call knows its enclosing defs.
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node

    property_calls: dict[str, ast.Call] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _call_name(node.value) == "AlgorithmProperties":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        property_calls[target.id] = node.value

    units: list[OperatorEffects] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and _call_name(node) == "OrderedAlgorithm"):
            continue
        # Enclosing function chain (innermost first).
        chain: list[ast.FunctionDef] = []
        cursor: ast.AST | None = node
        while cursor is not None:
            cursor = parents.get(cursor)
            if isinstance(cursor, ast.FunctionDef):
                chain.append(cursor)
        enclosing = chain[0] if chain else None

        # Nested function definitions visible at the call site.
        local_fns: dict[str, ast.FunctionDef] = dict(mi.functions)
        for fn in reversed(chain):
            for stmt in ast.walk(fn):
                if isinstance(stmt, ast.FunctionDef) and stmt is not fn:
                    local_fns[stmt.name] = stmt

        declared: dict[str, bool] = {}
        properties_line = node.lineno
        name = "<anonymous>"
        visit_fn = update_fn = prio_fn = test_fn = None
        has_safe_test = False
        for kw in node.keywords:
            if kw.arg == "name" and isinstance(kw.value, ast.Constant):
                name = str(kw.value.value)
            elif kw.arg == "properties":
                props_call = None
                if isinstance(kw.value, ast.Call) and _call_name(kw.value) == "AlgorithmProperties":
                    props_call = kw.value
                elif isinstance(kw.value, ast.Name):
                    props_call = property_calls.get(kw.value.id)
                if props_call is not None:
                    declared = _bool_kwargs(props_call)
                    properties_line = props_call.lineno
            elif kw.arg in ("visit_rw_sets", "apply_update", "priority", "safe_source_test"):
                resolved: ast.FunctionDef | ast.Lambda | None = None
                if isinstance(kw.value, ast.Name):
                    resolved = local_fns.get(kw.value.id)
                elif isinstance(kw.value, ast.Lambda):
                    resolved = kw.value
                if kw.arg == "visit_rw_sets":
                    visit_fn = resolved
                elif kw.arg == "apply_update":
                    update_fn = resolved
                elif kw.arg == "priority":
                    prio_fn = resolved
                else:
                    if not (isinstance(kw.value, ast.Constant) and kw.value.value is None):
                        has_safe_test = True
                    test_fn = resolved

        # Closure environment: abstract-execute the enclosing scope chain.
        closure: dict[str, AV] = {}
        for fn in reversed(chain):
            closure = _scope_env(engine, fn, closure)

        visitor = (
            engine.analyze_operator(visit_fn, closure, "visitor")
            if visit_fn is not None
            else None
        )
        body = (
            engine.analyze_operator(update_fn, closure, "body")
            if update_fn is not None
            else None
        )
        safe = (
            engine.analyze_operator(test_fn, closure, "safe_test")
            if test_fn is not None
            else None
        )

        key_deps: frozenset = frozenset()
        if visitor is not None:
            for decl in visitor.decls:
                key_deps |= decl.key.deps

        effective = dict(declared)
        if effective.get("structure_based_rw_sets"):
            effective["non_increasing_rw_sets"] = True  # Definition 4 ⊃ 3

        units.append(
            OperatorEffects(
                name=name,
                file=str(path),
                call_line=node.lineno,
                declared=declared,
                effective=effective,
                properties_line=properties_line,
                visitor=visitor,
                body=body,
                safe_test=safe,
                has_safe_test=has_safe_test,
                priority_fn=prio_fn,
                visitor_key_deps=key_deps,
                closure=closure,
                module=mi,
                engine=engine,
            )
        )
    return units


def _scope_env(
    engine: EffectsEngine, fn: ast.FunctionDef, outer: dict[str, AV]
) -> dict[str, AV]:
    """Abstract bindings established by a ``make_algorithm``-style scope."""
    env: dict[str, AV] = {}
    analyzer = _FunctionAnalyzer(engine, engine.mi, fn, env, outer)
    for arg in fn.args.posonlyargs + fn.args.args:
        cls = engine.index.resolve_class_expr(engine.mi, arg.annotation)
        env[arg.arg] = SHARED((arg.arg,), cls=cls)
    for stmt in fn.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = analyzer._eval(stmt.value) if stmt.value is not None else _OPAQUE
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for t in targets:
                analyzer._bind(t, value, stmt.lineno)
        elif isinstance(stmt, ast.If):
            # Both arms straight-lined; conflicting bindings opaque-merge.
            saved = dict(analyzer.env)
            analyzer.exec_block(stmt.body)
            then_env = analyzer.env
            analyzer.env = saved
            analyzer.exec_block(stmt.orelse)
            analyzer.env = _merge_env(then_env, analyzer.env)
        elif isinstance(stmt, (ast.For, ast.While, ast.Expr)):
            analyzer._exec(stmt)
        elif isinstance(stmt, ast.FunctionDef):
            analyzer.env[stmt.name] = _OPAQUE
    merged = dict(outer)
    merged.update(analyzer.env)
    return merged
