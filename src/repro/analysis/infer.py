"""Property inference: prove or refute §3.2 declarations from effect summaries.

The linter (``repro lint``) is a *falsifier*: a syntactic rule either
contradicts a declaration or stays silent, and silence proves nothing.  This
module is the complementary *prover* the paper gestures at ("a compiler could
determine some of these algorithmic properties"): it consumes the
interprocedural effect summaries of :mod:`repro.analysis.effects` and derives,
for each of the six :class:`~repro.core.properties.AlgorithmProperties` flags,
a three-valued verdict:

* ``holds``    — the summaries *prove* the property for every execution.
* ``violated`` — the summaries exhibit a concrete counterexample, anchored to
  a ``file:line``.
* ``unknown``  — the analysis is inconclusive (opaque writes, unresolved
  calls, data-dependent priorities); the dynamic falsifier in
  :mod:`repro.core.verify` can cross-validate these.

The cross-check against the declaration runs both directions:

* declared (effectively) ``True`` + inferred ``violated`` → an **unsound
  declaration** error finding — the executor would drop a phase/subrule it
  actually needs;
* declared ``False`` + inferred ``holds`` → a **missed optimization**
  suggestion naming the §3.6 phase, subrule or barrier the flag would delete.

``repro infer`` serializes these as ``repro-lint/v2`` JSON.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from .effects import (
    PROPERTY_FLAGS,
    OperatorEffects,
    Summary,
    paths_overlap,
    summarize_file,
)
from .linter import app_source_path

HOLDS = "holds"
VIOLATED = "violated"
UNKNOWN = "unknown"

RULE_UNSOUND = "unsound-declaration"
RULE_MISSED = "missed-optimization"

#: §3.6 optimization each property unlocks — quoted verbatim in
#: missed-optimization suggestions so the reader knows what declaring the
#: flag would buy.
OPTIMIZATIONS: dict[str, str] = {
    "stable_source": (
        "deletes the safe-source test phase and its barrier (§3.6.1: every "
        "source is safe)"
    ),
    "monotonic": (
        "makes level-by-level windowing sound, enabling the IKDG round "
        "executor (§3.4)"
    ),
    "non_increasing_rw_sets": (
        "deletes kinetic invalidation subrule N on commit (§3.6.2)"
    ),
    "structure_based_rw_sets": (
        "removes the execute/update barrier, enabling the asynchronous "
        "executor (§3.6.3)"
    ),
    "no_new_tasks": "deletes kinetic insertion subrule A on commit (§3.6.2)",
    "local_safe_source_test": (
        "fuses the safe-source test with execution, removing one barrier "
        "per round (§3.6.3)"
    ),
}


@dataclass(frozen=True)
class Verdict:
    """Inference outcome for one property flag of one operator."""

    flag: str
    status: str          # holds | violated | unknown
    line: int | None     # anchor: offending line for violated, else None
    reason: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "flag": self.flag,
            "status": self.status,
            "line": self.line,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class InferFinding:
    """A cross-check finding (unsound declaration or missed optimization)."""

    rule: str            # unsound-declaration | missed-optimization
    flag: str
    severity: str        # error | suggestion
    message: str
    file: str
    line: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "flag": self.flag,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
        }

    def __str__(self) -> str:
        return f"{self.file}:{self.line}: {self.severity}: {self.rule}: {self.message}"


@dataclass
class InferenceResult:
    """Per-operator verdict table plus the findings it implies."""

    unit: OperatorEffects
    verdicts: dict[str, Verdict]
    findings: list[InferFinding]

    def to_dict(self) -> dict[str, Any]:
        return {
            "operator": self.unit.name,
            "file": self.unit.file,
            "line": self.unit.call_line,
            "declared": dict(self.unit.declared),
            "effective": dict(self.unit.effective),
            "verdicts": {f: v.to_dict() for f, v in self.verdicts.items()},
            "findings": [f.to_dict() for f in self.findings],
        }


class UnsoundDeclarationError(ValueError):
    """Raised by verified executor selection when a declaration is refuted."""

    def __init__(self, target: str, findings: list[InferFinding]):
        self.target = target
        self.findings = findings
        lines = "; ".join(str(f) for f in findings)
        super().__init__(f"unsound property declarations in {target}: {lines}")


# ----------------------------------------------------------------------
# Verdict derivation
# ----------------------------------------------------------------------
def _first_overlap(
    reads: dict[tuple, int], writes: dict[tuple, int]
) -> tuple[tuple, tuple, int] | None:
    """First (read path, write path, write line) pair that can alias."""
    for rp in sorted(reads):
        for wp, line in sorted(writes.items()):
            if paths_overlap(rp, wp):
                return rp, wp, line
    return None


def _fmt(path: tuple) -> str:
    return ".".join(str(p) for p in path)


def infer_unit(unit: OperatorEffects) -> dict[str, Verdict]:
    """Derive a verdict for each of the six property flags."""
    body = unit.body if unit.body is not None else Summary()
    visitor = unit.visitor
    comps = unit.push_comparisons()

    verdicts: dict[str, Verdict] = {}

    # -- no_new_tasks (No-Adds, §3.6.2) --------------------------------
    if body.pushes:
        push = body.pushes[0]
        verdicts["no_new_tasks"] = Verdict(
            "no_new_tasks", VIOLATED, push.line, "ctx.push is reachable in the body"
        )
    elif body.ctx_escapes:
        verdicts["no_new_tasks"] = Verdict(
            "no_new_tasks", UNKNOWN, None,
            "ctx escapes into an unresolved call that could push",
        )
    else:
        verdicts["no_new_tasks"] = Verdict(
            "no_new_tasks", HOLDS, None, "no reachable ctx.push in the body"
        )

    # -- monotonic (Definition 2) --------------------------------------
    mono: Verdict | None = None
    for push, cmp in comps:
        if cmp == "lt":
            mono = Verdict(
                "monotonic", VIOLATED, push.line,
                "pushed payload has provably lower priority than its parent",
            )
            break
    if mono is None:
        if body.ctx_escapes:
            mono = Verdict(
                "monotonic", UNKNOWN, None,
                "ctx escapes into an unresolved call that could push",
            )
        elif all(cmp in ("gt", "ge", "eq") for _, cmp in comps):
            reason = (
                "every pushed payload has provably non-decreasing priority"
                if comps
                else "no tasks are pushed (vacuously monotonic)"
            )
            mono = Verdict("monotonic", HOLDS, None, reason)
        else:
            line = next(p.line for p, c in comps if c not in ("gt", "ge", "eq"))
            mono = Verdict(
                "monotonic", UNKNOWN, line,
                "a pushed priority cannot be compared to its parent symbolically",
            )
    verdicts["monotonic"] = mono

    # -- structure_based_rw_sets (Definition 4) ------------------------
    if visitor is None:
        struct = Verdict(
            "structure_based_rw_sets", UNKNOWN, None, "no rw-set visitor to analyze"
        )
    elif visitor.writes or visitor.opaque_writes or visitor.weak_writes:
        struct = Verdict(
            "structure_based_rw_sets", UNKNOWN, None,
            "the rw-set visitor itself may mutate shared state",
        )
    else:
        hit = _first_overlap(visitor.reads, body.writes)
        if hit is not None:
            rp, wp, line = hit
            struct = Verdict(
                "structure_based_rw_sets", VIOLATED, line,
                f"the body writes {_fmt(wp)}, which the rw-set visitor reads "
                f"({_fmt(rp)}): rw-sets are data-dependent",
            )
        else:
            soft: dict[tuple, int] = dict(body.opaque_writes)
            soft.update(body.weak_writes)
            hit = _first_overlap(visitor.reads, soft)
            if hit is not None:
                rp, wp, line = hit
                struct = Verdict(
                    "structure_based_rw_sets", UNKNOWN, line,
                    f"a call may write {_fmt(wp)}, which the rw-set visitor "
                    f"reads ({_fmt(rp)})",
                )
            else:
                struct = Verdict(
                    "structure_based_rw_sets", HOLDS, None,
                    "the visitor's shared reads are disjoint from every "
                    "location the body can write",
                )
    verdicts["structure_based_rw_sets"] = struct

    # -- non_increasing_rw_sets (Definition 3) -------------------------
    if struct.status == HOLDS:
        noninc = Verdict(
            "non_increasing_rw_sets", HOLDS, None,
            "rw-sets are structure-based, hence constant (Definition 4 ⊃ 3)",
        )
    else:
        grow_hit = (
            _first_overlap(visitor.reads, body.grow_writes)
            if visitor is not None
            else None
        )
        if grow_hit is not None:
            rp, wp, line = grow_hit
            noninc = Verdict(
                "non_increasing_rw_sets", VIOLATED, line,
                f"the body grows {_fmt(wp)}, a collection the rw-set visitor "
                f"reads ({_fmt(rp)}): rw-sets can gain locations",
            )
        else:
            noninc = Verdict(
                "non_increasing_rw_sets", UNKNOWN, None,
                "rw-sets are data-dependent or writes are opaque; growth "
                "cannot be bounded statically",
            )
    verdicts["non_increasing_rw_sets"] = noninc

    # -- stable_source (Definition 1) ----------------------------------
    lt_push = next((p for p, c in comps if c == "lt"), None)
    if not body.pushes and not body.ctx_escapes:
        stable = Verdict(
            "stable_source", HOLDS, None,
            "no new tasks are ever created: the KDG holds every conflict up "
            "front, so a source has no earlier pending conflictor",
        )
    elif lt_push is not None:
        stable = Verdict(
            "stable_source", VIOLATED, lt_push.line,
            "a strictly earlier task is pushed after scheduling: an "
            "executing source can retroactively gain a predecessor",
        )
    else:
        stable = Verdict(
            "stable_source", UNKNOWN, None,
            "new tasks are pushed; Definition 1 needs a domain argument the "
            "summaries cannot supply",
        )
    verdicts["stable_source"] = stable

    # -- local_safe_source_test (§3.6.3) -------------------------------
    test = unit.safe_test
    if not unit.has_safe_test or test is None:
        local = Verdict(
            "local_safe_source_test", UNKNOWN, None, "no safe_source_test to analyze"
        )
    elif test.view_uses:
        attr, line = test.view_uses[0]
        local = Verdict(
            "local_safe_source_test", VIOLATED, line,
            f"the test reads view.{attr}: it consults global source "
            "information, not just the task's own state",
        )
    elif not test.view_escapes:
        local = Verdict(
            "local_safe_source_test", HOLDS, None,
            "the test provably never consults the SourceView",
        )
    else:
        local = Verdict(
            "local_safe_source_test", UNKNOWN, None,
            "the SourceView escapes into a call the analysis cannot resolve",
        )
    verdicts["local_safe_source_test"] = local

    return verdicts


# ----------------------------------------------------------------------
# Declaration cross-check
# ----------------------------------------------------------------------
def cross_check(
    unit: OperatorEffects, verdicts: dict[str, Verdict]
) -> list[InferFinding]:
    """Unsound declarations (errors) and missed optimizations (suggestions)."""
    findings: list[InferFinding] = []
    for flag in PROPERTY_FLAGS:
        verdict = verdicts[flag]
        declared = bool(unit.effective.get(flag))
        if declared and verdict.status == VIOLATED:
            findings.append(
                InferFinding(
                    rule=RULE_UNSOUND,
                    flag=flag,
                    severity="error",
                    message=(
                        f"{unit.name}: declared {flag}=True is refuted: "
                        f"{verdict.reason}"
                    ),
                    file=unit.file,
                    line=verdict.line or unit.properties_line,
                )
            )
        elif not declared and verdict.status == HOLDS:
            if flag == "local_safe_source_test" and unit.effective.get(
                "stable_source"
            ):
                continue  # stable_source already deletes the whole test phase
            findings.append(
                InferFinding(
                    rule=RULE_MISSED,
                    flag=flag,
                    severity="suggestion",
                    message=(
                        f"{unit.name}: {flag} provably holds but is not "
                        f"declared; declaring it {OPTIMIZATIONS[flag]}"
                    ),
                    file=unit.file,
                    line=unit.properties_line,
                )
            )
    return findings


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def _display(path: Path) -> str:
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def infer_path(path: str | Path, source: str | None = None) -> list[InferenceResult]:
    """Run inference over every OrderedAlgorithm in a module file."""
    path = Path(path)
    display = _display(path)
    results: list[InferenceResult] = []
    for unit in summarize_file(path, source=source):
        unit.file = display
        verdicts = infer_unit(unit)
        results.append(InferenceResult(unit, verdicts, cross_check(unit, verdicts)))
    return results


def infer_source(source: str, file: str = "<source>") -> list[InferenceResult]:
    """Inference over source text (tests, unsaved buffers).

    Cross-module resolution is disabled in this mode; anything the module
    does not define degrades to ``unknown`` rather than ``violated``.
    """
    results: list[InferenceResult] = []
    for unit in summarize_file(Path(file), source=source):
        unit.file = file
        verdicts = infer_unit(unit)
        results.append(InferenceResult(unit, verdicts, cross_check(unit, verdicts)))
    return results


def infer_app(app: str) -> list[InferenceResult]:
    """Inference over a registered application's ``app.py``."""
    return infer_path(app_source_path(app))


def audit_app(app: str) -> list[InferenceResult]:
    """Inference that *raises* :class:`UnsoundDeclarationError` on errors.

    This is the entry point verified executor selection uses: a sound
    declaration set passes through untouched (bit-identical schedules),
    an unsound one refuses to run.
    """
    results = infer_app(app)
    errors = [f for r in results for f in r.findings if f.severity == "error"]
    if errors:
        raise UnsoundDeclarationError(app, errors)
    return results


def verified_properties(app: str):
    """The app's declared :class:`AlgorithmProperties`, audited by inference.

    Raises :class:`UnsoundDeclarationError` if any effectively declared flag
    is statically refuted; otherwise returns the declaration unchanged, so
    executor selection on the result is bit-identical to trusting it.
    """
    from ..core.properties import AlgorithmProperties

    results = audit_app(app)
    declared = results[0].unit.declared if results else {}
    return AlgorithmProperties(**{k: v for k, v in declared.items() if k in PROPERTY_FLAGS})


def report_to_json(targets: dict[str, list[InferenceResult]]) -> dict[str, Any]:
    """``repro-lint/v2`` report over named targets (apps or files)."""
    out: dict[str, Any] = {"schema": "repro-lint/v2", "targets": {}}
    for name, results in targets.items():
        out["targets"][name] = {
            "operators": [r.to_dict() for r in results],
            "errors": sum(
                1 for r in results for f in r.findings if f.severity == "error"
            ),
            "suggestions": sum(
                1 for r in results for f in r.findings if f.severity == "suggestion"
            ),
        }
    return out
