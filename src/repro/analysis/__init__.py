"""Static and dynamic checking of declared algorithm properties.

Three complementary tools:

- :mod:`repro.analysis.linter` — an AST-based *falsifier*: syntactic rules
  that contradict declared
  :class:`~repro.core.properties.AlgorithmProperties` against the source of
  an application's ``OrderedAlgorithm`` (cautiousness, no-adds,
  monotonicity, structure-based rw-sets, unused properties).
- :mod:`repro.analysis.effects` / :mod:`repro.analysis.infer` — an
  interprocedural *prover*: abstract interpretation of the operator
  functions (and everything they call) into effect summaries, from which
  each property flag gets a ``holds`` / ``violated`` / ``unknown`` verdict;
  unsound declarations become errors, undeclared-but-proved flags become
  missed-optimization suggestions.
- :mod:`repro.analysis.sanitizer` — a runtime access sanitizer every
  executor can enable via ``sanitize=True``, diffing each committed task's
  actual accesses against its declared rw-set.
"""

from .effects import OperatorEffects, Summary, summarize_file
from .infer import (
    HOLDS,
    RULE_MISSED,
    RULE_UNSOUND,
    UNKNOWN,
    VIOLATED,
    InferenceResult,
    InferFinding,
    UnsoundDeclarationError,
    Verdict,
    audit_app,
    infer_app,
    infer_path,
    infer_source,
    infer_unit,
    verified_properties,
)
from .linter import (
    RULE_CAUTIOUSNESS,
    RULE_MONOTONIC,
    RULE_NO_ADDS,
    RULE_STRUCTURE_BASED,
    RULE_UNUSED_PROPERTY,
    RULES,
    Finding,
    lint_app,
    lint_file,
    lint_source,
)
from .sanitizer import AccessSanitizer

__all__ = [
    "AccessSanitizer",
    "Finding",
    "HOLDS",
    "InferFinding",
    "InferenceResult",
    "OperatorEffects",
    "RULES",
    "RULE_CAUTIOUSNESS",
    "RULE_MISSED",
    "RULE_MONOTONIC",
    "RULE_NO_ADDS",
    "RULE_STRUCTURE_BASED",
    "RULE_UNSOUND",
    "RULE_UNUSED_PROPERTY",
    "Summary",
    "UNKNOWN",
    "UnsoundDeclarationError",
    "VIOLATED",
    "Verdict",
    "audit_app",
    "infer_app",
    "infer_path",
    "infer_source",
    "infer_unit",
    "lint_app",
    "lint_file",
    "lint_source",
    "summarize_file",
    "verified_properties",
]
