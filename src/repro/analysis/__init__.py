"""Static and dynamic checking of declared algorithm properties.

Two complementary tools:

- :mod:`repro.analysis.linter` — an AST-based linter that falsifies
  declared :class:`~repro.core.properties.AlgorithmProperties` against the
  source of an application's ``OrderedAlgorithm`` (cautiousness, no-adds,
  monotonicity, structure-based rw-sets, unused properties).
- :mod:`repro.analysis.sanitizer` — a runtime access sanitizer every
  executor can enable via ``sanitize=True``, diffing each committed task's
  actual accesses against its declared rw-set.
"""

from .linter import (
    RULE_CAUTIOUSNESS,
    RULE_MONOTONIC,
    RULE_NO_ADDS,
    RULE_STRUCTURE_BASED,
    RULE_UNUSED_PROPERTY,
    RULES,
    Finding,
    lint_app,
    lint_file,
    lint_source,
)
from .sanitizer import AccessSanitizer

__all__ = [
    "AccessSanitizer",
    "Finding",
    "RULES",
    "RULE_CAUTIOUSNESS",
    "RULE_MONOTONIC",
    "RULE_NO_ADDS",
    "RULE_STRUCTURE_BASED",
    "RULE_UNUSED_PROPERTY",
    "lint_app",
    "lint_file",
    "lint_source",
]
