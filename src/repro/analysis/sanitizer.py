"""Runtime access sanitizer: diff actual accesses against declared rw-sets.

The static linter (:mod:`repro.analysis.linter`) checks what it can prove
from the source; this module checks what actually happened.  Every executor
accepts a ``sanitize=True`` flag that binds an :class:`AccessSanitizer` into
its per-task execution closure: the loop body runs with a
:class:`~repro.core.context.RecordingBodyContext`, and at the commit point
the recorded accesses are diffed against the task's declared rw-set.  An
undeclared access raises :class:`~repro.core.context.RWSetViolation` with
the task, the offending location, the declared set and the executor phase
attached.

Sanitizing is *observation only*: it charges no simulated cycles, computes
rw-sets only where the plain run already would (or uncharged where it would
not, exactly like ``checked`` mode), and never perturbs task creation order
— a sanitized run's simulated makespan and oracle trace are bit-identical
to the unsanitized run.
"""

from __future__ import annotations

from ..core.algorithm import OrderedAlgorithm
from ..core.context import BodyContext, RWSetContext, RWSetViolation
from ..core.task import Task


class AccessSanitizer:
    """Per-run recorder that validates every commit against its rw-set.

    Executors construct one per sanitized run with a ``phase`` label naming
    the execution point commits happen at (e.g. ``"ikdg/phase-III"``), and
    update ``round_no`` as rounds advance so violations pinpoint *when* the
    undeclared access happened, not just where.
    """

    __slots__ = ("algorithm", "phase", "round_no", "checked_tasks", "checked_accesses")

    def __init__(self, algorithm: OrderedAlgorithm, phase: str):
        self.algorithm = algorithm
        self.phase = phase
        #: Executor round at the time of the current commit (0 = no rounds).
        self.round_no = 0
        #: Tasks diffed so far (lets tests assert the sanitizer really ran).
        self.checked_tasks = 0
        #: Total accesses diffed so far.
        self.checked_accesses = 0

    def declared_for(self, task: Task) -> frozenset:
        """The rw-set the executor believes the task declared.

        Normally the task's bound rw-set; when the executor never computed
        one (the explicit-``dependences`` fast path disables rw-set
        computation entirely, §4.7) the visitor is re-run on a throwaway
        context, leaving the task untouched so traces stay bit-identical.
        """
        if task.rw_valid:
            return frozenset(task.rw_set)
        probe = RWSetContext()
        self.algorithm.visit_rw_sets(task.item, probe)
        return frozenset(probe.rw_set)

    def check(self, task: Task, ctx: BodyContext) -> None:
        """Diff the body's recorded accesses against the declared rw-set.

        Raises :class:`RWSetViolation` on the first undeclared location;
        over-declaration (declared but never accessed) is sound and ignored.
        """
        accessed = ctx.accessed
        self.checked_tasks += 1
        self.checked_accesses += len(accessed)
        if not accessed:
            return
        declared = self.declared_for(task)
        for location in accessed:
            if location not in declared:
                where = self.phase
                if self.round_no:
                    where = f"{where} (round {self.round_no})"
                shown = sorted(map(repr, declared))
                if len(shown) > 8:
                    shown = shown[:8] + [f"... ({len(declared)} total)"]
                raise RWSetViolation(
                    f"{self.algorithm.name}: task {task.item!r} "
                    f"(priority {task.priority!r}) accessed undeclared "
                    f"location {location!r} in {where}; declared rw-set is "
                    f"[{', '.join(shown)}]",
                    location=location,
                    declared=declared,
                    task=task,
                    priority=task.priority,
                    phase=self.phase,
                )
