"""Shared executor machinery: results, cost helpers, min-priority tracking.

Every executor takes an :class:`~repro.core.algorithm.OrderedAlgorithm` and
a :class:`~repro.machine.SimMachine`, runs the algorithm's semantics exactly
once (so application state is exact), charges simulated cycles, and returns
a :class:`LoopResult`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from ..core.algorithm import OrderedAlgorithm
from ..core.task import Task
from ..core.tracker import MinTracker
from ..machine import Category, CycleStats, SimMachine

__all__ = [
    "LoopResult",
    "MinTracker",
    "attribute_commits",
    "bind_execute_task",
    "execute_task",
    "inflate_execute",
    "rw_visit_cost",
]


@dataclass
class LoopResult:
    """Outcome of one ordered-loop execution."""

    algorithm: str
    executor: str
    machine: SimMachine
    executed: int
    rounds: int = 0
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def stats(self) -> CycleStats:
        return self.machine.stats

    @property
    def elapsed_cycles(self) -> float:
        return self.machine.elapsed_cycles()

    @property
    def elapsed_seconds(self) -> float:
        return self.machine.elapsed_seconds()

    def breakdown(self) -> dict[Category, float]:
        return self.machine.stats.breakdown()


def attribute_commits(
    machine: SimMachine,
    recorder,
    committed: list[tuple[Task, int]],
    assigned: list[int],
) -> None:
    """Attribute phase-executed commits to their simulated threads.

    ``committed`` pairs each committed task with its item index in the cost
    list just run through :meth:`SimMachine.run_phase`; ``assigned`` is that
    phase's per-item thread assignment.  Updates the machine's per-thread
    commit counters and, when a trace ``recorder`` is attached, patches the
    recorded events' thread ids.
    """
    for task, index in committed:
        thread = assigned[index]
        machine.stats.record_commit(thread)
        if recorder is not None:
            recorder.set_thread(task.tid, thread)


def rw_visit_cost(algorithm: OrderedAlgorithm, machine: SimMachine, n_locs: int) -> float:
    """Cycles to run the read-only prefix over ``n_locs`` locations."""
    return machine.cost_model.rw_visit * max(1, n_locs)


def inflate_execute(machine: SimMachine, cycles: float, memory_fraction: float) -> float:
    """Apply the shared-bandwidth slowdown to execution cycles."""
    return cycles * machine.cost_model.bandwidth_slowdown(
        machine.num_threads, memory_fraction
    )


def execute_task(
    algorithm: OrderedAlgorithm,
    machine: SimMachine,
    task: Task,
    checked: bool = False,
    sanitizer=None,
) -> tuple[list[Any], float]:
    """Run the loop body; returns ``(new_items, execute_cycles)``.

    Execution cycles include the algorithm's memory-bandwidth inflation at
    the machine's thread count.  With a ``sanitizer`` attached, the body
    runs under a recording context and its accesses are diffed against the
    declared rw-set at this commit point (observation only: no cycles).
    """
    ctx = algorithm.execute_body(task, checked=checked, record=sanitizer is not None)
    cycles = inflate_execute(
        machine,
        machine.cost_model.work_cost(ctx.work_done),
        algorithm.memory_bound_fraction,
    )
    if sanitizer is not None:
        sanitizer.check(task, ctx)
    return ctx.pushed, cycles


def bind_execute_task(
    algorithm: OrderedAlgorithm,
    machine: SimMachine,
    checked: bool = False,
    sanitizer=None,
) -> Callable[[Task], tuple[list[Any], float]]:
    """Per-run closure over :func:`execute_task`'s run constants.

    The work scale and bandwidth inflation are fixed for a whole run;
    executors call this once and pay one body call plus two multiplies per
    task.  The multiplication order matches :func:`execute_task` exactly,
    so charged cycles are bit-identical.  The sanitizing variant is a
    separate closure so the unsanitized hot path stays untouched.
    """
    execute_body = algorithm.execute_body
    cycles_per_work = machine.cost_model.cycles_per_work
    inflation = machine.cost_model.bandwidth_slowdown(
        machine.num_threads, algorithm.memory_bound_fraction
    )

    if sanitizer is not None:
        check = sanitizer.check

        def run_task_sanitized(task: Task) -> tuple[list[Any], float]:
            ctx = execute_body(task, checked=checked, record=True)
            cycles = (ctx.work_done * cycles_per_work) * inflation
            check(task, ctx)
            return ctx.pushed, cycles

        return run_task_sanitized

    def run_task(task: Task) -> tuple[list[Any], float]:
        ctx = execute_body(task, checked=checked)
        return ctx.pushed, (ctx.work_done * cycles_per_work) * inflation

    return run_task
