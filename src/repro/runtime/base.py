"""Shared executor machinery: results, cost helpers, min-priority tracking.

Every executor takes an :class:`~repro.core.algorithm.OrderedAlgorithm` and
a :class:`~repro.machine.SimMachine`, runs the algorithm's semantics exactly
once (so application state is exact), charges simulated cycles, and returns
a :class:`LoopResult`.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from ..core.algorithm import OrderedAlgorithm
from ..core.task import Task
from ..core.tracker import MinTracker
from ..machine import Category, CycleStats, SimMachine

__all__ = [
    "LoopResult",
    "MinTracker",
    "RunConfig",
    "attribute_commits",
    "bind_execute_task",
    "coerce_config",
    "execute_task",
    "inflate_execute",
    "reset_legacy_warning",
    "rw_visit_cost",
]


@dataclass
class RunConfig:
    """One execution configuration shared by every ``run_*`` executor.

    Historically each executor copy-pasted the same 8-10 keyword arguments
    (``checked, recorder, sanitize, engine, backend, workers, ...``) and
    re-validated them locally.  ``RunConfig`` is the single home for those
    options and their validation; executors take ``config=RunConfig(...)``
    and ignore the fields that do not apply to them (``baseline`` outside
    the serial executor, ``window_policy`` outside IKDG, and so on) — one
    config object can drive any executor.  The legacy keyword form still
    works through a deprecation shim (:func:`coerce_config`) and is
    bit-identical to the config form.
    """

    #: Run loop bodies in checked mode (bodies verify their declared rw-sets).
    checked: bool = False
    #: Optional :class:`repro.oracle.TraceRecorder` (observation only).
    recorder: Any = None
    #: Diff each body's accesses against its declared rw-set at commit time.
    sanitize: bool = False
    #: rw-set index engine: ``"dict"`` or ``"flat"`` (vectorized, interned).
    engine: str = "dict"
    #: Mark-phase backend: ``None``/``"inline"``, ``"mp"``, or a shared
    #: :class:`~repro.runtime.mp_backend.MPMarkBackend` instance.
    backend: Any = None
    #: Worker processes for ``backend="mp"`` (matches the CLI default).
    workers: int = 2
    #: §3.7 scheduling hint for bulk-synchronous phases (ikdg, kdg-rna).
    chunk_size: int = 1
    #: IKDG window policy (defaults to :class:`AdaptiveWindow` inside ikdg).
    window_policy: Any = None
    #: IKDG level-windowing strategy (§3.6.1, used for BFS).
    level_windows: bool = False
    #: Serial scheduling baseline: ``"heap"`` or ``"linear"`` (§5.1).
    baseline: str = "heap"
    #: KDG-RNA: verify subrule R removals against the live conflict graph.
    check_safety: bool = False
    #: KDG-RNA: force (True/False) or auto-select (None) the async variant.
    asynchronous: bool | None = None
    #: Relaxed executor: number of MultiQueue heaps ``c`` (sample-2-of-c).
    #: ``1`` disables relaxation — pops are exact and the relaxed executor
    #: is bit-identical to IKDG.  Per-pop rank error is bounded by ``c``.
    relaxation: int = 1
    #: Relaxed executor: OBIM delta-bucket width over integer priority
    #: levels.  ``None`` disables bucketing; set, the executor serves one
    #: fused bucket (``level // delta``) to fixpoint before advancing.
    delta: int | None = None
    #: Property trust model for executor selection: ``"declared"`` trusts
    #: the app's :class:`~repro.core.properties.AlgorithmProperties` as-is;
    #: ``"inferred"`` audits them with the static inference pass first
    #: (:func:`repro.analysis.infer.audit_app`) and refuses to run on an
    #: unsound declaration.  Sound declarations select the same executor
    #: either way, so schedules are bit-identical.
    properties: str = "declared"

    def validate_for(self, executor: str) -> None:
        """Centralized validation, previously scattered per executor."""
        if self.engine not in ("dict", "flat"):
            raise ValueError(
                f"unknown engine {self.engine!r} (expected 'dict' or 'flat')"
            )
        if self.properties not in ("declared", "inferred"):
            raise ValueError(
                f"unknown properties mode {self.properties!r} "
                "(expected 'declared' or 'inferred')"
            )
        uses_mp = self.backend is not None and self.backend != "inline"
        if executor != "relaxed":
            if self.relaxation != 1 or self.delta is not None:
                raise ValueError(
                    f"{executor}: relaxation knobs (relaxation="
                    f"{self.relaxation}, delta={self.delta}) require the "
                    "'relaxed' executor — exact executors always run in "
                    "strict priority order"
                )
        else:
            if self.relaxation < 1:
                raise ValueError(
                    f"relaxed: relaxation must be >= 1 (got {self.relaxation})"
                )
            if self.delta is not None and self.delta < 1:
                raise ValueError(
                    f"relaxed: delta must be >= 1 (got {self.delta})"
                )
            if self.relaxation > 1 and self.delta is not None:
                raise ValueError(
                    "relaxed: pick one relaxation mode — relaxation > 1 "
                    "(MultiQueue) or delta (fused buckets), not both"
                )
            if self.level_windows:
                raise ValueError(
                    "relaxed: level_windows is not supported (delta "
                    "bucketing subsumes level windowing)"
                )
            if uses_mp:
                raise ValueError(
                    "relaxed: backend='mp' is not supported (relaxed rounds "
                    "are too fine-grained to amortize worker dispatch)"
                )
        if executor == "serial":
            if self.baseline not in ("heap", "linear"):
                raise ValueError(f"unknown serial baseline {self.baseline!r}")
            if uses_mp:
                raise ValueError(
                    "serial: backend='mp' is not supported (no parallel phases)"
                )
        if executor == "speculation" and uses_mp:
            raise ValueError(
                "speculation: backend='mp' is not supported (trace-replay "
                "executor has no parallel mark phase)"
            )

    def describe(self) -> dict[str, Any]:
        """The *resolved* configuration, as carried by :class:`LoopResult`.

        Bench reports and oracle traces read this instead of reconstructing
        the configuration from CLI flags.  The backend is normalized to its
        kind (``"inline"``/``"mp"``) and ``workers`` reflects a shared
        backend instance's real worker count when one was passed.
        """
        backend = self.backend
        if backend is None or backend == "inline":
            kind, workers = "inline", None
        else:
            kind = "mp"
            workers = getattr(backend, "workers", self.workers)
        return {
            "engine": self.engine,
            "backend": kind,
            "workers": workers,
            "sanitize": self.sanitize,
            "checked": self.checked,
        }


#: Legacy keyword set each executor accepted before :class:`RunConfig`;
#: the shim rejects keywords outside an executor's historical signature so
#: typos keep failing loudly (as the old explicit signatures did).
_LEGACY_KEYS = {
    "serial": frozenset({"checked", "baseline", "recorder", "sanitize", "engine"}),
    "kdg-rna": frozenset({
        "checked", "check_safety", "asynchronous", "chunk_size",
        "recorder", "sanitize", "engine", "backend", "workers",
    }),
    "ikdg": frozenset({
        "checked", "window_policy", "level_windows", "chunk_size",
        "recorder", "sanitize", "engine", "backend", "workers",
    }),
    "level-by-level": frozenset({
        "checked", "recorder", "sanitize", "engine", "backend", "workers",
    }),
    "speculation": frozenset({
        "checked", "recorder", "sanitize", "engine", "backend", "workers",
    }),
    "relaxed": frozenset({
        "checked", "relaxation", "delta", "window_policy", "chunk_size",
        "recorder", "sanitize", "engine", "backend", "workers",
    }),
}

_legacy_warned = False


def reset_legacy_warning() -> None:
    """Re-arm the once-per-process legacy-kwargs warning (for tests)."""
    global _legacy_warned
    _legacy_warned = False


def coerce_config(executor: str, config: RunConfig | None, legacy: dict) -> RunConfig:
    """Resolve an executor's ``(config=..., **legacy)`` call into a RunConfig.

    The legacy keyword form warns once per process (``DeprecationWarning``)
    and builds an equivalent config, so results are bit-identical either
    way.  Mixing both forms is an error; so is a legacy keyword the
    executor's historical signature never accepted.
    """
    global _legacy_warned
    if legacy:
        if config is not None:
            raise TypeError(
                f"{executor}: pass either config=RunConfig(...) or legacy "
                f"keyword arguments, not both (got {sorted(legacy)})"
            )
        unknown = set(legacy) - _LEGACY_KEYS[executor]
        if unknown:
            raise TypeError(
                f"{executor}: unexpected keyword argument(s) "
                f"{sorted(unknown)}"
            )
        if not _legacy_warned:
            _legacy_warned = True
            warnings.warn(
                f"executor keyword arguments (seen on {executor}: "
                f"{sorted(legacy)}) are deprecated; pass "
                "config=RunConfig(...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
        config = RunConfig(**legacy)
    elif config is None:
        config = RunConfig()
    config.validate_for(executor)
    return config


@dataclass
class LoopResult:
    """Outcome of one ordered-loop execution."""

    algorithm: str
    executor: str
    machine: SimMachine
    executed: int
    rounds: int = 0
    metrics: dict[str, Any] = field(default_factory=dict)
    #: The resolved :class:`RunConfig` this run executed under (None only
    #: for hand-specialized app codes that bypass the ordered executors).
    config: RunConfig | None = None

    @property
    def stats(self) -> CycleStats:
        return self.machine.stats

    @property
    def elapsed_cycles(self) -> float:
        return self.machine.elapsed_cycles()

    @property
    def elapsed_seconds(self) -> float:
        return self.machine.elapsed_seconds()

    def breakdown(self) -> dict[Category, float]:
        return self.machine.stats.breakdown()


def attribute_commits(
    machine: SimMachine,
    recorder,
    committed: list[tuple[Task, int]],
    assigned: list[int],
) -> None:
    """Attribute phase-executed commits to their simulated threads.

    ``committed`` pairs each committed task with its item index in the cost
    list just run through :meth:`SimMachine.run_phase`; ``assigned`` is that
    phase's per-item thread assignment.  Updates the machine's per-thread
    commit counters and, when a trace ``recorder`` is attached, patches the
    recorded events' thread ids.
    """
    for task, index in committed:
        thread = assigned[index]
        machine.stats.record_commit(thread)
        if recorder is not None:
            recorder.set_thread(task.tid, thread)


def rw_visit_cost(algorithm: OrderedAlgorithm, machine: SimMachine, n_locs: int) -> float:
    """Cycles to run the read-only prefix over ``n_locs`` locations."""
    return machine.cost_model.rw_visit * max(1, n_locs)


def inflate_execute(machine: SimMachine, cycles: float, memory_fraction: float) -> float:
    """Apply the shared-bandwidth slowdown to execution cycles."""
    return cycles * machine.cost_model.bandwidth_slowdown(
        machine.num_threads, memory_fraction
    )


def execute_task(
    algorithm: OrderedAlgorithm,
    machine: SimMachine,
    task: Task,
    checked: bool = False,
    sanitizer=None,
) -> tuple[list[Any], float]:
    """Run the loop body; returns ``(new_items, execute_cycles)``.

    Execution cycles include the algorithm's memory-bandwidth inflation at
    the machine's thread count.  With a ``sanitizer`` attached, the body
    runs under a recording context and its accesses are diffed against the
    declared rw-set at this commit point (observation only: no cycles).
    """
    ctx = algorithm.execute_body(task, checked=checked, record=sanitizer is not None)
    cycles = inflate_execute(
        machine,
        machine.cost_model.work_cost(ctx.work_done),
        algorithm.memory_bound_fraction,
    )
    if sanitizer is not None:
        sanitizer.check(task, ctx)
    return ctx.pushed, cycles


def bind_execute_task(
    algorithm: OrderedAlgorithm,
    machine: SimMachine,
    checked: bool = False,
    sanitizer=None,
) -> Callable[[Task], tuple[list[Any], float]]:
    """Per-run closure over :func:`execute_task`'s run constants.

    The work scale and bandwidth inflation are fixed for a whole run;
    executors call this once and pay one body call plus two multiplies per
    task.  The multiplication order matches :func:`execute_task` exactly,
    so charged cycles are bit-identical.  The sanitizing variant is a
    separate closure so the unsanitized hot path stays untouched.
    """
    execute_body = algorithm.execute_body
    cycles_per_work = machine.cost_model.cycles_per_work
    inflation = machine.cost_model.bandwidth_slowdown(
        machine.num_threads, algorithm.memory_bound_fraction
    )

    if sanitizer is not None:
        check = sanitizer.check

        def run_task_sanitized(task: Task) -> tuple[list[Any], float]:
            ctx = execute_body(task, checked=checked, record=True)
            cycles = (ctx.work_done * cycles_per_work) * inflation
            check(task, ctx)
            return ctx.pushed, cycles

        return run_task_sanitized

    def run_task(task: Task) -> tuple[list[Any], float]:
        ctx = execute_body(task, checked=checked)
        return ctx.pushed, (ctx.work_done * cycles_per_work) * inflation

    return run_task
