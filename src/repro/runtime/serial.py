"""Optimized serial baseline, executed in priority order.

This is the paper's sequential implementation (§5.1).  Two scheduling cost
models match the paper's baselines: ``"heap"`` for the applications whose
serial codes maintain a priority queue (AVI, Billiards, DES), and
``"linear"`` for those whose optimized serial codes process a pre-sorted or
structurally ordered sequence with no queue at all (MST, LU, BFS, tree
traversal) — one up-front sort plus a constant per-item dispatch.  Either
way the execution order is identical; every parallel executor's final
application state must equal this executor's state exactly.
"""

from __future__ import annotations

import math

from ..core.algorithm import OrderedAlgorithm
from ..core.task import SORT_KEY
from ..galois.priorityqueue import BinaryHeap
from ..machine import Category, SimMachine
from .base import LoopResult, RunConfig, bind_execute_task, coerce_config

#: Per-item dispatch cost of a sorted-sequence serial loop.
LINEAR_DISPATCH = 8.0


def run_serial(
    algorithm: OrderedAlgorithm,
    machine: SimMachine | None = None,
    config: RunConfig | None = None,
    **legacy,
) -> LoopResult:
    """Execute ``algorithm`` serially in priority order.

    ``config`` is a :class:`~repro.runtime.base.RunConfig`; the legacy
    keyword form (``checked=``, ``baseline=``, ``recorder=``,
    ``sanitize=``, ``engine=``) still works through a deprecation shim.
    With a ``recorder`` attached, rw-sets are computed (uncharged, as in
    checked mode) so the reference trace carries conflict information.
    ``sanitize=True`` diffs each body's actual accesses against the
    declared rw-set (observation only; charges no cycles).  ``engine`` is
    accepted for executor-signature uniformity and ignored: the serial
    baseline keeps no rw-set index to flatten.
    """
    cfg = coerce_config("serial", config, legacy)
    checked = cfg.checked
    baseline = cfg.baseline
    recorder = cfg.recorder
    sanitize = cfg.sanitize
    if machine is None:
        machine = SimMachine(1)
    if machine.num_threads != 1:
        raise ValueError("the serial executor requires a 1-thread machine")
    cm = machine.cost_model
    factory = algorithm.task_factory()
    heap = BinaryHeap(SORT_KEY, factory.make_all(algorithm.initial_items))
    if baseline == "heap":
        machine.charge_serial(Category.SCHEDULE, cm.pq_cost(len(heap)) * len(heap))
    else:
        # One up-front sort of the initial items.
        count = max(1, len(heap))
        machine.charge_serial(Category.SCHEDULE, 4.0 * count * math.log2(count + 1))

    sanitizer = None
    if sanitize:
        from ..analysis.sanitizer import AccessSanitizer

        sanitizer = AccessSanitizer(algorithm, phase="serial/execute")

    executed = 0
    # Hot-loop constants, bound once: one dispatch + one commit per task.
    # Cycles accumulate straight into thread 0's counter row and clock —
    # the same order of float additions charge_serial would perform.
    run_task = bind_execute_task(algorithm, machine, checked, sanitizer=sanitizer)
    is_heap = baseline == "heap"
    pq_cost = cm.pq_cost
    row = machine.stats.rows()[0]
    clock = machine.clocks[0]
    record_commit = machine.stats.record_commit
    pop = heap.pop
    push = heap.push
    need_rw = checked or recorder is not None or sanitizer is not None
    while heap:
        task = pop()
        dispatch = pq_cost(len(heap)) if is_heap else LINEAR_DISPATCH
        row[Category.SCHEDULE] += dispatch
        clock += dispatch
        if need_rw:
            # Checked mode (and tracing) needs the declared rw-set; the
            # serial baseline itself never computes rw-sets, so no cycles
            # are charged.
            task.rw_set = algorithm.compute_rw_set(task)
        new_items, exec_cycles = run_task(task)
        row[Category.EXECUTE] += exec_cycles
        clock += exec_cycles
        record_commit(0)
        executed += 1
        if recorder is not None:
            recorder.commit(task, thread=0, round_no=executed)
        for item in new_items:
            child = factory.make(item)
            push(child)
            if recorder is not None:
                recorder.push(task, child)
            push_cost = pq_cost(len(heap)) if is_heap else LINEAR_DISPATCH
            row[Category.SCHEDULE] += push_cost
            clock += push_cost
    machine.clocks[0] = clock

    return LoopResult(
        algorithm=algorithm.name,
        executor="serial",
        machine=machine,
        executed=executed,
        config=cfg,
    )
