"""The explicit KDG executor (KDG-RNA, §3.4) and its optimized variants.

The baseline executor proceeds in rounds of three bulk-synchronous phases
(Figure 6): (1) apply the safe-source test to the sources of ``G``;
(2) execute the safe sources and remove them (subrule **R**); (3) repair the
KDG — recompute neighbor rw-sets (subrule **N**) and insert newly created
tasks (subrule **A**).

Declared algorithm properties strip this down (§3.6):

* ``stable_source``        — phase 1 disappears (every source is safe).
* ``no_new_tasks``         — subrule **A** disappears.
* ``non_increasing_rw_sets`` — subrule **N** disappears.
* ``local_safe_source_test`` — phase 1 fuses with phase 2 (one barrier less).
* ``structure_based_rw_sets`` — the phase-2/phase-3 barrier disappears; with
  stable sources (or a local test) the executor becomes fully
  **asynchronous**: an event-driven schedule with no rounds at all.
"""

from __future__ import annotations

from typing import Any

from ..core.algorithm import OrderedAlgorithm, SourceView
from ..core.kdg import KDG, LivenessViolation, OpCounts
from ..core.task import SORT_KEY, Task
from ..machine import Category, SimMachine, simulate_async
from .base import (
    LoopResult,
    RunConfig,
    attribute_commits,
    bind_execute_task,
    coerce_config,
    rw_visit_cost,
)


def _ops_cycles(machine: SimMachine, ops: OpCounts) -> float:
    cm = machine.cost_model
    return (
        ops.node_ops * cm.graph_add_node
        + ops.edge_ops * cm.graph_add_edge
        + ops.rw_ops * cm.graph_remove_edge
    )


def _safe_test_cost(algorithm: OrderedAlgorithm, machine: SimMachine) -> float:
    return machine.cost_model.safe_test_base + algorithm.safe_test_work


def _build_kdg(
    algorithm: OrderedAlgorithm,
    machine: SimMachine,
    kdg: KDG,
    tasks: list[Task],
) -> None:
    """General-BuildTaskGraph: compute rw-sets and wire the initial graph.

    With an explicit ``dependences`` hint and no task creation (§4.7, tree
    traversal), rw-set computation is disabled and edges are wired directly.
    The general path runs the cautious prefix for every task, then inserts
    the whole set through :meth:`KDG.add_tasks` — one batched conflict
    sweep under the flat engine, a plain loop under the dict engine, with
    identical per-task op counts either way.
    """
    cm = machine.cost_model
    if algorithm.dependences is not None and algorithm.properties.no_new_tasks:
        by_item = {task.item: task for task in tasks}
        add_node = kdg.graph.add_node
        add_edge = kdg.graph.add_edge
        tracker_add = kdg.tracker.add
        for task in tasks:
            add_node(task)
            tracker_add(task)
        graph_add_node = cm.graph_add_node
        graph_add_edge = cm.graph_add_edge
        costs: list[float] = []
        for task in tasks:
            edge_ops = 0
            for dep_item in algorithm.dependences(task.item):
                pred = by_item.get(dep_item)
                if pred is not None:
                    edge_ops += add_edge(pred, task)
            costs.append(graph_add_node + edge_ops * graph_add_edge)
        machine.run_phase_scalar(Category.SCHEDULE, costs)
        return
    if kdg.interner is not None:
        compute_rw_lists = algorithm.compute_rw_lists
        interner = kdg.interner
        for task in tasks:
            compute_rw_lists(task, interner)
    else:
        compute_rw_set = algorithm.compute_rw_set
        for task in tasks:
            compute_rw_set(task)
    ops_list = kdg.add_tasks(tasks)
    rw_visit = cm.rw_visit
    costs = [
        rw_visit * max(1, len(task.rw_set)) + _ops_cycles(machine, ops)
        for task, ops in zip(tasks, ops_list)
    ]
    machine.run_phase_scalar(Category.SCHEDULE, costs)


def run_kdg_rna(
    algorithm: OrderedAlgorithm,
    machine: SimMachine | None = None,
    config: RunConfig | None = None,
    **legacy,
) -> LoopResult:
    """Run ``algorithm`` under the explicit KDG executor.

    ``config`` is a :class:`~repro.runtime.base.RunConfig`; the legacy
    keyword form still works through a deprecation shim.
    ``asynchronous=None`` picks the asynchronous variant automatically when
    the declared properties allow it (§3.6.3).  ``chunk_size`` is the §3.7
    scheduling hint for the bulk-synchronous phases (ignored by the
    asynchronous variant, whose dispatch is per-task).  ``recorder`` is an
    optional :class:`repro.oracle.TraceRecorder`.  ``sanitize=True`` diffs
    each body's accesses against its declared rw-set at commit time
    (observation only).  ``engine="flat"`` gives the round-based variant a
    flat rw-set index over interned location ids with batched subrule-**A**
    insertion (:mod:`repro.core.flat`); schedules are identical to the dict
    engine.  The asynchronous variant is event-driven — there is no round
    to batch — so it always uses the dict index and ignores ``engine``.
    ``backend``/``workers`` are accepted (and validated) for executor
    uniformity but are a documented no-op: KDG-RNA maintains the graph
    incrementally and has no bulk mark phase to shard.
    """
    cfg = coerce_config("kdg-rna", config, legacy)
    checked = cfg.checked
    check_safety = cfg.check_safety
    asynchronous = cfg.asynchronous
    chunk_size = cfg.chunk_size
    recorder = cfg.recorder
    sanitize = cfg.sanitize
    engine = cfg.engine
    backend = cfg.backend
    workers = cfg.workers
    if machine is None:
        machine = SimMachine(1)
    if backend is not None and backend != "inline":
        from .mp_backend import resolve_backend

        mp_backend, owns_backend = resolve_backend(
            backend, engine, workers, "kdg-rna"
        )
        # No bulk-synchronous marking here — nothing to dispatch to workers.
        if owns_backend:
            mp_backend.close()
    props = algorithm.properties
    if asynchronous is None:
        asynchronous = props.supports_asynchronous
    if asynchronous:
        if not props.supports_asynchronous:
            raise ValueError(
                f"{algorithm.name}: asynchronous KDG-RNA requires "
                "structure-based rw-sets and stable sources or a local test"
            )
        result = _run_async(
            algorithm, machine, checked, check_safety, recorder, sanitize
        )
    else:
        result = _run_rounds(
            algorithm, machine, checked, check_safety, chunk_size, recorder,
            sanitize, engine,
        )
    result.config = cfg
    return result


# ----------------------------------------------------------------------
# Round-based executor (Figure 6, KDG-RNA-Executor)
# ----------------------------------------------------------------------
def _run_rounds(
    algorithm: OrderedAlgorithm,
    machine: SimMachine,
    checked: bool,
    check_safety: bool,
    chunk_size: int = 1,
    recorder=None,
    sanitize: bool = False,
    engine: str = "dict",
) -> LoopResult:
    cm = machine.cost_model
    props = algorithm.properties
    factory = algorithm.task_factory()
    if engine == "flat":
        from ..core.flat import LocationInterner

        interner = LocationInterner()
        kdg = KDG(check_safety=check_safety, interner=interner)

        def compute_rw(task: Task) -> tuple:
            return algorithm.compute_rw_lists(task, interner)[1]
    else:
        kdg = KDG(check_safety=check_safety)
        compute_rw = algorithm.compute_rw_set
    tracker = kdg.tracker
    _build_kdg(algorithm, machine, kdg, factory.make_all(algorithm.initial_items))

    sanitizer = None
    if sanitize:
        from ..analysis.sanitizer import AccessSanitizer

        sanitizer = AccessSanitizer(algorithm, phase="kdg-rna/execute")

    executed = 0
    rounds = 0
    run_task = bind_execute_task(algorithm, machine, checked, sanitizer=sanitizer)
    # Which barriers survive the property-driven fusions (§3.6.3).
    fuse_test_with_execute = props.stable_source or props.local_safe_source_test
    fuse_execute_with_update = props.structure_based_rw_sets

    while kdg.not_empty():
        rounds += 1
        if sanitizer is not None:
            sanitizer.round_no = rounds
        # Canonical source order: both engines wire conflict edges in a
        # representation-specific order, which leaks into the adjacency
        # (hence sources()) iteration order.  Sorting makes the round's
        # source view engine-independent; safe sources are re-sorted for
        # execution anyway, and phase-1 test costs are uniform, so the
        # simulated schedule is unchanged.
        sources = kdg.sources()
        sources.sort(key=SORT_KEY)

        # Phase 1: safe-source test.
        if props.stable_source:
            safe = sources
            test_costs: list[dict[Category, float]] = []
        else:
            view = SourceView(sources, tracker.min_priority())
            safe = [w for w in sources if algorithm.is_safe(w, view)]
            test_costs = [
                {Category.SAFETY_TEST: _safe_test_cost(algorithm, machine)}
                for _ in sources
            ]
            if not fuse_test_with_execute and test_costs:
                machine.run_phase(test_costs)
                test_costs = []
        if not safe:
            raise LivenessViolation(
                f"{algorithm.name}: no safe source among {len(sources)} sources "
                f"({len(kdg)} tasks pending)"
            )
        safe.sort(key=SORT_KEY)
        if check_safety:
            for w in safe:
                kdg.protect(w)

        # Phase 2: execute safe sources; subrule R.
        exec_costs: list[dict[Category, float]] = list(test_costs)
        records: list[tuple[Task, list[Any], list[Task]]] = []
        committed: list[tuple[Task, int]] = []  # (task, cost-list index)
        for w in safe:
            if recorder is not None:
                recorder.commit(w, round_no=rounds)
            new_items, exec_cycles = run_task(w)
            neighbors, ops = kdg.remove_task(w)
            records.append((w, new_items, neighbors))
            committed.append((w, len(exec_costs)))
            exec_costs.append(
                {
                    Category.EXECUTE: exec_cycles + cm.worklist_cost(machine.num_threads),
                    Category.SCHEDULE: _ops_cycles(machine, ops),
                }
            )
            executed += 1
        if not fuse_execute_with_update:
            assigned = machine.run_phase(exec_costs, chunk_size=chunk_size)
            attribute_commits(machine, recorder, committed, assigned)
            exec_costs = []
            committed = []

        # Phase 3: subrules N and A.
        update_costs: list[dict[Category, float]] = list(exec_costs)
        if not props.non_increasing_rw_sets:
            refreshed: dict[Task, None] = {}
            for _, _, neighbors in records:
                for n in neighbors:
                    if n in kdg.graph:
                        refreshed[n] = None
            # Canonical refresh order: the set of refreshed neighbors is
            # engine-independent but its discovery order is not (it follows
            # the adjacency iteration order) — sort by the total order.
            for n in sorted(refreshed, key=SORT_KEY):
                # Subrule N re-runs the cautious prefix: drop any memoized
                # rw-set so kinetic algorithms see fresh data.
                algorithm.invalidate_rw_set(n)
                rw = compute_rw(n)
                ops = kdg.refresh_task(n, rw)
                update_costs.append(
                    {
                        Category.SCHEDULE: rw_visit_cost(algorithm, machine, len(rw))
                        + _ops_cycles(machine, ops)
                    }
                )
        if not props.no_new_tasks:
            # Subrule A, batched: create and visit every child first, then
            # insert the whole round's batch at once — one conflict sweep
            # under the flat engine, op-count identical to one-at-a-time
            # insertion either way.
            children: list[Task] = []
            for parent, new_items, _ in records:
                for item in new_items:
                    child = factory.make(item)
                    if recorder is not None:
                        recorder.push(parent, child)
                    compute_rw(child)
                    children.append(child)
            if children:
                for child, ops in zip(children, kdg.add_tasks(children)):
                    update_costs.append(
                        {
                            Category.SCHEDULE: rw_visit_cost(
                                algorithm, machine, len(child.rw_set)
                            )
                            + _ops_cycles(machine, ops)
                        }
                    )
        assigned = machine.run_phase(update_costs, chunk_size=chunk_size)
        # Fused execute/update: the commit entries are a prefix of this
        # phase's cost list, so their indices are still valid here.
        attribute_commits(machine, recorder, committed, assigned)
        if check_safety:
            for w in safe:
                kdg.unprotect(w)

    return LoopResult(
        algorithm=algorithm.name,
        executor="kdg-rna",
        machine=machine,
        executed=executed,
        rounds=rounds,
        metrics={"tasks_created": factory.created},
    )


# ----------------------------------------------------------------------
# Asynchronous executor (§3.6.3): no rounds, no barriers
# ----------------------------------------------------------------------
def _run_async(
    algorithm: OrderedAlgorithm,
    machine: SimMachine,
    checked: bool,
    check_safety: bool,
    recorder=None,
    sanitize: bool = False,
) -> LoopResult:
    cm = machine.cost_model
    props = algorithm.properties
    factory = algorithm.task_factory()
    kdg = KDG(check_safety=check_safety)
    tracker = kdg.tracker
    _build_kdg(algorithm, machine, kdg, factory.make_all(algorithm.initial_items))

    sanitizer = None
    if sanitize:
        from ..analysis.sanitizer import AccessSanitizer

        sanitizer = AccessSanitizer(algorithm, phase="kdg-rna-async/execute")

    run_task = bind_execute_task(algorithm, machine, checked, sanitizer=sanitizer)
    released: set[Task] = set()
    parked: set[Task] = set()
    test_charges = {"count": 0}
    # The worker the simulator hands the current task to (see on_assign).
    current_thread = {"tid": 0}
    # Hot-loop constants, bound once: these run per task dispatch.
    graph = kdg.graph
    is_source = graph.is_source
    compute_rw_set = algorithm.compute_rw_set
    rw_visit = cm.rw_visit
    worklist_cycles = cm.worklist_cost(machine.num_threads)
    graph_add_node = cm.graph_add_node
    graph_add_edge = cm.graph_add_edge
    graph_remove_edge = cm.graph_remove_edge

    def try_release(candidates: list[Task]) -> list[Task]:
        """Apply the safe-source test; park failures, release passes."""
        exposed = []
        for cand in candidates:
            if cand in released or cand not in graph:
                continue
            if not is_source(cand):
                continue
            if props.stable_source:
                safe = True
            else:
                test_charges["count"] += 1
                view = SourceView([cand], tracker.min_priority())
                safe = algorithm.is_safe(cand, view)
            if safe:
                released.add(cand)
                parked.discard(cand)
                if check_safety:
                    kdg.protect(cand)
                exposed.append(cand)
            else:
                parked.add(cand)
        return exposed

    def step(task: Task) -> tuple[dict[Category, float], list[Task]]:
        breakdown = {
            Category.SCHEDULE: worklist_cycles,
            Category.EXECUTE: 0.0,
            Category.SAFETY_TEST: 0.0,
        }
        if check_safety:
            kdg.unprotect(task)
        new_items, exec_cycles = run_task(task)
        breakdown[Category.EXECUTE] += exec_cycles
        neighbors, ops = kdg.remove_task(task)
        breakdown[Category.SCHEDULE] += (
            ops.node_ops * graph_add_node
            + ops.edge_ops * graph_add_edge
            + ops.rw_ops * graph_remove_edge
        )
        machine.stats.record_commit(current_thread["tid"])
        if recorder is not None:
            recorder.commit(task, thread=current_thread["tid"])

        children: list[Task] = []
        for item in new_items:
            child = factory.make(item)
            if recorder is not None:
                recorder.push(task, child)
            rw = compute_rw_set(child)
            child_ops = kdg.add_task(child, rw, child.write_set)
            children.append(child)
            breakdown[Category.SCHEDULE] += rw_visit * max(1, len(rw)) + (
                child_ops.node_ops * graph_add_node
                + child_ops.edge_ops * graph_add_edge
                + child_ops.rw_ops * graph_remove_edge
            )

        candidates: dict[Task, None] = {}
        for n in neighbors:
            candidates[n] = None
        for c in children:
            candidates[c] = None
            for n in graph.neighbors(c):
                if n in parked:
                    candidates[n] = None
        before = test_charges["count"]
        exposed = try_release(list(candidates))
        breakdown[Category.SAFETY_TEST] += (
            test_charges["count"] - before
        ) * _safe_test_cost(algorithm, machine)
        return breakdown, exposed

    def on_assign(task: Task, tid: int) -> None:
        current_thread["tid"] = tid

    initial = try_release(kdg.sources())
    executed = simulate_async(machine, initial, SORT_KEY, step, on_assign=on_assign)
    if kdg.not_empty():
        raise LivenessViolation(
            f"{algorithm.name}: asynchronous executor stalled with "
            f"{len(kdg)} tasks pending ({len(parked)} parked)"
        )
    return LoopResult(
        algorithm=algorithm.name,
        executor="kdg-rna-async",
        machine=machine,
        executed=executed,
        metrics={
            "tasks_created": factory.created,
            "safe_tests": test_charges["count"],
        },
    )
