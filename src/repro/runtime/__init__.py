"""KDG runtime: executors for the ordered programming model.

``choose_executor`` implements the paper's §3.6 selection comments: declared
algorithm properties pick an optimized executor; with no properties the
runtime falls back to IKDG with windowing.
"""

from __future__ import annotations

from ..core.properties import AlgorithmProperties
from .base import LoopResult, MinTracker
from .ikdg import run_ikdg
from .kdg_rna import run_kdg_rna
from .level_by_level import run_level_by_level
from .relaxed import run_relaxed
from .serial import run_serial
from .speculation import run_speculation
from .windowing import AdaptiveWindow

EXECUTORS = {
    "serial": run_serial,
    "kdg-rna": run_kdg_rna,
    "ikdg": run_ikdg,
    "level-by-level": run_level_by_level,
    "speculation": run_speculation,
    "relaxed": run_relaxed,
}


def __getattr__(name):
    # Lazy: the mp backend pulls in numpy, which the dict-engine paths
    # otherwise never import; sessions pull in the oracle tracer.
    if name in ("MPMarkBackend", "WorkerDied"):
        from . import mp_backend

        return getattr(mp_backend, name)
    if name in ("KineticSession", "RepairResult", "SessionState"):
        from . import session

        return getattr(session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def choose_executor(properties: AlgorithmProperties) -> str:
    """Pick the executor the declared properties justify (§3.6).

    The explicit KDG pays off when its maintenance is cheap and barrier-free:
    structure-based rw-sets with stable sources or a local safe-source test
    (the asynchronous executor — AVI, DES, LU) or a conventional task graph
    (tree traversal).  Everything else — changing rw-sets (Kruskal), global
    safe-source tests (Billiards), level-structured priorities (BFS) — falls
    back to IKDG with windowing, the paper's default.
    """
    if properties.supports_asynchronous or properties.conventional_task_graph:
        return "kdg-rna"
    return "ikdg"


__all__ = [
    "AdaptiveWindow",
    "EXECUTORS",
    "KineticSession",
    "LoopResult",
    "MinTracker",
    "MPMarkBackend",
    "RepairResult",
    "SessionState",
    "WorkerDied",
    "choose_executor",
    "run_ikdg",
    "run_kdg_rna",
    "run_level_by_level",
    "run_relaxed",
    "run_serial",
    "run_speculation",
]
