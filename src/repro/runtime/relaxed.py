"""Relaxed-priority executor: IKDG rounds over a relaxed scheduler.

The exact executors pay a shared ordered worklist on every hot path and a
safe-source test that serializes commits to the earliest pending priority.
Relaxed schedulers (Alistarh et al. 2018) drop strict pop order for bounded
rank error; PriorityGraph (Zhang et al. 2020) coarsens it into delta
buckets served to fixpoint.  ``run_relaxed`` keeps the kinetic mark/commit
phases — conflicting tasks still never commit in the same round, so every
run is *some* linearization of the loop — and swaps only the schedule:

* ``relaxation == 1, delta == None`` (**exact mode**, the default): the
  backlog is a :class:`~repro.galois.multiqueue.MultiQueue` with one heap,
  whose pop order is bit-identical to the
  :class:`~repro.galois.worklist.OrderedWorklist` IKDG uses.  Every phase,
  charge and routing decision mirrors ``run_ikdg``'s non-level path, so
  traces, makespans and final states are bit-identical to IKDG — the
  differential oracle enforces this.
* ``relaxation = c > 1`` (**MultiQueue mode**): pops sample two of ``c``
  heaps and serve the earlier head; per-pop rank error is bounded by
  ``c``.  Scheduling charges shrink to the *served queue's* length
  (``pq_cost(n/c)`` instead of ``pq_cost(n)``) and the safe-source test is
  skipped — mark owners commit immediately.
* ``delta = d`` (**fused-bucket mode**): the backlog is a
  :class:`~repro.core.flat.bucketed.FlatBucketWorklist`; each window is an
  entire priority bucket (``level // d``) drained to fixpoint — children
  landing in the bucket being served join the window directly — and every
  worklist transfer is O(1) (``worklist_op``, no heap).

The relaxed modes require :attr:`OrderedAlgorithm.relaxable`: the body
must converge to the serializable fixpoint under out-of-order execution
(label-correcting algorithms — BFS, SSSP, A*).  Priority order then only
bounds wasted work, which ``repro.oracle.rank_error`` measures per trace.
"""

from __future__ import annotations

from typing import Any

from ..core.algorithm import OrderedAlgorithm, SourceView
from ..core.kdg import LivenessViolation
from ..core.task import SORT_KEY, Task
from ..galois.multiqueue import MultiQueue
from ..machine import Category, SimMachine
from .base import LoopResult, RunConfig, attribute_commits, bind_execute_task, coerce_config
from .windowing import AdaptiveWindow


def run_relaxed(
    algorithm: OrderedAlgorithm,
    machine: SimMachine | None = None,
    config: RunConfig | None = None,
    **legacy,
) -> LoopResult:
    """Run ``algorithm`` under the relaxed-scheduler executor.

    ``config.relaxation`` picks the MultiQueue width ``c`` (1 = exact),
    ``config.delta`` the fused-bucket width (None = off); the two modes are
    mutually exclusive (see :meth:`RunConfig.validate_for`).  With both at
    their defaults the run is bit-identical to ``run_ikdg`` — same trace,
    same charged cycles, same final state.  Relaxed settings additionally
    require ``algorithm.relaxable`` and, for ``delta``, an integer
    ``level_of``.  ``engine="flat"`` and the sanitizer/recorder hooks work
    exactly as in IKDG; ``backend="mp"`` and ``level_windows`` are
    rejected up front.
    """
    cfg = coerce_config("relaxed", config, legacy)
    checked = cfg.checked
    chunk_size = cfg.chunk_size
    recorder = cfg.recorder
    sanitize = cfg.sanitize
    engine = cfg.engine
    relaxation = cfg.relaxation
    delta = cfg.delta
    relaxed = relaxation > 1 or delta is not None
    if relaxed and not getattr(algorithm, "relaxable", False):
        raise ValueError(
            f"{algorithm.name}: relaxed scheduling (relaxation={relaxation}, "
            f"delta={delta}) requires a relaxable algorithm — the body must "
            "converge to the serializable fixpoint under out-of-order "
            "execution"
        )
    if delta is not None and algorithm.level_of is None:
        raise ValueError(
            f"{algorithm.name}: delta bucketing requires the algorithm to "
            "declare an integer level_of (the bucket metric)"
        )
    if machine is None:
        machine = SimMachine(1)
    flat = engine == "flat"
    pooled = False
    if flat:
        from ..core.flat import (
            LocationInterner,
            MarkBuffers,
            RoundPool,
            mark_round,
            pooled_mark_round,
        )

        interner = LocationInterner()
        buffers = MarkBuffers()
        compute_rw_lists = algorithm.compute_rw_lists
        pooled = algorithm.properties.structure_based_rw_sets
        if pooled:
            pool = RoundPool()
    cm = machine.cost_model
    props = algorithm.properties
    policy = cfg.window_policy if cfg.window_policy is not None else AdaptiveWindow()

    factory = algorithm.task_factory()
    initial_tasks = factory.make_all(algorithm.initial_items)
    mode = "delta" if delta is not None else (
        "multiqueue" if relaxation > 1 else "exact"
    )
    current_bucket = None
    if mode == "delta":
        from ..core.flat.bucketed import FlatBucketWorklist

        level = algorithm.level
        backlog: Any = FlatBucketWorklist(level, delta=delta, items=initial_tasks)
        machine.run_phase_scalar(
            Category.SCHEDULE, [cm.worklist_op] * len(backlog)
        )
    elif mode == "multiqueue":
        backlog = MultiQueue(SORT_KEY, relaxation=relaxation)
        init_costs: list[float] = []
        for task in initial_tasks:
            # Per-queue charge: a push touches one of c heaps, not the
            # shared structure — the MultiQueue's whole point.
            init_costs.append(cm.pq_cost(backlog.target_queue_len() + 1))
            backlog.push(task)
        machine.run_phase_scalar(Category.SCHEDULE, init_costs)
    else:
        backlog = MultiQueue(SORT_KEY, initial_tasks)
        machine.run_phase_scalar(
            Category.SCHEDULE, [cm.pq_cost(len(backlog))] * len(backlog)
        )
    window: dict[Task, Any] = {}
    window_size = policy.first_size(machine.num_threads)
    # Relaxed modes never run the safe-source test (mark owners commit
    # immediately), so they always take the fused charging shape.
    fuse_test_with_execute = props.stable_source or relaxed

    sanitizer = None
    if sanitize:
        from ..analysis.sanitizer import AccessSanitizer

        sanitizer = AccessSanitizer(algorithm, phase="relaxed/phase-III")

    executed = 0
    rounds = 0
    buckets_served = 0
    round_sizes: list[int] = []
    run_task = bind_execute_task(algorithm, machine, checked, sanitizer=sanitizer)
    compute_rw_set = algorithm.compute_rw_set
    rw_visit = cm.rw_visit
    mark_cas = cm.mark_cas
    mark_reset = cm.mark_reset
    pq_cost = cm.pq_cost
    worklist_op = cm.worklist_op

    while window or backlog:
        rounds += 1
        if sanitizer is not None:
            sanitizer.round_no = rounds
        # Refill.  Exact/MultiQueue modes keep an adaptive priority-prefix
        # window; delta mode serves whole buckets to fixpoint — the window
        # refills only once the previous bucket fully drained.
        refill_costs: list[float] = []
        if mode == "delta":
            if not window and backlog:
                current_bucket, bucket_tasks = backlog.pop_bucket()
                buckets_served += 1
                if pooled:
                    caches = [
                        compute_rw_lists(task, interner) for task in bucket_tasks
                    ]
                    for task, slot in zip(
                        bucket_tasks, pool.add_batch(bucket_tasks, caches)
                    ):
                        window[task] = slot
                        refill_costs.append(worklist_op)
                else:
                    for task in bucket_tasks:
                        window[task] = None
                        refill_costs.append(worklist_op)
        elif pooled:
            batch: list = []
            while len(window) + len(batch) < window_size and backlog:
                batch.append(backlog.pop())
                refill_costs.append(
                    pq_cost(backlog.last_queue_len())
                    if mode == "multiqueue"
                    else pq_cost(len(backlog))
                )
            if batch:
                caches = [compute_rw_lists(task, interner) for task in batch]
                for task, slot in zip(batch, pool.add_batch(batch, caches)):
                    window[task] = slot
        else:
            while len(window) < window_size and backlog:
                task = backlog.pop()
                window[task] = None
                refill_costs.append(
                    pq_cost(backlog.last_queue_len())
                    if mode == "multiqueue"
                    else pq_cost(len(backlog))
                )
        if refill_costs:
            machine.run_phase_scalar(
                Category.SCHEDULE, refill_costs, barrier=False
            )
        if not window:
            raise LivenessViolation(
                f"{algorithm.name}: relaxed round {rounds} produced an empty "
                f"window with {len(backlog)} backlog task(s) pending "
                f"(mode={mode}, window_size={window_size})"
            )
        if mode == "exact":
            window_max_key = max(task.sort_key for task in window)
        round_sizes.append(len(window))

        # Phase I/II: identical to IKDG — priority-mark, then take mark
        # owners as sources.  The window's earliest task always owns all
        # of its marks, so a non-empty window yields a source even under
        # relaxed pops.
        sources = []
        reset_costs: list[float] = []
        safety_costs: list[float] = []
        if flat:
            window_tasks = list(window)
            if pooled:
                marked = pooled_mark_round(
                    pool, window_tasks, list(window.values()),
                    buffers, rw_visit, mark_cas,
                )
            else:
                caches = [
                    compute_rw_lists(task, interner) for task in window_tasks
                ]
                marked = mark_round(
                    window_tasks, caches, buffers, rw_visit, mark_cas
                )
            machine.run_phase_scalar(
                Category.SCHEDULE, marked.mark_costs, chunk_size=chunk_size
            )
            min_task = window_tasks[marked.min_index]
            owner = marked.owner
            reset_costs = [mark_reset * n for n in marked.lens]
            sources = [t for t, o in zip(window_tasks, owner) if o]
        else:
            marks_all: dict[object, Task] = {}
            marks_writer: dict[object, Task] = {}
            mark_costs: list[float] = []
            min_task: Task | None = None
            min_key = None
            for task in window:
                rw = compute_rw_set(task)
                key = task.sort_key
                if min_key is None or key < min_key:
                    min_task, min_key = task, key
                cas = 0
                write_set = task.write_set
                for loc in rw:
                    holder = marks_all.get(loc)
                    if holder is None or key < holder.sort_key:
                        marks_all[loc] = task
                    cas += 1
                    if loc in write_set:
                        holder = marks_writer.get(loc)
                        if holder is None or key < holder.sort_key:
                            marks_writer[loc] = task
                        cas += 1
                mark_costs.append(rw_visit * max(1, len(rw)) + mark_cas * cas)
            machine.run_phase_scalar(
                Category.SCHEDULE, mark_costs, chunk_size=chunk_size
            )

            def is_mark_owner(task: Task) -> bool:
                key = task.sort_key
                write_set = task.write_set
                for loc in task.rw_set:
                    if loc in write_set:
                        if marks_all[loc] is not task:
                            return False
                    else:
                        writer = marks_writer.get(loc)
                        if writer is not None and writer.sort_key < key:
                            return False
                return True

            for task in window:
                reset_costs.append(mark_reset * len(task.rw_set))
                if is_mark_owner(task):
                    sources.append(task)
        safe: list[Task]
        if props.stable_source or relaxed:
            safe = sources
        else:
            view = SourceView(sources, min_task.priority if min_task else None)
            test_cost = cm.safe_test_base + algorithm.safe_test_work
            safe = []
            for task in sources:
                safety_costs.append(test_cost)
                if algorithm.is_safe(task, view):
                    safe.append(task)
        if not safe:
            raise LivenessViolation(
                f"{algorithm.name}: relaxed round with {len(window)} window "
                f"tasks and {len(sources)} sources produced no safe source"
            )
        if not fuse_test_with_execute:
            if chunk_size == 1:
                machine.run_phase_scalar(
                    Category.SCHEDULE, reset_costs, barrier=False
                )
                machine.run_phase_scalar(Category.SAFETY_TEST, safety_costs)
            else:
                machine.run_phase(
                    [{Category.SCHEDULE: c} for c in reset_costs]
                    + [{Category.SAFETY_TEST: c} for c in safety_costs],
                    chunk_size=chunk_size,
                )
            reset_costs = []
            safety_costs = []

        # Phase III: execute safe sources, reset marks, route new tasks.
        safe.sort(key=SORT_KEY)
        worklist_cycles = cm.worklist_cost(machine.num_threads)
        exec_costs: list[dict[Category, float]] = []
        if reset_costs:
            if chunk_size == 1:
                machine.run_phase_scalar(
                    Category.SCHEDULE, reset_costs, barrier=False
                )
            else:
                exec_costs = [{Category.SCHEDULE: c} for c in reset_costs]
        committed: list[tuple[Task, int]] = []
        for task in safe:
            if recorder is not None:
                recorder.commit(task, round_no=rounds)
            new_items, exec_cycles = run_task(task)
            if pooled:
                pool.remove(window.pop(task))
            else:
                del window[task]
            cost = {
                Category.EXECUTE: exec_cycles + worklist_cycles,
                Category.SCHEDULE: mark_reset * len(task.rw_set),
            }
            for item in new_items:
                child = factory.make(item)
                if recorder is not None:
                    recorder.push(task, child)
                if mode == "delta":
                    # Bucket fusion: a child landing in the bucket being
                    # served joins the running window directly.
                    if backlog.bucket_of(level(child)) == current_bucket:
                        window[child] = (
                            pool.add(child, compute_rw_lists(child, interner))
                            if pooled
                            else None
                        )
                    else:
                        backlog.push(child)
                    cost[Category.SCHEDULE] += worklist_op
                elif mode == "multiqueue":
                    cost[Category.SCHEDULE] += pq_cost(
                        backlog.target_queue_len() + 1
                    )
                    backlog.push(child)
                elif child.sort_key <= window_max_key:
                    # Exact mode: IKDG's prefix condition, verbatim.
                    window[child] = (
                        pool.add(child, compute_rw_lists(child, interner))
                        if pooled
                        else None
                    )
                    cost[Category.SCHEDULE] += pq_cost(len(backlog))
                else:
                    backlog.push(child)
                    cost[Category.SCHEDULE] += pq_cost(len(backlog))
            committed.append((task, len(exec_costs)))
            exec_costs.append(cost)
            executed += 1
        assigned = machine.run_phase(exec_costs, chunk_size=chunk_size)
        attribute_commits(machine, recorder, committed, assigned)
        if not flat:
            marks_all.clear()
            marks_writer.clear()
        window_size = policy.next_size(
            window_size, len(safe), machine.num_threads
        )

    metrics: dict[str, Any] = {
        "tasks_created": factory.created,
        "final_window_size": window_size,
        "mean_round_size": sum(round_sizes) / len(round_sizes) if round_sizes else 0,
        "relaxed_mode": mode,
        "relaxation": relaxation,
        "delta": delta,
    }
    if mode == "delta":
        metrics["buckets_served"] = buckets_served
        metrics["lazy_skips"] = backlog.lazy_skips
    if pooled:
        metrics["flat_pool_numeric"] = pool.numeric
    return LoopResult(
        algorithm=algorithm.name,
        executor="relaxed",
        machine=machine,
        executed=executed,
        rounds=rounds,
        metrics=metrics,
        config=cfg,
    )
