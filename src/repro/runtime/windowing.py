"""Windowing policies (§3.6.1).

Rather than build the KDG over every pending task, executors may restrict it
to a *priority prefix* — the window.  The window grows adaptively when
threads lack work.  Level-by-level execution is the degenerate windowing
strategy whose window is exactly one priority level.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AdaptiveWindow:
    """Grow-on-starvation window sizing.

    A round that commits fewer than ``target_per_thread × threads`` tasks
    indicates starvation, so the next window doubles (up to ``max_size``).
    The window never shrinks: rw-set marking costs grow only linearly with
    window size, while starvation serializes the whole round.
    """

    initial: int = 64
    max_size: int = 1 << 22
    target_per_thread: int = 4
    growth: float = 2.0

    def __post_init__(self) -> None:
        if self.initial < 1:
            raise ValueError("initial window must be >= 1")
        if self.growth <= 1.0:
            raise ValueError("growth factor must exceed 1")

    def first_size(self, num_threads: int) -> int:
        """Initial window: at least ``target_per_thread × threads`` tasks.

        Starting below the round's own starvation threshold
        (``target_per_thread × threads``, see :meth:`next_size`) guarantees
        the first rounds are starved and merely ramp the window up; sizing
        the first window to the threshold directly skips that warm-up.
        """
        return min(
            self.max_size, max(self.initial, self.target_per_thread * num_threads)
        )

    def next_size(self, current: int, committed: int, num_threads: int) -> int:
        if committed < self.target_per_thread * num_threads:
            return min(self.max_size, int(current * self.growth))
        return current
