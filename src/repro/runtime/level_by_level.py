"""Level-by-level (priority-level) executor (§2.3, §3.6.1, Figure 14).

All tasks whose priority equals the current global minimum form a level and
are executed before the clock advances.  Within a level, tasks may still
conflict (share rw-set locations), so each level runs marking sub-rounds —
mark owners execute, losers retry — exactly the IKDG with a one-level
window.  Soundness requires the algorithm to be *monotonic* (children never
have earlier priority than their level) and every earliest-priority source
to be safe, which the executor checks.

The executor records the statistics of Figure 14: the number of priority
levels (a critical-path measure) and the average number of tasks per level
(a parallelism measure).
"""

from __future__ import annotations

from ..core.algorithm import OrderedAlgorithm
from ..core.task import SORT_KEY, Task
from ..galois.worklist import OrderedWorklist
from ..machine import Category, SimMachine
from .base import LoopResult, RunConfig, attribute_commits, bind_execute_task, coerce_config


def run_level_by_level(
    algorithm: OrderedAlgorithm,
    machine: SimMachine | None = None,
    config: RunConfig | None = None,
    *,
    session=None,
    **legacy,
) -> LoopResult:
    """Run ``algorithm`` level by level, recording level statistics.

    ``config`` is a :class:`~repro.runtime.base.RunConfig`; the legacy
    keyword form still works through a deprecation shim.
    ``recorder`` is an optional :class:`repro.oracle.TraceRecorder`.
    ``sanitize=True`` diffs each body's accesses against its declared
    rw-set at commit time (observation only).  ``engine="flat"`` runs each
    level's marking sub-rounds as vectorized kernels over interned location
    ids (:mod:`repro.core.flat`), bit-identical to the dict engine.
    ``backend="mp"`` (or a shared
    :class:`~repro.runtime.mp_backend.MPMarkBackend`) runs the pooled
    sub-round marking on real worker processes over shared memory; it
    requires ``engine="flat"`` and degrades to a validated no-op for
    algorithms without structure-based rw-sets.

    ``session`` is a live :class:`~repro.runtime.session.SessionState` —
    the run draws its tasks from the session's pending batch and reuses the
    session's persistent factory, interner, buffers and round pool (the
    repair path of :class:`~repro.runtime.session.KineticSession`).
    """
    cfg = coerce_config("level-by-level", config, legacy)
    checked = cfg.checked
    recorder = cfg.recorder
    sanitize = cfg.sanitize
    engine = cfg.engine
    backend = cfg.backend
    workers = cfg.workers
    if machine is None:
        machine = SimMachine(1)
    if not algorithm.properties.monotonic:
        raise ValueError(
            f"{algorithm.name}: level-by-level execution requires monotonicity"
        )
    mp_backend = None
    owns_backend = False
    if backend is not None and backend != "inline":
        if session is not None:
            raise ValueError(
                "level-by-level: backend='mp' is not supported inside a "
                "KineticSession (worker pools cannot adopt a session's live "
                "round pool)"
            )
        from .mp_backend import resolve_backend

        mp_backend, owns_backend = resolve_backend(
            backend, engine, workers, "level-by-level"
        )
    flat = engine == "flat"
    pooled = False
    if flat:
        from ..core.flat import (
            LocationInterner,
            MarkBuffers,
            RoundPool,
            mark_round,
            pooled_mark_round,
        )

        if session is not None:
            interner = session.interner
            buffers = session.buffers
        else:
            interner = LocationInterner()
            buffers = MarkBuffers()
        compute_rw_lists = algorithm.compute_rw_lists
        # Structure-based rw-sets never go stale, so a task entering a
        # level's sub-rounds registers with the round pool once (losers keep
        # their slot across retries; winners release it at commit).  The
        # pool's live set therefore always equals the current batch, which
        # is exactly :func:`pooled_mark_round`'s contract.
        pooled = algorithm.properties.structure_based_rw_sets
        if pooled:
            if mp_backend is not None:
                pool = mp_backend.new_pool()
                mark_pooled = mp_backend.mark_round
            elif session is not None:
                pool = session.round_pool()
                mark_pooled = pooled_mark_round
            else:
                pool = RoundPool()
                mark_pooled = pooled_mark_round
            slot_of: dict[Task, int] = {}
    cm = machine.cost_model
    if session is not None:
        factory = session.factory
        initial_tasks = session.take_batch()
    else:
        factory = algorithm.task_factory()
        initial_tasks = factory.make_all(algorithm.initial_items)
    worklist: OrderedWorklist[Task] = OrderedWorklist(SORT_KEY, initial_tasks)
    machine.run_phase_scalar(
        Category.SCHEDULE, [cm.pq_cost(len(worklist))] * len(worklist)
    )

    sanitizer = None
    if sanitize:
        from ..analysis.sanitizer import AccessSanitizer

        sanitizer = AccessSanitizer(algorithm, phase="level-by-level/execute")

    executed = 0
    num_levels = 0
    sub_rounds = 0
    tasks_per_level: list[int] = []
    # Hot-loop constants, bound once.
    run_task = bind_execute_task(algorithm, machine, checked, sanitizer=sanitizer)
    compute_rw_set = algorithm.compute_rw_set
    rw_visit = cm.rw_visit
    mark_cas = cm.mark_cas
    mark_reset = cm.mark_reset
    pq_cost = cm.pq_cost
    worklist_cycles = cm.worklist_cost(machine.num_threads)

    try:
        while worklist:
            # Gather the current priority level (its key strips tie-breaks).
            level_key = algorithm.level(worklist.peek())
            level_tasks: list[Task] = []
            while worklist and algorithm.level(worklist.peek()) == level_key:
                level_tasks.append(worklist.pop())
            num_levels += 1
            level_count = 0

            while level_tasks:
                sub_rounds += 1
                if sanitizer is not None:
                    sanitizer.round_no = sub_rounds
                # Marking sub-round: owners of all their marks execute
                # (readers only need no earlier writer — same scheme as the
                # IKDG).
                winners = []
                losers = []
                if flat:
                    if pooled:
                        # Register batch newcomers (level entrants and
                        # in-level children); losers already hold slots.
                        newcomers = [t for t in level_tasks if t not in slot_of]
                        if newcomers:
                            caches = [
                                t.flat_cache
                                if t.flat_cache is not None
                                else compute_rw_lists(t, interner)
                                for t in newcomers
                            ]
                            slot_of.update(
                                zip(newcomers, pool.add_batch(newcomers, caches))
                            )
                        slots = [slot_of[t] for t in level_tasks]
                        marked = mark_pooled(
                            pool, level_tasks, slots, buffers, rw_visit, mark_cas
                        )
                    else:
                        caches = [
                            compute_rw_lists(task, interner)
                            for task in level_tasks
                        ]
                        marked = mark_round(
                            level_tasks, caches, buffers, rw_visit, mark_cas
                        )
                    machine.run_phase_scalar(Category.SCHEDULE, marked.mark_costs)
                    owner = marked.owner
                    winners = [t for t, o in zip(level_tasks, owner) if o]
                    losers = [t for t, o in zip(level_tasks, owner) if not o]
                else:
                    marks_all: dict[object, Task] = {}
                    marks_writer: dict[object, Task] = {}
                    mark_costs: list[float] = []
                    for task in level_tasks:
                        rw = compute_rw_set(task)
                        key = task.sort_key
                        cas = 0
                        write_set = task.write_set
                        for loc in rw:
                            holder = marks_all.get(loc)
                            if holder is None or key < holder.sort_key:
                                marks_all[loc] = task
                            cas += 1
                            if loc in write_set:
                                holder = marks_writer.get(loc)
                                if holder is None or key < holder.sort_key:
                                    marks_writer[loc] = task
                                cas += 1
                        mark_costs.append(
                            rw_visit * max(1, len(rw)) + mark_cas * cas
                        )
                    machine.run_phase_scalar(Category.SCHEDULE, mark_costs)

                    def is_mark_owner(task: Task) -> bool:
                        key = task.sort_key
                        write_set = task.write_set
                        for loc in task.rw_set:
                            if loc in write_set:
                                if marks_all[loc] is not task:
                                    return False
                            else:
                                writer = marks_writer.get(loc)
                                if writer is not None and writer.sort_key < key:
                                    return False
                        return True

                    for t in level_tasks:
                        (winners if is_mark_owner(t) else losers).append(t)
                winners.sort(key=SORT_KEY)
                exec_costs = []
                committed: list[tuple[Task, int]] = []
                next_batch: list[Task] = list(losers)
                for task in winners:
                    if recorder is not None:
                        recorder.commit(task, round_no=sub_rounds)
                    new_items, exec_cycles = run_task(task)
                    if pooled:
                        pool.remove(slot_of.pop(task))
                    cost = {
                        Category.EXECUTE: exec_cycles + worklist_cycles,
                        Category.SCHEDULE: mark_reset * len(task.rw_set),
                    }
                    for item in new_items:
                        child = factory.make(item)
                        if recorder is not None:
                            recorder.push(task, child)
                        child_level = algorithm.level(child)
                        if child_level < level_key:
                            raise ValueError(
                                f"{algorithm.name}: monotonicity violated — "
                                f"child level {child_level!r} precedes level "
                                f"{level_key!r}"
                            )
                        if child_level == level_key:
                            next_batch.append(child)
                        else:
                            worklist.push(child)
                        cost[Category.SCHEDULE] += pq_cost(len(worklist))
                    committed.append((task, len(exec_costs)))
                    exec_costs.append(cost)
                    executed += 1
                    level_count += 1
                assigned = machine.run_phase(exec_costs)
                attribute_commits(machine, recorder, committed, assigned)
                if not flat:  # flat mark buffers reset themselves sparsely
                    marks_all.clear()
                    marks_writer.clear()
                level_tasks = next_batch
            tasks_per_level.append(level_count)

        mp_metrics = {}
        if mp_backend is not None:
            machine.wall_stats = mp_backend.wall_stats()
            mp_metrics["mp"] = machine.wall_stats.summary()
            mp_metrics["mp_workers"] = mp_backend.workers
        if pooled:
            # True iff every admitted priority rank-encoded, i.e. the
            # vectorized/mp kernels were eligible for the whole run.
            mp_metrics["flat_pool_numeric"] = pool.numeric
    finally:
        if owns_backend:
            mp_backend.close()

    avg_tasks = executed / num_levels if num_levels else 0.0
    return LoopResult(
        algorithm=algorithm.name,
        executor="level-by-level",
        machine=machine,
        executed=executed,
        rounds=sub_rounds,
        metrics={
            "num_levels": num_levels,
            "avg_tasks_per_level": avg_tasks,
            "max_tasks_per_level": max(tasks_per_level) if tasks_per_level else 0,
            "tasks_created": factory.created,
            **mp_metrics,
        },
        config=cfg,
    )
