"""The implicit KDG executor (IKDG, §3.5) with adaptive windowing.

IKDG never materializes the task graph.  Each round, over a priority-prefix
window of pending tasks:

* **Phase I** — every task computes its rw-set and priority-marks each of
  its locations with an atomic min (CAS loop): the location ends up holding
  the earliest task that touched it.
* **Phase II** — a task owning *all* of its marks has precedence over every
  overlapping task, hence is a source; the safe-source test filters sources.
* **Phase III** — safe sources execute, marks are reset, new tasks enter the
  window (if their priority falls inside it — the prefix condition) or the
  backlog.

For stable-source algorithms phases II and III fuse (one barrier less,
§3.6.3).  This executor is the runtime's default when no properties are
declared, and the one the paper selects for MST, Billiards, BFS and LU.
"""

from __future__ import annotations

from ..core.algorithm import OrderedAlgorithm, SourceView
from ..core.kdg import LivenessViolation
from ..core.task import SORT_KEY, Task
from ..galois.bucketed import BucketedWorklist
from ..galois.worklist import OrderedWorklist
from ..machine import Category, SimMachine
from .base import LoopResult, RunConfig, attribute_commits, bind_execute_task, coerce_config
from .windowing import AdaptiveWindow


def run_ikdg(
    algorithm: OrderedAlgorithm,
    machine: SimMachine | None = None,
    config: RunConfig | None = None,
    *,
    session=None,
    **legacy,
) -> LoopResult:
    """Run ``algorithm`` under the implicit (marking-based) KDG executor.

    ``config`` is a :class:`~repro.runtime.base.RunConfig`; the legacy
    keyword form still works through a deprecation shim.
    ``level_windows=True`` selects the level-by-level windowing strategy of
    §3.6.1 (used for BFS): each window is exactly the tasks of the earliest
    priority level, as given by the algorithm's ``level_of``.
    ``chunk_size`` is the paper's §3.7 scheduling hint: work items are
    handed to threads in chunks to amortize worklist traffic.
    ``recorder`` is an optional :class:`repro.oracle.TraceRecorder`.
    ``sanitize=True`` diffs each body's accesses against its declared
    rw-set at commit time (observation only).  ``engine="flat"`` runs
    phases I/II as vectorized kernels over interned location ids
    (:mod:`repro.core.flat`); schedules and charged cycles are identical to
    the dict engine.  ``backend="mp"`` (or an
    :class:`~repro.runtime.mp_backend.MPMarkBackend` instance, shared
    across runs) additionally executes the pooled mark rounds on
    ``workers`` real processes over shared-memory arrays — results stay
    bit-identical; only host wall-clock changes.  It requires
    ``engine="flat"``; on algorithms without structure-based rw-sets the
    marking is per-round list-based and the backend is a validated no-op.

    ``session`` is a live :class:`~repro.runtime.session.SessionState`: the
    run then draws its initial tasks from the session's pending batch and
    reuses the session's persistent task factory, interner, mark buffers
    and round pool instead of building fresh ones — the repair path of a
    :class:`~repro.runtime.session.KineticSession`.  The fresh-run path is
    untouched; per-task charging is identical either way.
    """
    cfg = coerce_config("ikdg", config, legacy)
    checked = cfg.checked
    window_policy = cfg.window_policy
    level_windows = cfg.level_windows
    chunk_size = cfg.chunk_size
    recorder = cfg.recorder
    sanitize = cfg.sanitize
    engine = cfg.engine
    backend = cfg.backend
    workers = cfg.workers
    if machine is None:
        machine = SimMachine(1)
    mp_backend = None
    owns_backend = False
    if backend is not None and backend != "inline":
        if session is not None:
            raise ValueError(
                "ikdg: backend='mp' is not supported inside a KineticSession "
                "(worker pools cannot adopt a session's live round pool)"
            )
        from .mp_backend import resolve_backend

        mp_backend, owns_backend = resolve_backend(backend, engine, workers, "ikdg")
    flat = engine == "flat"
    pooled = False
    if flat:
        from ..core.flat import (
            LocationInterner,
            MarkBuffers,
            RoundPool,
            mark_round,
            pooled_mark_round,
        )

        if session is not None:
            interner = session.interner
            buffers = session.buffers
        else:
            interner = LocationInterner()
            buffers = MarkBuffers()
        compute_rw_lists = algorithm.compute_rw_lists
        # With structure-based rw-sets a task's flat-cache entry, once
        # built, stays valid for the whole run (nothing ever invalidates
        # it), so the task is registered with the round pool when it
        # *enters the window* — its pool slot is its window value — and
        # per-round prep is two C list() calls plus whole-window numpy
        # gathers.  Kinetic algorithms recompute entries every round via
        # the list-based kernel instead (the mp backend only accelerates
        # pooled rounds, so it degrades to a no-op for them).
        pooled = algorithm.properties.structure_based_rw_sets
        if pooled:
            if mp_backend is not None:
                pool = mp_backend.new_pool()
                mark_pooled = mp_backend.mark_round
            elif session is not None:
                pool = session.round_pool()
                mark_pooled = pooled_mark_round
            else:
                pool = RoundPool()
                mark_pooled = pooled_mark_round
    cm = machine.cost_model
    props = algorithm.properties
    policy = window_policy if window_policy is not None else AdaptiveWindow()

    if session is not None:
        factory = session.factory
        initial_tasks = session.take_batch()
    else:
        factory = algorithm.task_factory()
        initial_tasks = factory.make_all(algorithm.initial_items)
    if level_windows:
        # OBIM-style bucketed worklist: O(1) transfers per level.
        backlog = BucketedWorklist(algorithm.level, initial_tasks)
        machine.run_phase_scalar(
            Category.SCHEDULE, [cm.worklist_op] * len(backlog)
        )
    else:
        backlog = OrderedWorklist(SORT_KEY, initial_tasks)
        machine.run_phase_scalar(
            Category.SCHEDULE, [cm.pq_cost(len(backlog))] * len(backlog)
        )
    window: dict[Task, None] = {}
    window_size = policy.first_size(machine.num_threads)
    fuse_test_with_execute = props.stable_source

    sanitizer = None
    if sanitize:
        from ..analysis.sanitizer import AccessSanitizer

        sanitizer = AccessSanitizer(algorithm, phase="ikdg/phase-III")

    executed = 0
    rounds = 0
    round_sizes: list[int] = []
    # Hot-loop constants, bound once: these run per task per round.
    run_task = bind_execute_task(algorithm, machine, checked, sanitizer=sanitizer)
    compute_rw_set = algorithm.compute_rw_set
    rw_visit = cm.rw_visit
    mark_cas = cm.mark_cas
    mark_reset = cm.mark_reset
    pq_cost = cm.pq_cost

    try:
        while window or backlog:
            rounds += 1
            if sanitizer is not None:
                sanitizer.round_no = rounds
            # Refill the window from the backlog (a priority prefix).
            refill_costs: list[float] = []
            if level_windows:
                # One full priority level per window (§3.6.1).
                current_level = None
                if window:
                    current_level = min(algorithm.level(t) for t in window)
                if backlog and (
                    current_level is None or backlog.current_level() <= current_level
                ):
                    _, level_tasks = backlog.pop_level()
                    if pooled:
                        caches = [
                            compute_rw_lists(task, interner) for task in level_tasks
                        ]
                        for task, slot in zip(
                            level_tasks, pool.add_batch(level_tasks, caches)
                        ):
                            window[task] = slot
                            refill_costs.append(cm.worklist_op)
                    else:
                        for task in level_tasks:
                            window[task] = None
                            refill_costs.append(cm.worklist_op)
            elif pooled:
                batch: list = []
                while len(window) + len(batch) < window_size and backlog:
                    batch.append(backlog.pop())
                    refill_costs.append(pq_cost(len(backlog)))
                if batch:
                    caches = [compute_rw_lists(task, interner) for task in batch]
                    for task, slot in zip(batch, pool.add_batch(batch, caches)):
                        window[task] = slot
            else:
                while len(window) < window_size and backlog:
                    task = backlog.pop()
                    window[task] = None
                    refill_costs.append(pq_cost(len(backlog)))
            if refill_costs:
                machine.run_phase_scalar(
                    Category.SCHEDULE, refill_costs, barrier=False
                )
            if not window:
                # A healthy refill never leaves the window empty while work is
                # pending; reaching this means a window policy returned a
                # non-positive size or ``level_of`` misclassified every task.
                raise LivenessViolation(
                    f"{algorithm.name}: IKDG round {rounds} produced an empty "
                    f"window with {len(backlog)} backlog task(s) pending "
                    f"(window_size={window_size}, level_windows={level_windows})"
                )
            window_max_key = max(task.sort_key for task in window)
            round_sizes.append(len(window))

            # Phase I: compute rw-sets and priority-mark every location.  Two
            # mark tables implement the read/write distinction: a writer must
            # be earliest among *all* touchers of the location, a reader only
            # needs no earlier *writer* (read-read sharing does not conflict).
            # Phase II: mark owners are sources; apply the safe-source test.
            sources = []
            reset_costs: list[float] = []
            safety_costs: list[float] = []
            if flat:
                window_tasks = list(window)
                if pooled:
                    # Entries were pooled when each task entered the window.
                    marked = mark_pooled(
                        pool, window_tasks, list(window.values()),
                        buffers, rw_visit, mark_cas,
                    )
                else:
                    caches = [
                        compute_rw_lists(task, interner) for task in window_tasks
                    ]
                    marked = mark_round(
                        window_tasks, caches, buffers, rw_visit, mark_cas
                    )
                machine.run_phase_scalar(
                    Category.SCHEDULE, marked.mark_costs, chunk_size=chunk_size
                )
                min_task = window_tasks[marked.min_index]
                owner = marked.owner
                reset_costs = [mark_reset * n for n in marked.lens]
                sources = [t for t, o in zip(window_tasks, owner) if o]
            else:
                marks_all: dict[object, Task] = {}
                marks_writer: dict[object, Task] = {}
                mark_costs: list[float] = []
                min_task: Task | None = None
                min_key = None
                for task in window:
                    rw = compute_rw_set(task)
                    key = task.sort_key
                    if min_key is None or key < min_key:
                        min_task, min_key = task, key
                    cas = 0
                    write_set = task.write_set
                    for loc in rw:
                        holder = marks_all.get(loc)
                        if holder is None or key < holder.sort_key:
                            marks_all[loc] = task
                        cas += 1
                        if loc in write_set:
                            holder = marks_writer.get(loc)
                            if holder is None or key < holder.sort_key:
                                marks_writer[loc] = task
                            cas += 1
                    mark_costs.append(rw_visit * max(1, len(rw)) + mark_cas * cas)
                machine.run_phase_scalar(
                    Category.SCHEDULE, mark_costs, chunk_size=chunk_size
                )

                def is_mark_owner(task: Task) -> bool:
                    key = task.sort_key
                    write_set = task.write_set
                    for loc in task.rw_set:
                        if loc in write_set:
                            if marks_all[loc] is not task:
                                return False
                        else:
                            writer = marks_writer.get(loc)
                            if writer is not None and writer.sort_key < key:
                                return False
                    return True

                for task in window:
                    reset_costs.append(mark_reset * len(task.rw_set))
                    if is_mark_owner(task):
                        sources.append(task)
            safe: list[Task]
            if props.stable_source:
                safe = sources
            else:
                view = SourceView(sources, min_task.priority if min_task else None)
                test_cost = cm.safe_test_base + algorithm.safe_test_work
                safe = []
                for task in sources:
                    safety_costs.append(test_cost)
                    if algorithm.is_safe(task, view):
                        safe.append(task)
            if not safe:
                raise LivenessViolation(
                    f"{algorithm.name}: IKDG round with {len(window)} window "
                    f"tasks and {len(sources)} sources produced no safe source"
                )
            # Reset/safety charges go out as scalar phases: the greedy
            # scheduler is memoryless given the thread clocks, so consecutive
            # unbarriered phases assign and charge exactly like one phase over
            # the concatenated items — minus one dict per item.  Chunked runs
            # keep the one-phase form: a chunk may span the
            # reset/safety/commit boundary, which a split would realign.
            if not fuse_test_with_execute:
                if chunk_size == 1:
                    machine.run_phase_scalar(
                        Category.SCHEDULE, reset_costs, barrier=False
                    )
                    machine.run_phase_scalar(Category.SAFETY_TEST, safety_costs)
                else:
                    machine.run_phase(
                        [{Category.SCHEDULE: c} for c in reset_costs]
                        + [{Category.SAFETY_TEST: c} for c in safety_costs],
                        chunk_size=chunk_size,
                    )
                reset_costs = []
                safety_costs = []

            # Phase III: execute safe sources, reset marks, route new tasks.
            # In the fused (stable-source) case the window resets head this
            # phase's cost list; with chunk_size == 1 they go out as an
            # unbarriered scalar phase instead — same greedy assignment, same
            # single barrier (the execute phase's), minus one dict per item.
            safe.sort(key=SORT_KEY)
            worklist_cycles = cm.worklist_cost(machine.num_threads)
            exec_costs: list[dict[Category, float]] = []
            if reset_costs:
                if chunk_size == 1:
                    machine.run_phase_scalar(
                        Category.SCHEDULE, reset_costs, barrier=False
                    )
                else:
                    exec_costs = [{Category.SCHEDULE: c} for c in reset_costs]
            committed: list[tuple[Task, int]] = []  # (task, exec_costs index)
            for task in safe:
                if recorder is not None:
                    recorder.commit(task, round_no=rounds)
                new_items, exec_cycles = run_task(task)
                if pooled:
                    pool.remove(window.pop(task))
                else:
                    del window[task]
                cost = {
                    Category.EXECUTE: exec_cycles + worklist_cycles,
                    Category.SCHEDULE: mark_reset * len(task.rw_set),
                }
                for item in new_items:
                    child = factory.make(item)
                    if recorder is not None:
                        recorder.push(task, child)
                    # Prefix condition: a child earlier than the window's
                    # latest priority must be handled within the current
                    # window.
                    if level_windows:
                        if algorithm.level(child) == algorithm.level(task):
                            window[child] = (
                                pool.add(child, compute_rw_lists(child, interner))
                                if pooled
                                else None
                            )
                        else:
                            backlog.push(child)
                    elif child.sort_key <= window_max_key:
                        window[child] = (
                            pool.add(child, compute_rw_lists(child, interner))
                            if pooled
                            else None
                        )
                    else:
                        backlog.push(child)
                    cost[Category.SCHEDULE] += pq_cost(len(backlog))
                committed.append((task, len(exec_costs)))
                exec_costs.append(cost)
                executed += 1
            assigned = machine.run_phase(exec_costs, chunk_size=chunk_size)
            attribute_commits(machine, recorder, committed, assigned)
            if not flat:  # flat mark buffers reset themselves sparsely
                marks_all.clear()
                marks_writer.clear()
            window_size = policy.next_size(
                window_size, len(safe), machine.num_threads
            )

        mp_metrics = {}
        if mp_backend is not None:
            machine.wall_stats = mp_backend.wall_stats()
            mp_metrics["mp"] = machine.wall_stats.summary()
            mp_metrics["mp_workers"] = mp_backend.workers
        if pooled:
            # True iff every admitted priority rank-encoded, i.e. the
            # vectorized/mp kernels were eligible for the whole run.
            mp_metrics["flat_pool_numeric"] = pool.numeric
    finally:
        if owns_backend:
            mp_backend.close()

    return LoopResult(
        algorithm=algorithm.name,
        executor="ikdg",
        machine=machine,
        executed=executed,
        rounds=rounds,
        metrics={
            "tasks_created": factory.created,
            "final_window_size": window_size,
            "mean_round_size": sum(round_sizes) / len(round_sizes) if round_sizes else 0,
            **mp_metrics,
        },
        config=cfg,
    )
