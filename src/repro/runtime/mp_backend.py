"""Real-parallel mark phases over worker processes (``backend="mp"``).

Every engine so far simulates parallelism on one core.  This backend runs
the flat engine's bulk-synchronous Phase I/II — the grouped-min priority
marking of :func:`~repro.core.flat.pool.pooled_mark_round` — across a
persistent pool of worker processes, with all per-round state living in
``multiprocessing.shared_memory``-backed numpy arrays (allocated through
:class:`~repro.core.flat.shm.SharedArena`, which also backs the
:class:`~repro.core.flat.pool.RoundPool` the executor fills).  Only tiny
control messages cross the pipes; per-round data never gets pickled.

One mark round is three sharded phases separated by pipe barriers::

    parent: flush pool, rank-order the window, write ranked header arrays
            (h_starts/h_rl/h_wl/h_ends), broadcast ("round", ...)
    A  each worker k, over entry shard [k*total//W, (k+1)*total//W):
       rebuild its shard of the rank-ordered edge list from the headers
       (searchsorted over h_ends), then scatter per-shard min ranks into
       its OWN slab pair via the reversed-assignment trick (valid because
       entry ranks ascend within a shard)
    B  each worker k, over location range [k*n_locs//W, ...): overwrite
       the global mark tables with the elementwise min of all W slabs in
       fixed worker order — the range is fully rewritten every round, so
       the global tables never need resetting
    C  each worker k, over its entry shard again: ownership gather
       (all-marks test for writers, no-earlier-writer test for readers),
       per-shard failure counts into its own out_fail row, then sparse
       reset of its own slab; parent sums the rows and scatters
            owner[order] = (failures == 0)

Determinism and bit-identity with the single-process kernels need no
locks: shard boundaries are fixed functions of ``(total, W)``, integer
``min`` is commutative and exact, the slab reduce runs in fixed worker
order, and a sum of per-shard ``bincount`` rows equals the global
``bincount``.  The parent computes ``order``/``min_index``/``lens``/
``mark_costs`` with exactly the same float64 operations as
:func:`pooled_mark_round`, so traces, makespans and snapshots are
bit-identical (the cross-backend differential matrix enforces this).

Rounds below ``threshold`` entries (default: the vector cutoff) fall back
inline to :func:`pooled_mark_round` — identical results, no pipe turns.
Worker death never hangs the parent: barriers poll connection readiness
with liveness checks and a deadline, raise a structured
:class:`WorkerDied`, and tear the shared segments down (no leak, no
half-written state survives because failed rounds are never consumed).
"""

from __future__ import annotations

import multiprocessing as mp
import time
from multiprocessing.connection import wait as _conn_wait

import numpy as np

from ..core.flat.kernels import UNMARKED, VECTOR_CUTOFF, MarkResult
from ..core.flat.pool import RoundPool, pooled_mark_round
from ..core.flat.shm import SharedArena, attach_array
from ..machine.stats import WallPhaseStats

_I64 = np.int64

#: Segment tags a worker attaches (the pool's slot arrays stay parent-only:
#: the ranked header arrays are what workers index with).
_WORKER_TAGS = (
    "loc",
    "h_starts", "h_rl", "h_wl", "h_ends",
    "s_all", "s_writer",
    "g_all", "g_writer",
    "out_fail", "wstats",
)

#: float64 slots per worker in the shared wall-stats array.
_WSTATS_STRIDE = 8


class WorkerDied(RuntimeError):
    """A pool worker exited (or stopped responding) mid-protocol.

    Carries enough structure for callers to report and for tests to
    assert on; the backend is unusable afterwards (``close()`` already
    ran, all shared segments are unlinked).
    """

    def __init__(self, message, worker=None, exitcode=None, phase=None, round_no=None):
        super().__init__(message)
        self.worker = worker
        self.exitcode = exitcode
        self.phase = phase
        self.round_no = round_no


def shard_bounds(total: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous shard ``[lo, hi)`` per worker — a pure function of the
    inputs, so every process derives identical boundaries."""
    return [
        (k * total // workers, (k + 1) * total // workers)
        for k in range(workers)
    ]


# ----------------------------------------------------------------------
# Pure per-shard phase bodies (shared by the worker loop and the
# in-process reference used by the shard-boundary property tests).
# ----------------------------------------------------------------------
def _shard_edges(lo, hi, h_starts, h_rl, h_wl, h_ends, pool_loc, w):
    """Rebuild entries ``[lo, hi)`` of the rank-ordered edge list.

    Returns ``(loc, rank, wbit)`` — exactly the slice the single-process
    kernel's ``np.repeat`` edge list would hold at those indices.
    """
    idx = np.arange(lo, hi, dtype=_I64)
    rank = np.searchsorted(h_ends[:w], idx, side="right")
    offset = idx - (h_ends[rank] - h_rl[rank])
    loc = pool_loc[h_starts[rank] + offset]
    wbit = offset < h_wl[rank]
    return loc, rank, wbit


def _scatter_min_shard(slab_all, slab_writer, loc, rank, wbit):
    """Grouped min of ``rank`` by ``loc`` into a worker-private slab.

    Reversed assignment = min because ranks ascend within a shard (the
    same trick as the vector kernel, restricted to one shard).  Returns
    the writer locations for the Phase-C sparse reset.
    """
    slab_all[loc[::-1]] = rank[::-1]
    wloc = loc[wbit]
    if len(wloc):
        slab_writer[wloc[::-1]] = rank[wbit][::-1]
    return wloc


def _reduce_range(table, rows, lo, hi):
    """``table[lo:hi] = elementwise min over rows`` in fixed order.

    Fully overwrites the range (no read of the previous round's values),
    which is what lets the global tables skip resetting.
    """
    table[lo:hi] = rows[0][lo:hi]
    for row in rows[1:]:
        np.minimum(table[lo:hi], row[lo:hi], out=table[lo:hi])


def _shard_failures(g_all, g_writer, loc, rank, wbit, w):
    """Per-rank count of lost marks within one shard (int64 bincount)."""
    owner_entry = np.where(wbit, g_all[loc] == rank, g_writer[loc] >= rank)
    return np.bincount(rank[~owner_entry], minlength=w)


def simulate_sharded_round(
    pool: RoundPool,
    tasks: list,
    slots: list[int],
    rw_visit: float,
    mark_cas: float,
    entry_bounds: list[tuple[int, int]],
    loc_bounds: list[tuple[int, int]] | None = None,
) -> MarkResult:
    """Run the three mp phases sequentially in-process, with **arbitrary**
    shard boundaries.

    This is the executable statement of the shard-boundary property: for
    any partition of the entry range (and any partition of the location
    range), the result equals :func:`pooled_mark_round` bit for bit.  The
    hypothesis suite drives it with adversarial partitions; the live
    backend is this function with ``shard_bounds`` partitions and each
    loop iteration on its own process.
    """
    if not pool.numeric:
        raise ValueError("sharded marking requires a numeric pool")
    pool.flush()
    w = len(tasks)
    n_locs = max(1, pool.max_loc + 1)
    slots_arr = np.array(slots, dtype=_I64)
    lens_w = pool.lens[slots_arr]
    wlens_w = pool.wlens[slots_arr]
    order = pool.window_order(slots_arr)
    rl = lens_w[order]
    h_ends = np.cumsum(rl)
    h_starts = pool.starts[slots_arr][order]
    h_wl = wlens_w[order]

    shards = len(entry_bounds)
    slabs_all = np.full((shards, n_locs), UNMARKED, dtype=_I64)
    slabs_writer = np.full((shards, n_locs), UNMARKED, dtype=_I64)
    edges = []
    for k, (lo, hi) in enumerate(entry_bounds):
        loc, rank, wbit = _shard_edges(lo, hi, h_starts, rl, h_wl, h_ends, pool.loc, w)
        _scatter_min_shard(slabs_all[k], slabs_writer[k], loc, rank, wbit)
        edges.append((loc, rank, wbit))
    g_all = np.empty(n_locs, dtype=_I64)
    g_writer = np.empty(n_locs, dtype=_I64)
    for lo, hi in loc_bounds if loc_bounds is not None else shard_bounds(n_locs, shards):
        _reduce_range(g_all, slabs_all, lo, hi)
        _reduce_range(g_writer, slabs_writer, lo, hi)
    failing = np.zeros(w, dtype=_I64)
    for loc, rank, wbit in edges:
        failing += _shard_failures(g_all, g_writer, loc, rank, wbit, w)
    owner_arr = np.empty(w, dtype=np.bool_)
    owner_arr[order] = failing == 0
    mark_costs = (
        rw_visit * np.maximum(lens_w, 1) + mark_cas * (lens_w + wlens_w)
    ).tolist()
    return MarkResult(owner_arr.tolist(), lens_w.tolist(), mark_costs, int(order[0]))


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(index: int, workers: int, conn) -> None:
    """Pool worker: attach segments on layout messages, run A/B/C per round.

    Exits cleanly on ("stop",) or pipe EOF; any other failure propagates,
    printing a traceback and exiting nonzero so the parent's liveness
    check converts it into :class:`WorkerDied`.
    """
    segments: dict[str, tuple[str, object]] = {}
    arrays: dict[str, np.ndarray] = {}
    busy = [0.0, 0.0, 0.0]
    wait = 0.0
    rounds = 0

    def timed_recv():
        nonlocal wait
        t0 = time.perf_counter()
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            msg = ("stop",)
        wait += time.perf_counter() - t0
        return msg

    try:
        while True:
            msg = timed_recv()
            kind = msg[0]
            if kind == "stop":
                return
            if kind == "layout":
                _, version, layout = msg
                for tag, (name, dtype, length) in layout.items():
                    old = segments.get(tag)
                    if old is not None and old[0] == name:
                        continue
                    shm, arr = attach_array(name, dtype, length)
                    arrays[tag] = arr
                    segments[tag] = (name, shm)
                    if old is not None:
                        try:
                            old[1].close()
                        except BufferError:
                            pass
                conn.send(("ack", version))
                continue
            if kind != "round":
                raise RuntimeError(f"worker {index}: unexpected message {msg!r}")
            _, w, total, n_locs, cap_w, cap_locs = msg
            a_lo, a_hi = index * total // workers, (index + 1) * total // workers
            b_lo, b_hi = index * n_locs // workers, (index + 1) * n_locs // workers
            s_all, s_writer = arrays["s_all"], arrays["s_writer"]
            my_all = s_all[index * cap_locs : (index + 1) * cap_locs]
            my_writer = s_writer[index * cap_locs : (index + 1) * cap_locs]

            # Phase A: shard edge rebuild + private-slab min scatter.
            t0 = time.perf_counter()
            loc, rank, wbit = _shard_edges(
                a_lo, a_hi,
                arrays["h_starts"], arrays["h_rl"], arrays["h_wl"],
                arrays["h_ends"], arrays["loc"], w,
            )
            wloc = _scatter_min_shard(my_all, my_writer, loc, rank, wbit)
            busy[0] += time.perf_counter() - t0
            conn.send(("ack", "A"))
            if timed_recv()[0] != "go":
                return

            # Phase B: location-range min reduce over all slabs.
            t0 = time.perf_counter()
            rows_all = [
                s_all[k * cap_locs : (k + 1) * cap_locs] for k in range(workers)
            ]
            rows_writer = [
                s_writer[k * cap_locs : (k + 1) * cap_locs] for k in range(workers)
            ]
            _reduce_range(arrays["g_all"], rows_all, b_lo, b_hi)
            _reduce_range(arrays["g_writer"], rows_writer, b_lo, b_hi)
            busy[1] += time.perf_counter() - t0
            conn.send(("ack", "B"))
            if timed_recv()[0] != "go":
                return

            # Phase C: ownership gather, failure counts, own-slab reset.
            t0 = time.perf_counter()
            fail = _shard_failures(
                arrays["g_all"], arrays["g_writer"], loc, rank, wbit, w
            )
            arrays["out_fail"][index * cap_w : index * cap_w + w] = fail
            my_all[loc] = UNMARKED
            if len(wloc):
                my_writer[wloc] = UNMARKED
            busy[2] += time.perf_counter() - t0
            rounds += 1
            base = index * _WSTATS_STRIDE
            wstats = arrays["wstats"]
            wstats[base : base + 5] = (busy[0], busy[1], busy[2], wait, rounds)
            conn.send(("ack", "C"))
    finally:
        for _, shm in segments.values():
            try:
                shm.close()
            except BufferError:
                pass


# ----------------------------------------------------------------------
# Parent-side backend
# ----------------------------------------------------------------------
class MPMarkBackend:
    """Persistent worker pool running shared-memory mark rounds.

    Create once, hand to an executor via ``backend=<instance>`` (or let
    ``backend="mp"`` construct a run-scoped one), and :meth:`close` when
    done — or use it as a context manager.  Workers are spawned lazily on
    the first round that crosses ``threshold`` entries, so runs whose
    windows never get big enough pay nothing.  One live pool at a time:
    :meth:`new_pool` retargets the shared segments, invalidating the
    previous pool's backing (executors create one pool per run and runs
    are sequential, so reuse across a sweep is safe).
    """

    def __init__(
        self,
        workers: int = 2,
        threshold: int | None = None,
        barrier_timeout: float = 60.0,
        start_method: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.threshold = VECTOR_CUTOFF if threshold is None else threshold
        self.barrier_timeout = barrier_timeout
        self._start_method = start_method
        self._arena = SharedArena()
        self._procs: list = []
        self._conns: list = []
        self._conn_index: dict = {}
        self._started = False
        self._closed = False
        self._broken = False
        self._published = -1
        self._cap_w = 0
        self._cap_locs = 0
        self._round_no = 0
        self.mp_rounds = 0
        self.fallback_rounds = 0
        self._parent_seconds = 0.0

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "MPMarkBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def new_pool(self) -> RoundPool:
        """A :class:`RoundPool` whose arrays live in this backend's arena."""
        if self._closed:
            raise ValueError("new_pool() on a closed MPMarkBackend")
        return RoundPool(allocator=self._arena)

    def _ensure_started(self) -> None:
        if self._started:
            return
        methods = mp.get_all_start_methods()
        method = self._start_method or ("fork" if "fork" in methods else "spawn")
        ctx = mp.get_context(method)
        self._arena.zeros("wstats", self.workers * _WSTATS_STRIDE, np.float64)
        for k in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(k, self.workers, child_conn),
                daemon=True,
                name=f"kdg-mp-{k}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
            self._conn_index[parent_conn] = k
        self._started = True

    def _ensure_scratch(self, w: int, n_locs: int) -> None:
        arena = self._arena
        if w > self._cap_w or self._cap_w == 0:
            cap = max(2 * self._cap_w, w, 256)
            arena.empty("h_starts", cap, _I64)
            arena.empty("h_rl", cap, _I64)
            arena.empty("h_wl", cap, _I64)
            arena.empty("h_ends", cap, _I64)
            arena.zeros("out_fail", self.workers * cap, _I64)
            self._cap_w = cap
        if n_locs > self._cap_locs or self._cap_locs == 0:
            cap = max(2 * self._cap_locs, n_locs, 1024)
            # Global tables are fully overwritten per round; slabs must
            # start at the sentinel (sparse resets only ever restore it).
            arena.empty("g_all", cap, _I64)
            arena.empty("g_writer", cap, _I64)
            arena.full("s_all", self.workers * cap, _I64, UNMARKED)
            arena.full("s_writer", self.workers * cap, _I64, UNMARKED)
            self._cap_locs = cap

    def _fail(self, message, worker=None, exitcode=None, phase=None):
        self._broken = True
        error = WorkerDied(
            message, worker=worker, exitcode=exitcode,
            phase=phase, round_no=self._round_no,
        )
        self.close()
        raise error

    def _send_all(self, msg, phase: str) -> None:
        for k, conn in enumerate(self._conns):
            try:
                conn.send(msg)
            except (OSError, ValueError):
                exitcode = self._procs[k].exitcode
                self._fail(
                    f"mp backend worker {k} unreachable (exitcode {exitcode}) "
                    f"while sending {phase!r} in round {self._round_no}",
                    worker=k, exitcode=exitcode, phase=phase,
                )

    def _await_acks(self, phase: str) -> list:
        deadline = time.monotonic() + self.barrier_timeout
        pending = set(range(self.workers))
        acks = [None] * self.workers
        while pending:
            ready = _conn_wait(
                [self._conns[k] for k in pending], timeout=0.05
            )
            for conn in ready:
                k = self._conn_index[conn]
                try:
                    acks[k] = conn.recv()
                except (EOFError, OSError):
                    exitcode = self._procs[k].exitcode
                    self._fail(
                        f"mp backend worker {k} hung up (exitcode {exitcode}) "
                        f"during phase {phase!r} of round {self._round_no}",
                        worker=k, exitcode=exitcode, phase=phase,
                    )
                pending.discard(k)
            if not pending:
                break
            if not ready:
                for k in sorted(pending):
                    if not self._procs[k].is_alive():
                        exitcode = self._procs[k].exitcode
                        self._fail(
                            f"mp backend worker {k} died (exitcode {exitcode}) "
                            f"during phase {phase!r} of round {self._round_no}",
                            worker=k, exitcode=exitcode, phase=phase,
                        )
                if time.monotonic() > deadline:
                    self._fail(
                        f"mp backend timed out after {self.barrier_timeout:.1f}s "
                        f"waiting for phase {phase!r} acks from workers "
                        f"{sorted(pending)} in round {self._round_no} "
                        f"(possible barrier deadlock)",
                        phase=phase,
                    )
        return acks

    def _publish_layout(self) -> None:
        if self._published == self._arena.version:
            return
        layout = self._arena.layout(_WORKER_TAGS)
        self._send_all(("layout", self._arena.version, layout), "layout")
        self._await_acks("layout")
        self._published = self._arena.version

    # -- the round ------------------------------------------------------
    def mark_round(self, pool, tasks, slots, buffers, rw_visit, mark_cas):
        """Drop-in for :func:`pooled_mark_round`, dispatched to the pool.

        Small or non-numeric rounds run inline (bit-identical by the
        pool's own contract); everything else runs the three-phase
        sharded protocol.
        """
        if self._closed or self._broken:
            raise WorkerDied(
                "mp backend is closed (a worker died or close() already ran)",
                round_no=self._round_no,
            )
        if pool._alloc is not self._arena:
            raise ValueError(
                "pool was not created by this backend's new_pool(); its "
                "arrays are not in the shared arena"
            )
        total = pool.live_entries
        if not pool.numeric or len(tasks) < 1 or total < self.threshold:
            self.fallback_rounds += 1
            return pooled_mark_round(pool, tasks, slots, buffers, rw_visit, mark_cas)

        t_start = time.perf_counter()
        pool.flush()
        w = len(tasks)
        n_locs = pool.max_loc + 1
        self._ensure_started()
        self._ensure_scratch(w, n_locs)
        self._publish_layout()
        arena = self._arena

        # Parent prep: identical ops to pooled_mark_round's preamble.
        slots_arr = np.array(slots, dtype=_I64)
        lens_w = pool.lens[slots_arr]
        wlens_w = pool.wlens[slots_arr]
        order = pool.window_order(slots_arr)
        min_index = int(order[0])
        rl = lens_w[order]
        ends = np.cumsum(rl)
        arena.get("h_starts")[:w] = pool.starts[slots_arr][order]
        arena.get("h_rl")[:w] = rl
        arena.get("h_wl")[:w] = wlens_w[order]
        arena.get("h_ends")[:w] = ends

        self._round_no += 1
        self._send_all(
            ("round", w, int(total), int(n_locs), self._cap_w, self._cap_locs),
            "round",
        )
        self._await_acks("A")
        self._send_all(("go",), "A-release")
        self._await_acks("B")
        self._send_all(("go",), "B-release")
        self._await_acks("C")

        cap_w = self._cap_w
        fail_rows = arena.get("out_fail")[: self.workers * cap_w]
        failing = fail_rows.reshape(self.workers, cap_w)[:, :w].sum(axis=0)
        owner_arr = np.empty(w, dtype=np.bool_)
        owner_arr[order] = failing == 0
        mark_costs = (
            rw_visit * np.maximum(lens_w, 1) + mark_cas * (lens_w + wlens_w)
        ).tolist()
        self.mp_rounds += 1
        self._parent_seconds += time.perf_counter() - t_start
        return MarkResult(owner_arr.tolist(), lens_w.tolist(), mark_costs, min_index)

    # -- stats ----------------------------------------------------------
    def wall_stats(self) -> WallPhaseStats:
        """Snapshot of the per-worker wall-clock phase accounting."""
        stats = WallPhaseStats(self.workers)
        stats.mp_rounds = self.mp_rounds
        stats.fallback_rounds = self.fallback_rounds
        stats.parent_seconds = self._parent_seconds
        if self._started and not self._arena.closed:
            arr = self._arena.get("wstats")
            for k in range(self.workers):
                base = k * _WSTATS_STRIDE
                stats.record(k, "mark", float(arr[base]))
                stats.record(k, "reduce", float(arr[base + 1]))
                stats.record(k, "ownership", float(arr[base + 2]))
                stats.record(k, "wait", float(arr[base + 3]))
                stats.rounds[k] = int(arr[base + 4])
        return stats

    # -- shutdown -------------------------------------------------------
    def close(self) -> None:
        """Stop workers and unlink every shared segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._arena.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass


def resolve_backend(backend, engine: str, workers: int, executor: str):
    """Normalize an executor's ``backend`` argument.

    Returns ``(MPMarkBackend | None, owns)`` — ``owns`` marks a backend
    this run constructed and must close.  ``"inline"``/``None`` mean the
    single-process engines; ``"mp"`` or an :class:`MPMarkBackend` instance
    require ``engine="flat"`` (the dict engine has no shareable arrays).
    """
    if backend is None or backend == "inline":
        return None, False
    if isinstance(backend, MPMarkBackend) or backend == "mp":
        if engine != "flat":
            raise ValueError(
                f"{executor}: backend='mp' requires engine='flat' "
                f"(got engine={engine!r})"
            )
        if isinstance(backend, MPMarkBackend):
            return backend, False
        return MPMarkBackend(workers=workers), True
    raise ValueError(
        f"unknown backend {backend!r} (expected 'inline' or 'mp')"
    )
