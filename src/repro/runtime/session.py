"""Streaming KDG sessions: first-class incremental updates (§3.4 lifted).

A :class:`KineticSession` holds one app's executor state *live* across
calls: the app state, the task factory (so task ids stay globally unique),
and — under the flat engine — the location interner, mark buffers and
round pool.  Callers feed it batches of typed input mutations
(:mod:`repro.core.mutations`); the session maps them through the app's
:class:`~repro.core.mutations.MutationAdapter` into repair seeds and
re-executes only the affected frontier under the adapter's executor,
instead of rebuilding the kinetic dependence graph and re-running the
whole computation.  Each batch returns a :class:`RepairResult` with the
work actually redone (tasks re-run, locations touched, simulated repair
cycles) and, on request, the cycles a cold rebuild of the mutated input
would have cost.

Correctness bar: after every batch the session's app state must be
bit-identical to a cold run over the mutated input
(``adapter.fork_cold()``) — the differential harness in
:mod:`repro.oracle.stream` checks exactly that, per batch, for every
bundled streaming app.

Sessions are single-process by construction: the mp mark backend is
rejected up front because worker pools cannot adopt a session's live
round pool (slot state lives in the parent's arrays).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from ..machine import SimMachine
from .base import LoopResult, RunConfig
from .ikdg import run_ikdg
from .level_by_level import run_level_by_level

#: Executors a MutationAdapter may select for repair runs.  kdg-rna and
#: speculation build per-run global structures (the explicit KDG, a
#: recorded trace) that do not survive incremental task injection.
_SESSION_EXECUTORS = {
    "ikdg": run_ikdg,
    "level-by-level": run_level_by_level,
}


class SessionState:
    """The executor state a session keeps warm between batches.

    Executors running with ``session=`` draw their initial tasks from
    :meth:`take_batch` and reuse :attr:`factory`, :attr:`interner`,
    :attr:`buffers` and :meth:`round_pool` instead of building fresh
    ones.  Flat-engine members are lazy: dict-engine sessions never
    import numpy-backed structures.
    """

    def __init__(self, factory):
        self.factory = factory
        self._staged: list = []
        self._interner = None
        self._buffers = None
        self._pool = None

    @property
    def interner(self):
        if self._interner is None:
            from ..core.flat import LocationInterner

            self._interner = LocationInterner()
        return self._interner

    @property
    def buffers(self):
        if self._buffers is None:
            from ..core.flat import MarkBuffers

            self._buffers = MarkBuffers()
        return self._buffers

    def round_pool(self):
        if self._pool is None:
            from ..core.flat import RoundPool

            self._pool = RoundPool()
        return self._pool

    def stage(self, tasks: list) -> None:
        """Queue tasks for the next executor invocation."""
        self._staged.extend(tasks)

    def take_batch(self) -> list:
        """Hand the staged tasks to the executor (cleared on take)."""
        staged, self._staged = self._staged, []
        return staged

    def release(self) -> None:
        """Drop pooled resources; safe to call repeatedly or mid-failure."""
        self._staged = []
        if self._pool is not None:
            self._pool.flush()
            self._pool = None
        self._buffers = None
        self._interner = None


@dataclass
class RepairResult:
    """What one mutation batch cost the session."""

    batch_size: int
    #: Tasks committed by the repair runs of this batch.
    tasks_rerun: int
    #: Distinct locations in the committed tasks' rw-sets.
    locations_touched: int
    #: Simulated cycles the repair runs added to the session machine.
    repair_cycles: float
    #: Simulated cycles a cold run over the mutated input costs
    #: (``None`` unless the batch was applied with ``measure_rebuild``).
    rebuild_cycles: float | None
    #: Executor rounds across the batch's repair runs.
    rounds: int
    #: The committed schedule of the repair runs (``None`` for a no-op).
    trace: Any = None

    @property
    def speedup(self) -> float | None:
        """Rebuild-over-repair cycle ratio (> 1 means repairing won)."""
        if self.rebuild_cycles is None or self.repair_cycles <= 0:
            return None
        return self.rebuild_cycles / self.repair_cycles


class KineticSession:
    """A live, incrementally-updatable run of one streaming app.

    ``spec`` is an :class:`~repro.apps.common.AppSpec` with a
    ``stream_adapter``; ``state`` defaults to the app's small input.  The
    constructor *bootstraps*: it runs the algorithm to completion once
    through the session path, so the app state is converged and the warm
    executor structures (factory, interner, pool) are populated before
    the first batch arrives.

    Use as a context manager, or call :meth:`close` — idempotent, and
    required to release flat-pool resources even after a failed batch.
    """

    def __init__(
        self,
        spec,
        state: Any = None,
        config: RunConfig | None = None,
        machine: SimMachine | None = None,
        threads: int = 3,
    ):
        if getattr(spec, "stream_adapter", None) is None:
            raise ValueError(f"{spec.name}: app has no streaming adapter")
        cfg = config if config is not None else RunConfig()
        if cfg.backend is not None and cfg.backend != "inline":
            raise ValueError(
                "KineticSession: backend='mp' is not supported (worker "
                "pools cannot adopt a session's live round pool); run "
                "one-shot executors for mp, or pass backend=None"
            )
        self.spec = spec
        self.state = state if state is not None else spec.make_small()
        self.adapter = spec.stream_adapter(self.state)
        if self.adapter.executor not in _SESSION_EXECUTORS:
            raise ValueError(
                f"{spec.name}: adapter requests executor "
                f"{self.adapter.executor!r}; sessions support "
                f"{sorted(_SESSION_EXECUTORS)}"
            )
        self._run = _SESSION_EXECUTORS[self.adapter.executor]
        cfg = dataclasses.replace(
            cfg, level_windows=cfg.level_windows or self.adapter.level_windows
        )
        cfg.validate_for(self.adapter.executor)
        self.config = cfg
        self.machine = machine if machine is not None else SimMachine(threads)
        self._closed = False
        self._poisoned = False
        self._watermark: Any = None
        self.batches_applied = 0

        algorithm = self.adapter.make_algorithm()
        self._session_state = SessionState(algorithm.task_factory())
        from ..oracle.trace import TraceRecorder

        self._recorder_cls = TraceRecorder
        recorder = TraceRecorder()
        self._session_state.stage(
            self._session_state.factory.make_all(algorithm.initial_items)
        )
        self.bootstrap: LoopResult = self._run(
            algorithm,
            self.machine,
            dataclasses.replace(cfg, recorder=recorder),
            session=self._session_state,
        )
        self._advance_watermark(recorder)
        self.bootstrap_cycles = self.machine.elapsed_cycles()

    @classmethod
    def open(
        cls,
        app: str,
        state: Any = None,
        config: RunConfig | None = None,
        machine: SimMachine | None = None,
        threads: int = 3,
    ) -> "KineticSession":
        """Open a session on a registered app by name."""
        from ..apps import APPS

        if app not in APPS:
            raise ValueError(f"unknown app {app!r} (have {sorted(APPS)})")
        return cls(APPS[app], state, config, machine, threads)

    # ------------------------------------------------------------------
    def apply(self, mutations, measure_rebuild: bool = False) -> RepairResult:
        """Apply one batch of mutations; repair; report the work done.

        Validation is transactional: every mutation is type- and
        watermark-checked *before* any is applied, so a rejected batch
        leaves the session untouched.  A failure mid-application poisons
        the session (state may be partially mutated); only :meth:`close`
        is valid afterwards.
        """
        if self._closed:
            raise RuntimeError("KineticSession is closed")
        if self._poisoned:
            raise RuntimeError(
                "KineticSession is poisoned by an earlier failed batch; "
                "close() it and open a fresh session"
            )
        batch = list(mutations)
        ordered = self.adapter.watermark_policy == "ordered"
        for mutation in batch:
            self.adapter.check(mutation)
            if ordered and self._watermark is not None:
                self.adapter.check_watermark(mutation, self._watermark)
        if not batch:
            return RepairResult(0, 0, 0, 0.0, None, 0, None)

        recorder = self._recorder_cls()
        cycles_before = self.machine.elapsed_cycles()
        rounds = 0
        pending: list = []
        try:
            for mutation in batch:
                if pending and self.adapter.flush_before(mutation):
                    rounds += self._run_items(pending, recorder)
                    pending = []
                pending.extend(self.adapter.apply(mutation))
            if pending:
                rounds += self._run_items(pending, recorder)
        except Exception:
            self._poisoned = True
            raise
        self._advance_watermark(recorder)
        self.batches_applied += 1
        repair_cycles = self.machine.elapsed_cycles() - cycles_before

        rebuild_cycles = None
        if measure_rebuild:
            rebuild_cycles = self._measure_rebuild()
        locations: set = set()
        for event in recorder.events:
            locations.update(event.rw_set)
        return RepairResult(
            batch_size=len(batch),
            tasks_rerun=len(recorder.events),
            locations_touched=len(locations),
            repair_cycles=repair_cycles,
            rebuild_cycles=rebuild_cycles,
            rounds=rounds,
            trace=recorder.trace(
                self.spec.name,
                f"session:{self.adapter.executor}",
                self.machine.num_threads,
                rw_stable=True,
            ),
        )

    def _run_items(self, items: list, recorder) -> int:
        """One repair run over the staged seed items; returns its rounds."""
        algorithm = self.adapter.make_algorithm(seed_items=items)
        self._session_state.stage(
            self._session_state.factory.make_all(algorithm.initial_items)
        )
        result = self._run(
            algorithm,
            self.machine,
            dataclasses.replace(self.config, recorder=recorder),
            session=self._session_state,
        )
        return result.rounds

    def _measure_rebuild(self) -> float:
        """Cycles a cold run over the current (mutated) input costs."""
        cold_state = self.adapter.fork_cold()
        cold_machine = SimMachine(self.machine.num_threads)
        algorithm = self.adapter.make_algorithm(state=cold_state)
        self._run(algorithm, cold_machine, self.config)
        return cold_machine.elapsed_cycles()

    def _advance_watermark(self, recorder) -> None:
        if recorder.events:
            top = max(event.priority for event in recorder.events)
            if self._watermark is None or top > self._watermark:
                self._watermark = top

    # ------------------------------------------------------------------
    def snapshot(self) -> Any:
        """The app's deterministic final-state digest, live."""
        return self.spec.snapshot(self.state)

    def validate(self) -> None:
        """The app's domain invariants over the live state."""
        self.spec.validate(self.state)

    @property
    def watermark(self) -> Any:
        """Highest committed priority so far (ordered-policy sessions)."""
        return self._watermark

    def close(self) -> None:
        """Release pooled resources; idempotent, valid after poisoning."""
        if self._closed:
            return
        self._closed = True
        self._session_state.release()

    def __enter__(self) -> "KineticSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
