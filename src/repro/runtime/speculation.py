"""Speculative (optimistic) executor with in-order commit (§2.3, Fig. 13).

Models the Kulkarni-style ordered speculation the paper compares against:
threads take the earliest pending tasks, execute them optimistically while
holding locks on their rw-sets, and a task commits only once every
earlier-priority live task has committed — through a serial commit queue.
A conflict between two in-flight tasks aborts the later one (wasting its
work plus undo-log overhead); a task that would conflict with an earlier
in-flight task parks until that task commits.

Implementation is two-pass: a serial *trace* pass records each task's
priority, rw-set, work and children (so application state is exact and
identical to the serial executor), then an event-driven replay simulates
the speculative schedule, charging EXECUTE (useful work), ABORT (wasted
work + undo), COMMIT (commit-queue wait + commit operation), SCHEDULE and
IDLE cycles.  Children become visible when their parent *commits*, matching
in-order commit semantics and avoiding cascading squashes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from ..core.algorithm import OrderedAlgorithm
from ..core.task import SORT_KEY
from ..galois.priorityqueue import BinaryHeap
from ..machine import Category, SimMachine
from .base import LoopResult, RunConfig, coerce_config


@dataclass
class _TraceNode:
    tid: int
    key: tuple[Any, int]
    rw_set: tuple[Any, ...]
    write_set: frozenset
    work: float
    children: list[int] = field(default_factory=list)


def _build_trace(
    algorithm: OrderedAlgorithm, checked: bool, sanitizer=None
) -> tuple[dict[int, _TraceNode], list[int]]:
    """Serial pass: execute in priority order, recording the task DAG."""
    factory = algorithm.task_factory()
    initial_tasks = factory.make_all(algorithm.initial_items)
    heap = BinaryHeap(SORT_KEY, initial_tasks)
    roots = [t.tid for t in initial_tasks]
    nodes: dict[int, _TraceNode] = {}
    compute_rw_set = algorithm.compute_rw_set
    execute_body = algorithm.execute_body
    record = sanitizer is not None
    while heap:
        task = heap.pop()
        rw = compute_rw_set(task)
        ctx = execute_body(task, checked=checked, record=record)
        if sanitizer is not None:
            sanitizer.check(task, ctx)
        node = _TraceNode(task.tid, task.sort_key, rw, task.write_set, ctx.work_done)
        nodes[task.tid] = node
        for item in ctx.pushed:
            child = factory.make(item)
            node.children.append(child.tid)
            heap.push(child)
    return nodes, roots


class _Replay:
    """Event-driven replay of the trace under speculative execution."""

    def __init__(
        self,
        nodes: dict[int, _TraceNode],
        roots: list[int],
        machine: SimMachine,
        memory_fraction: float = 0.0,
        recorder=None,
    ):
        self.nodes = nodes
        self.machine = machine
        self.recorder = recorder
        self.cm = machine.cost_model
        self.exec_inflation = machine.cost_model.bandwidth_slowdown(
            machine.num_threads, memory_fraction
        )
        self.seq = 0
        self.events: list[tuple[float, int, str, Any]] = []
        self.pending: list[tuple[tuple[Any, int], int]] = []
        self.state: dict[int, str] = {}
        self.live: list[tuple[tuple[Any, int], int]] = []
        self.parked: dict[int, list[int]] = {}
        # loc -> holder tids; readers share, writers exclude.
        self.locks: dict[Any, dict[int, None]] = {}
        self.thread_of: dict[int, int] = {}
        self.exec_gen: dict[int, int] = {}
        self.start_time: dict[int, float] = {}
        self.finish_time: dict[int, float] = {}
        self.idle: list[int] = list(range(machine.num_threads))
        heapq.heapify(self.idle)
        self.thread_clock = [0.0] * machine.num_threads
        self.commit_free_at = 0.0
        self.committing: int | None = None
        self.commits = 0
        self.aborts = 0
        for tid in roots:
            self._make_live(tid)

    # -- helpers -------------------------------------------------------
    def _push_event(self, time: float, kind: str, payload: Any) -> None:
        heapq.heappush(self.events, (time, self.seq, kind, payload))
        self.seq += 1

    def _make_live(self, tid: int) -> None:
        key = self.nodes[tid].key
        heapq.heappush(self.live, (key, tid))
        heapq.heappush(self.pending, (key, tid))
        self.state[tid] = "pending"
        self.exec_gen.setdefault(tid, 0)

    def _charge(
        self,
        thread: int,
        now: float,
        category: Category,
        cycles: float,
        gap_category: Category = Category.IDLE,
    ) -> None:
        """Charge busy cycles; any gap since the thread's clock is charged to
        ``gap_category`` (idle by default)."""
        gap = now - self.thread_clock[thread]
        if gap > 1e-12:
            self.machine.stats.charge(thread, gap_category, gap)
            self.thread_clock[thread] = now
        self.machine.stats.charge(thread, category, cycles)
        self.thread_clock[thread] += cycles

    def _min_live(self) -> int | None:
        while self.live:
            key, tid = self.live[0]
            if self.state.get(tid) == "committed":
                heapq.heappop(self.live)
            else:
                return tid
        return None

    # -- core actions --------------------------------------------------
    def _dispatch(self, now: float) -> None:
        while self.idle and self.pending:
            key, tid = self.pending[0]
            if self.state.get(tid) != "pending":
                heapq.heappop(self.pending)
                continue
            node = self.nodes[tid]
            conflicts = set()
            for loc in node.rw_set:
                holders = self.locks.get(loc)
                if not holders:
                    continue
                i_write = loc in node.write_set
                for holder in holders:
                    if holder == tid:
                        continue
                    if i_write or loc in self.nodes[holder].write_set:
                        conflicts.add(holder)
            earlier = [c for c in conflicts if self.nodes[c].key < key]
            if earlier:
                # Park on the earliest blocker; resume when it commits.
                heapq.heappop(self.pending)
                blocker = min(earlier, key=lambda c: self.nodes[c].key)
                self.parked.setdefault(blocker, []).append(tid)
                self.state[tid] = "parked"
                continue
            heapq.heappop(self.pending)
            thread = heapq.heappop(self.idle)
            self._charge(
                thread, now, Category.SCHEDULE, self.cm.worklist_cost(self.machine.num_threads)
            )
            for victim in sorted(conflicts, key=lambda c: self.nodes[c].key):
                self._abort(victim, now, blocker=tid)
            for loc in node.rw_set:
                self.locks.setdefault(loc, {})[tid] = None
            self.state[tid] = "running"
            self.thread_of[tid] = thread
            self.start_time[tid] = self.thread_clock[thread]
            # Speculative execution writes an undo log as it goes (the
            # paper: "the overhead of copying state and storing undo
            # actions is significant").
            duration = (
                self.cm.work_cost(node.work) * self.exec_inflation
                + self.cm.undo_log_per_work * node.work
                + self.cm.rw_visit * len(node.rw_set)
            )
            finish = self.thread_clock[thread] + duration
            self._push_event(finish, "finish", (tid, self.exec_gen[tid]))

    def _abort(self, victim: int, now: float, blocker: int) -> None:
        """Abort a later in-flight task that conflicts with ``blocker``."""
        self.aborts += 1
        node = self.nodes[victim]
        thread = self.thread_of.pop(victim)
        overhead = self.cm.abort_base + self.cm.undo_log_per_work * node.work
        if self.state[victim] == "running":
            self.exec_gen[victim] += 1  # cancel its finish event
            # Partial execution so far (thread clock is at its start) is waste.
            self._charge(thread, now, Category.ABORT, overhead, gap_category=Category.ABORT)
        else:  # waiting in the commit queue: its full execution is waste
            self.machine.stats.reclassify(
                thread, Category.EXECUTE, Category.ABORT, self.cm.work_cost(node.work)
            )
            self._charge(thread, now, Category.ABORT, overhead, gap_category=Category.COMMIT)
        for loc in node.rw_set:
            holders = self.locks.get(loc)
            if holders is not None:
                holders.pop(victim, None)
                if not holders:
                    del self.locks[loc]
        self._push_event(self.thread_clock[thread], "thread-free", thread)
        self.parked.setdefault(blocker, []).append(victim)
        self.state[victim] = "parked"

    def _try_commit(self, now: float) -> None:
        if self.committing is not None:
            return
        tid = self._min_live()
        if tid is None or self.state.get(tid) != "waiting":
            return
        start = max(now, self.commit_free_at, self.finish_time[tid])
        done = start + self.cm.commit_op
        self.commit_free_at = done
        self.committing = tid
        self.state[tid] = "committing"
        self._push_event(done, "commit-done", tid)

    # -- event loop ----------------------------------------------------
    def run(self) -> int:
        now = 0.0
        self._dispatch(now)
        self._try_commit(now)
        while self.events:
            now, _, kind, payload = heapq.heappop(self.events)
            if kind == "finish":
                tid, gen = payload
                if gen != self.exec_gen[tid] or self.state.get(tid) != "running":
                    continue
                self.state[tid] = "waiting"
                self.finish_time[tid] = now
                thread = self.thread_of[tid]
                # Thread clock sits at the task's start; the span to ``now``
                # is its (so far useful) execution.
                self._charge(thread, now, Category.EXECUTE, 0.0, gap_category=Category.EXECUTE)
                self._try_commit(now)
            elif kind == "commit-done":
                tid = payload
                self.commits += 1
                self.committing = None
                self.state[tid] = "committed"
                node = self.nodes[tid]
                thread = self.thread_of.pop(tid)
                self.machine.stats.record_commit(thread)
                if self.recorder is not None:
                    self.recorder.commit_raw(
                        tid=node.tid,
                        priority=node.key[0],
                        rw_set=node.rw_set,
                        write_set=node.write_set,
                        thread=thread,
                    )
                    for child in node.children:
                        self.recorder.push_tid(node.tid, child)
                wait = max(0.0, now - self.finish_time[tid])
                self._charge(thread, self.finish_time[tid], Category.COMMIT, wait)
                for loc in node.rw_set:
                    holders = self.locks.get(loc)
                    if holders is not None:
                        holders.pop(tid, None)
                        if not holders:
                            del self.locks[loc]
                push_cost = self.cm.pq_cost(len(self.pending) + 1)
                for child in node.children:
                    self._make_live(child)
                    self._charge(thread, self.thread_clock[thread], Category.SCHEDULE, push_cost)
                heapq.heappush(self.idle, thread)
                for parked in self.parked.pop(tid, []):
                    key = self.nodes[parked].key
                    heapq.heappush(self.pending, (key, parked))
                    self.state[parked] = "pending"
                self._try_commit(now)
                self._dispatch(max(now, self.thread_clock[thread]))
            elif kind == "thread-free":
                heapq.heappush(self.idle, payload)
                self._dispatch(max(now, self.thread_clock[payload]))
            self._dispatch(now)
            self._try_commit(now)
        if self._min_live() is not None:
            raise RuntimeError("speculation replay deadlocked")
        end = max(self.thread_clock)
        for thread in range(self.machine.num_threads):
            gap = end - self.thread_clock[thread]
            if gap > 0:
                self.machine.stats.charge(thread, Category.IDLE, gap)
                self.thread_clock[thread] = end
            self.machine.set_clock(thread, self.thread_clock[thread])
        return self.commits


def run_speculation(
    algorithm: OrderedAlgorithm,
    machine: SimMachine | None = None,
    config: RunConfig | None = None,
    **legacy,
) -> LoopResult:
    """Run ``algorithm`` under the speculative executor.

    ``config`` is a :class:`~repro.runtime.base.RunConfig`; the legacy
    keyword form still works through a deprecation shim.
    ``recorder`` is an optional :class:`repro.oracle.TraceRecorder`; events
    are emitted in commit order during the replay (in-order commit), using
    the rw-sets captured by the serial trace pass.  ``sanitize=True`` diffs
    each body's accesses against its declared rw-set during that trace pass
    (observation only).  ``engine`` is accepted for executor-signature
    uniformity and ignored: the replay works off the captured trace, not a
    live rw-set index.  ``backend="mp"`` is rejected outright — the serial
    trace pass has no phase worker processes could share.
    """
    cfg = coerce_config("speculation", config, legacy)
    checked = cfg.checked
    recorder = cfg.recorder
    sanitize = cfg.sanitize
    if machine is None:
        machine = SimMachine(1)
    sanitizer = None
    if sanitize:
        from ..analysis.sanitizer import AccessSanitizer

        sanitizer = AccessSanitizer(algorithm, phase="speculation/trace")
    nodes, roots = _build_trace(algorithm, checked, sanitizer=sanitizer)
    replay = _Replay(
        nodes, roots, machine, algorithm.memory_bound_fraction, recorder=recorder
    )
    executed = replay.run()
    return LoopResult(
        algorithm=algorithm.name,
        executor="speculation",
        machine=machine,
        executed=executed,
        metrics={"aborts": replay.aborts, "commits": replay.commits},
        config=cfg,
    )
