"""Wall-clock performance layer: microbenchmarks, baselines, regressions.

The simulated machine measures the *paper's* metric (makespan cycles);
this package measures the *reproduction's* own cost — real Python wall
time through the executor hot paths — so optimizations are driven by data
and regressions are caught in CI.  See ``repro bench --help`` and
EXPERIMENTS.md ("Wall-clock benchmarks").
"""

from .report import (
    DEFAULT_BASELINE,
    DEFAULT_THRESHOLD,
    SCHEMA,
    compare,
    load_baseline_section,
    run_suite,
    update_baseline_file,
    write_results,
)
from .suite import BENCHES
from .timing import best_of, timed_payload

__all__ = [
    "BENCHES",
    "DEFAULT_BASELINE",
    "DEFAULT_THRESHOLD",
    "SCHEMA",
    "best_of",
    "compare",
    "load_baseline_section",
    "run_suite",
    "timed_payload",
    "update_baseline_file",
    "write_results",
]
