"""Wall-clock timing primitives for the performance suite.

Measurements use ``time.perf_counter`` around one full workload execution
and report the *best* of N repeats — the standard defence against scheduler
noise and transient interference (the minimum is the closest observable to
the true cost of the code; means and medians fold noise in).  The garbage
collector is disabled around each timed region so collection pauses land
between measurements, not inside them.
"""

from __future__ import annotations

import gc
import time
from collections.abc import Callable
from typing import Any


def best_of(
    fn: Callable[..., Any],
    repeats: int,
    setup: Callable[[], Any] | None = None,
    warmup: int = 1,
) -> tuple[float, list[float]]:
    """Time ``fn`` ``repeats`` times; return ``(best_seconds, all_seconds)``.

    ``setup`` (untimed) builds a fresh argument for each run — used by
    benchmarks whose workload mutates state, e.g. end-to-end app runs.
    ``warmup`` runs are executed and discarded first so allocator warm-up
    and bytecode specialization don't pollute the first sample.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        arg = setup() if setup is not None else None
        if setup is not None:
            fn(arg)
        else:
            fn()
    times: list[float] = []
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(repeats):
            arg = setup() if setup is not None else None
            gc.collect()
            if gc_was_enabled:
                gc.disable()
            start = time.perf_counter()
            if setup is not None:
                fn(arg)
            else:
                fn()
            elapsed = time.perf_counter() - start
            if gc_was_enabled:
                gc.enable()
            times.append(elapsed)
    finally:
        if gc_was_enabled and not gc.isenabled():
            gc.enable()
    return min(times), times


def timed_payload(
    run: Callable[..., Any],
    repeats: int,
    ops: float,
    setup: Callable[[], Any] | None = None,
    **extra: Any,
) -> dict[str, Any]:
    """Standard benchmark payload: best wall seconds plus per-op cost."""
    best, times = best_of(run, repeats, setup=setup)
    payload: dict[str, Any] = {
        "wall_seconds": best,
        "ops": ops,
        "per_op_ns": (best / ops) * 1e9 if ops else 0.0,
        "repeats": repeats,
        "all_seconds": times,
    }
    payload.update(extra)
    return payload
