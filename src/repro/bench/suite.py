"""The wall-clock microbenchmark suite over the runtime's hot paths.

Each benchmark times one hot path the executors live in — task-key
ordering, bulk-synchronous phase dispatch, rw-set index and task-graph
maintenance, whole-executor inner loops — plus end-to-end application runs
(wall seconds *and* simulated cycles, so schedule invariance is checked on
every comparison: optimizations may move wall time but never cycles).

Benchmarks are registered in ``BENCHES`` under stable names
(``micro/...``, ``exec/...``, ``e2e/...``); groups drive aggregation
(``hotpath`` feeds the headline speedup, ``e2e`` is reported alongside).
All workloads are seeded/deterministic — no RNG, no wall-clock dependence —
so two runs on one machine time exactly the same work.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from ..core.algorithm import OrderedAlgorithm
from ..core.kdg import KDG
from ..core.properties import AlgorithmProperties
from ..core.rwsets import RWSetIndex
from ..core.task import Task, TaskFactory
from ..core.taskgraph import TaskGraph
from ..machine import Category, SimMachine
from ..runtime import (
    run_ikdg,
    run_kdg_rna,
    run_level_by_level,
    run_serial,
    run_speculation,
)
from .timing import timed_payload

#: Threads used by executor and end-to-end benchmarks.  Kept below the
#: adaptive window's ``initial / target_per_thread`` crossover so windowing
#: behaves identically before and after the first-window bugfix.
BENCH_THREADS = 8


@dataclass(frozen=True)
class Bench:
    """One registered benchmark: ``fn(quick, repeats) -> payload dict``."""

    name: str
    group: str
    fn: Callable[[bool, int], dict[str, Any]]


BENCHES: dict[str, Bench] = {}


def bench(name: str, group: str):
    def register(fn: Callable[[bool, int], dict[str, Any]]):
        if name in BENCHES:
            raise ValueError(f"duplicate benchmark name: {name}")
        BENCHES[name] = Bench(name, group, fn)
        return fn

    return register


def _size(quick: bool, small: int, full: int) -> int:
    return small if quick else full


# ----------------------------------------------------------------------
# micro/ — data-structure hot paths
# ----------------------------------------------------------------------
@bench("micro/task_key", "hotpath")
def bench_task_key(quick: bool, repeats: int) -> dict[str, Any]:
    """Task total-order keys: the comparison fuel of every worklist/sort."""
    n = _size(quick, 2_000, 8_000)
    factory = TaskFactory(lambda item: (item * 7919) % 977)
    tasks = factory.make_all(range(n))
    key = Task.key
    passes = 5

    def run() -> int:
        acc = 0
        for _ in range(passes):
            for task in tasks:
                acc += key(task)[1]
        sorted(tasks, key=key)
        sorted(tasks, key=key)
        return acc

    return timed_payload(run, repeats, ops=n * passes + 2 * n)


@bench("micro/run_phase_1t", "hotpath")
def bench_run_phase_1t(quick: bool, repeats: int) -> dict[str, Any]:
    """Single-thread bulk-synchronous phase dispatch (serial-ish configs)."""
    n = _size(quick, 5_000, 20_000)
    costs = [{Category.SCHEDULE: 25.0} for _ in range(n)]

    def run() -> None:
        machine = SimMachine(1)
        machine.run_phase(costs, barrier=False)

    return timed_payload(run, repeats, ops=n)


@bench("micro/run_phase_8t", "hotpath")
def bench_run_phase_8t(quick: bool, repeats: int) -> dict[str, Any]:
    """Multi-thread phase dispatch with greedy least-loaded chunking."""
    n = _size(quick, 5_000, 20_000)
    costs = [{Category.SCHEDULE: 20.0 + (i % 7)} for i in range(n)]

    def run() -> None:
        machine = SimMachine(BENCH_THREADS)
        machine.run_phase(costs, chunk_size=4)

    return timed_payload(run, repeats, ops=n)


@bench("micro/rwset_index", "hotpath")
def bench_rwset_index(quick: bool, repeats: int) -> dict[str, Any]:
    """RWSetIndex add/remove churn with overlapping location buckets."""
    n = _size(quick, 600, 2_400)
    factory = TaskFactory(lambda item: item)
    tasks = factory.make_all(range(n))
    rw_sets = [
        tuple(("loc", (i + offset) % 96) for offset in (0, 5, 11, 17, 23, 31, 41, 53))
        for i in range(n)
    ]

    def run() -> None:
        index = RWSetIndex()
        for task, locs in zip(tasks, rw_sets):
            index.add(task, locs)
        for task in tasks:
            index.remove(task)

    return timed_payload(run, repeats, ops=2 * n)


@bench("micro/taskgraph", "hotpath")
def bench_taskgraph(quick: bool, repeats: int) -> dict[str, Any]:
    """TaskGraph node/edge insertion and removal (subrule R churn)."""
    n = _size(quick, 1_500, 6_000)
    factory = TaskFactory(lambda item: item)
    tasks = factory.make_all(range(n))

    def run() -> None:
        graph = TaskGraph()
        for task in tasks:
            graph.add_node(task)
        for i in range(1, n):
            graph.add_edge(tasks[i - 1], tasks[i])
            if i >= 4:
                graph.add_edge(tasks[i - 4], tasks[i])
        for task in tasks:
            graph.remove_node(task)

    return timed_payload(run, repeats, ops=4 * n)


@bench("micro/kdg_add_remove", "hotpath")
def bench_kdg_add_remove(quick: bool, repeats: int) -> dict[str, Any]:
    """Explicit-KDG AddTask/RemoveTask with conflict-edge wiring."""
    n = _size(quick, 400, 1_600)
    factory = TaskFactory(lambda item: item)
    tasks = factory.make_all(range(n))
    rw_sets = [
        tuple(("cell", (i + offset) % 128) for offset in (0, 7, 13, 29))
        for i in range(n)
    ]
    writes = [frozenset(rw[:2]) for rw in rw_sets]

    def run() -> None:
        kdg = KDG()
        for task, rw, wr in zip(tasks, rw_sets, writes):
            kdg.add_task(task, rw, wr)
        for task in tasks:
            kdg.remove_task(task)

    return timed_payload(run, repeats, ops=2 * n)


# ----------------------------------------------------------------------
# exec/ — whole-executor inner loops on synthetic workloads
# ----------------------------------------------------------------------
def _independent_algorithm(n: int) -> OrderedAlgorithm:
    """n tasks, disjoint rw-sets: pure scheduling overhead, zero conflicts."""
    return OrderedAlgorithm(
        name="bench-indep",
        initial_items=list(range(n)),
        priority=lambda x: x,
        visit_rw_sets=lambda item, ctx: ctx.write(("cell", item)),
        apply_update=lambda item, ctx: ctx.work(5.0),
        properties=AlgorithmProperties(
            stable_source=True,
            monotonic=True,
            no_new_tasks=True,
            structure_based_rw_sets=True,
        ),
    )


def _chain_algorithm(n: int, chains: int) -> OrderedAlgorithm:
    """n tasks over ``chains`` write-locations: long conflict chains, so the
    window carries tasks across many rounds (rw-set recomputation churn)."""
    return OrderedAlgorithm(
        name="bench-chains",
        initial_items=list(range(n)),
        priority=lambda x: x,
        visit_rw_sets=lambda item, ctx: ctx.write(("lock", item % chains)),
        apply_update=lambda item, ctx: ctx.work(4.0),
        properties=AlgorithmProperties(
            stable_source=True,
            monotonic=True,
            no_new_tasks=True,
            structure_based_rw_sets=True,
        ),
    )


def _level_algorithm(n: int, per_level: int) -> OrderedAlgorithm:
    """Discrete priority levels with intra-level conflicts (BFS-shaped)."""
    return OrderedAlgorithm(
        name="bench-levels",
        initial_items=list(range(n)),
        priority=lambda x: x // per_level,
        visit_rw_sets=lambda item, ctx: ctx.write(("slot", item % 16)),
        apply_update=lambda item, ctx: ctx.work(4.0),
        properties=AlgorithmProperties(
            stable_source=True,
            monotonic=True,
            no_new_tasks=True,
            structure_based_rw_sets=True,
        ),
    )


def _exec_payload(run_fn, repeats: int, ops: int) -> dict[str, Any]:
    holder: dict[str, Any] = {}

    def run() -> None:
        holder["result"] = run_fn()

    payload = timed_payload(run, repeats, ops=ops)
    result = holder["result"]
    payload["sim_cycles"] = result.elapsed_cycles
    payload["executed"] = result.executed
    return payload


@bench("exec/ikdg_independent", "hotpath")
def bench_ikdg_independent(quick: bool, repeats: int) -> dict[str, Any]:
    n = _size(quick, 800, 3_000)
    return _exec_payload(
        lambda: run_ikdg(_independent_algorithm(n), SimMachine(BENCH_THREADS)),
        repeats,
        ops=n,
    )


@bench("exec/ikdg_chains", "hotpath")
def bench_ikdg_chains(quick: bool, repeats: int) -> dict[str, Any]:
    n = _size(quick, 512, 2_048)
    return _exec_payload(
        lambda: run_ikdg(_chain_algorithm(n, 64), SimMachine(BENCH_THREADS)),
        repeats,
        ops=n,
    )


@bench("exec/kdg_rna_rounds", "hotpath")
def bench_kdg_rna_rounds(quick: bool, repeats: int) -> dict[str, Any]:
    n = _size(quick, 384, 1_536)
    return _exec_payload(
        lambda: run_kdg_rna(
            _chain_algorithm(n, 48), SimMachine(BENCH_THREADS), asynchronous=False
        ),
        repeats,
        ops=n,
    )


@bench("exec/kdg_rna_async", "hotpath")
def bench_kdg_rna_async(quick: bool, repeats: int) -> dict[str, Any]:
    n = _size(quick, 384, 1_536)
    return _exec_payload(
        lambda: run_kdg_rna(
            _chain_algorithm(n, 48), SimMachine(BENCH_THREADS), asynchronous=True
        ),
        repeats,
        ops=n,
    )


@bench("exec/level_by_level", "hotpath")
def bench_level_by_level(quick: bool, repeats: int) -> dict[str, Any]:
    n = _size(quick, 512, 2_048)
    return _exec_payload(
        lambda: run_level_by_level(
            _level_algorithm(n, 64), SimMachine(BENCH_THREADS)
        ),
        repeats,
        ops=n,
    )


@bench("exec/serial", "hotpath")
def bench_serial(quick: bool, repeats: int) -> dict[str, Any]:
    n = _size(quick, 1_000, 4_000)
    return _exec_payload(
        lambda: run_serial(_independent_algorithm(n)),
        repeats,
        ops=n,
    )


@bench("exec/speculation", "hotpath")
def bench_speculation(quick: bool, repeats: int) -> dict[str, Any]:
    n = _size(quick, 256, 1_024)
    return _exec_payload(
        lambda: run_speculation(_chain_algorithm(n, 32), SimMachine(BENCH_THREADS)),
        repeats,
        ops=n,
    )


# ----------------------------------------------------------------------
# e2e/ — the seven paper applications, wall seconds + simulated cycles
# ----------------------------------------------------------------------
def _register_e2e(app: str, impl: str) -> None:
    @bench(f"e2e/{app}/{impl}", "e2e")
    def bench_e2e(quick: bool, repeats: int, app=app, impl=impl) -> dict[str, Any]:
        from ..apps import APPS
        from ..oracle.workloads import make_oracle_state

        spec = APPS[app]
        make_state = (lambda: make_oracle_state(app, 0)) if quick else spec.make_small
        holder: dict[str, Any] = {}

        def run(state: Any) -> None:
            holder["result"] = spec.run(state, impl, SimMachine(BENCH_THREADS))

        payload = timed_payload(run, repeats, ops=1, setup=make_state)
        result = holder["result"]
        payload["ops"] = result.executed
        payload["per_op_ns"] = (
            (payload["wall_seconds"] / result.executed) * 1e9 if result.executed else 0.0
        )
        payload["sim_cycles"] = result.elapsed_cycles
        payload["executed"] = result.executed
        payload["executor"] = result.executor
        return payload


def _register_all_e2e() -> None:
    # Deferred app import keeps `repro.bench` import-light for unit tests.
    from ..apps import APPS

    for app in sorted(APPS):
        _register_e2e(app, "kdg-auto")
    # Structure-based apps driven through the windowed IKDG: exercises the
    # rw-set memoization fast path that kdg-auto (async KDG) never hits.
    for app in ("avi", "lu"):
        _register_e2e(app, "ikdg")


_register_all_e2e()
