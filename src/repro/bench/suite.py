"""The wall-clock microbenchmark suite over the runtime's hot paths.

Each benchmark times one hot path the executors live in — task-key
ordering, bulk-synchronous phase dispatch, rw-set index and task-graph
maintenance, whole-executor inner loops — plus end-to-end application runs
(wall seconds *and* simulated cycles, so schedule invariance is checked on
every comparison: optimizations may move wall time but never cycles).

Benchmarks are registered in ``BENCHES`` under stable names
(``micro/...``, ``exec/...``, ``e2e/...``); groups drive aggregation
(``hotpath`` feeds the headline speedup, ``e2e`` is reported alongside).
All workloads are seeded/deterministic — no RNG, no wall-clock dependence —
so two runs on one machine time exactly the same work.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from ..core.algorithm import OrderedAlgorithm
from ..core.kdg import KDG
from ..core.properties import AlgorithmProperties
from ..core.rwsets import RWSetIndex
from ..core.task import Task, TaskFactory
from ..core.taskgraph import TaskGraph
from ..machine import Category, SimMachine
from ..runtime import (
    run_ikdg,
    run_kdg_rna,
    run_level_by_level,
    run_relaxed,
    run_serial,
    run_speculation,
)
from ..runtime.base import RunConfig
from .timing import timed_payload

#: Threads used by executor and end-to-end benchmarks.  Kept below the
#: adaptive window's ``initial / target_per_thread`` crossover so windowing
#: behaves identically before and after the first-window bugfix.
BENCH_THREADS = 8


@dataclass(frozen=True)
class Bench:
    """One registered benchmark: ``fn(quick, repeats, engine) -> payload``.

    ``engine`` is keyword-with-default so existing positional callers keep
    working; benchmarks whose code path has no rw-set index simply ignore
    it (their dict/flat numbers are the same measurement).
    """

    name: str
    group: str
    fn: Callable[..., dict[str, Any]]


BENCHES: dict[str, Bench] = {}


def bench(name: str, group: str):
    def register(fn: Callable[[bool, int], dict[str, Any]]):
        if name in BENCHES:
            raise ValueError(f"duplicate benchmark name: {name}")
        BENCHES[name] = Bench(name, group, fn)
        return fn

    return register


def _size(quick: bool, small: int, full: int) -> int:
    return small if quick else full


# ----------------------------------------------------------------------
# micro/ — data-structure hot paths
# ----------------------------------------------------------------------
@bench("micro/task_key", "hotpath")
def bench_task_key(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    """Task total-order keys: the comparison fuel of every worklist/sort."""
    n = _size(quick, 2_000, 8_000)
    factory = TaskFactory(lambda item: (item * 7919) % 977)
    tasks = factory.make_all(range(n))
    key = Task.key
    passes = 5

    def run() -> int:
        acc = 0
        for _ in range(passes):
            for task in tasks:
                acc += key(task)[1]
        sorted(tasks, key=key)
        sorted(tasks, key=key)
        return acc

    return timed_payload(run, repeats, ops=n * passes + 2 * n)


@bench("micro/run_phase_1t", "hotpath")
def bench_run_phase_1t(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    """Single-thread bulk-synchronous phase dispatch (serial-ish configs)."""
    n = _size(quick, 5_000, 20_000)
    costs = [{Category.SCHEDULE: 25.0} for _ in range(n)]

    def run() -> None:
        machine = SimMachine(1)
        machine.run_phase(costs, barrier=False)

    return timed_payload(run, repeats, ops=n)


@bench("micro/run_phase_8t", "hotpath")
def bench_run_phase_8t(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    """Multi-thread phase dispatch with greedy least-loaded chunking."""
    n = _size(quick, 5_000, 20_000)
    costs = [{Category.SCHEDULE: 20.0 + (i % 7)} for i in range(n)]

    def run() -> None:
        machine = SimMachine(BENCH_THREADS)
        machine.run_phase(costs, chunk_size=4)

    return timed_payload(run, repeats, ops=n)


@bench("micro/rwset_index", "hotpath")
def bench_rwset_index(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    """Bipartite index add/remove churn with overlapping location buckets."""
    n = _size(quick, 600, 2_400)
    factory = TaskFactory(lambda item: item)
    tasks = factory.make_all(range(n))
    rw_sets = [
        tuple(("loc", (i + offset) % 96) for offset in (0, 5, 11, 17, 23, 31, 41, 53))
        for i in range(n)
    ]
    if engine == "flat":
        from ..core.flat import FlatRWIndex, LocationInterner

        interner = LocationInterner()
        for task, locs in zip(tasks, rw_sets):
            task.rw_set = locs
            task.write_set = frozenset(locs[:2])
        rw_lists = [interner.task_lists(task) for task in tasks]

        def run() -> None:
            index = FlatRWIndex()
            for task, (id_list, w_list) in zip(tasks, rw_lists):
                index.add(task, id_list, w_list)
            for task in tasks:
                index.remove(task)

    else:

        def run() -> None:
            index = RWSetIndex()
            for task, locs in zip(tasks, rw_sets):
                index.add(task, locs)
            for task in tasks:
                index.remove(task)

    return timed_payload(run, repeats, ops=2 * n)


@bench("micro/taskgraph", "hotpath")
def bench_taskgraph(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    """TaskGraph node/edge insertion and removal (subrule R churn)."""
    n = _size(quick, 1_500, 6_000)
    factory = TaskFactory(lambda item: item)
    tasks = factory.make_all(range(n))

    def run() -> None:
        graph = TaskGraph()
        for task in tasks:
            graph.add_node(task)
        for i in range(1, n):
            graph.add_edge(tasks[i - 1], tasks[i])
            if i >= 4:
                graph.add_edge(tasks[i - 4], tasks[i])
        for task in tasks:
            graph.remove_node(task)

    return timed_payload(run, repeats, ops=4 * n)


def _make_interner(engine: str):
    """``LocationInterner`` for the flat engine, ``None`` for the dict one."""
    if engine == "flat":
        from ..core.flat import LocationInterner

        return LocationInterner()
    return None


@bench("micro/kdg_add_remove", "hotpath")
def bench_kdg_add_remove(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    """Explicit-KDG AddTask/RemoveTask with conflict-edge wiring."""
    n = _size(quick, 400, 1_600)
    factory = TaskFactory(lambda item: item)
    tasks = factory.make_all(range(n))
    rw_sets = [
        tuple(("cell", (i + offset) % 128) for offset in (0, 7, 13, 29))
        for i in range(n)
    ]
    writes = [frozenset(rw[:2]) for rw in rw_sets]
    # One interner for the whole bench, as in a real executor run (the
    # interner outlives every KDG the run builds); micro/rwset_index
    # established the pattern.  The first timed iteration interns cold,
    # later ones hit the per-task caches — same as windowed rounds.
    interner = _make_interner(engine)

    def run() -> None:
        kdg = KDG(interner=interner)
        for task, rw, wr in zip(tasks, rw_sets, writes):
            kdg.add_task(task, rw, wr)
        for task in tasks:
            kdg.remove_task(task)

    return timed_payload(run, repeats, ops=2 * n)


@bench("micro/kdg_add_tasks_batch", "hotpath")
def bench_kdg_add_tasks_batch(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    """Round-batched ``KDG.add_tasks`` (subrule A): one sweep per round's
    new tasks instead of N independent conflict scans."""
    n = _size(quick, 512, 2_048)
    batch = 64
    factory = TaskFactory(lambda item: item)
    tasks = factory.make_all(range(n))
    for i, task in enumerate(tasks):
        task.rw_set = tuple(
            ("cell", (i + offset) % 128) for offset in (0, 7, 13, 29)
        )
        task.write_set = frozenset(task.rw_set[:2])
        task.rw_valid = True
    interner = _make_interner(engine)  # executor-lifetime, see kdg_add_remove

    def run() -> None:
        kdg = KDG(interner=interner)
        for start in range(0, n, batch):
            kdg.add_tasks(tasks[start : start + batch])
        for task in tasks:
            kdg.remove_task(task)

    return timed_payload(run, repeats, ops=2 * n)


def _mark_phase_payload(quick: bool, repeats: int, engine: str,
                        priority_fn) -> dict[str, Any]:
    """Shared body of the ``micro/mark_phase*`` benches (see below)."""
    w = _size(quick, 1_024, 4_096)
    rounds = 8
    factory = TaskFactory(priority_fn)
    tasks = factory.make_all(range(w))
    # One written chain location shared 8 ways plus per-task private state:
    # the carried-window mix (most marks lose on the chain, private locs
    # pad the rw-set to a realistic width).
    for i, task in enumerate(tasks):
        task.rw_set = (
            ("chain", i % (w // 8)),
            ("state", i, 0),
            ("state", i, 1),
            ("state", i, 2),
            ("ro", i, 0),
            ("ro", i, 1),
        )
        task.write_set = frozenset(task.rw_set[:4])
        task.rw_valid = True

    if engine == "flat":
        from ..core.flat import (
            LocationInterner,
            MarkBuffers,
            RoundPool,
            pooled_mark_round,
        )

        interner = LocationInterner()
        for task in tasks:
            interner.task_lists(task)  # binds task.flat_cache
        pool = RoundPool()
        slots = [pool.add(task, task.flat_cache) for task in tasks]
        buffers = MarkBuffers()

        def run() -> None:
            for _ in range(rounds):
                marked = pooled_mark_round(pool, tasks, slots, buffers, 1.0, 1.0)
                sources = [t for t, o in zip(tasks, marked.owner) if o]
                assert sources

    else:

        def run() -> None:
            for _ in range(rounds):
                marks_all: dict[Any, Task] = {}
                marks_writer: dict[Any, Task] = {}
                mark_costs: list[float] = []
                min_task: Task | None = None
                min_key = None
                for task in tasks:
                    rw = task.rw_set
                    key = task.sort_key
                    if min_key is None or key < min_key:
                        min_task, min_key = task, key
                    cas = 0
                    write_set = task.write_set
                    for loc in rw:
                        holder = marks_all.get(loc)
                        if holder is None or key < holder.sort_key:
                            marks_all[loc] = task
                        cas += 1
                        if loc in write_set:
                            holder = marks_writer.get(loc)
                            if holder is None or key < holder.sort_key:
                                marks_writer[loc] = task
                            cas += 1
                    mark_costs.append(1.0 * max(1, len(rw)) + 1.0 * cas)
                sources = []
                for task in tasks:
                    key = task.sort_key
                    write_set = task.write_set
                    for loc in task.rw_set:
                        if loc in write_set:
                            if marks_all[loc] is not task:
                                break
                        else:
                            writer = marks_writer.get(loc)
                            if writer is not None and writer.sort_key < key:
                                break
                    else:
                        sources.append(task)
                assert sources

    return timed_payload(run, repeats, ops=w * rounds)


@bench("micro/mark_phase", "hotpath")
def bench_mark_phase(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    """IKDG Phase I/II on a carried window: priority-mark every location,
    then the ownership sweep (the round body of §3.5).  A contended window
    is re-marked every round until its conflicts drain, so this loop is the
    executors' hottest path; the flat engine runs it as one grouped-min
    kernel over the pooled window (:func:`repro.core.flat.pool.pooled_mark_round`)
    where the dict engine CASes location-keyed dicts task by task."""
    return _mark_phase_payload(quick, repeats, engine, lambda item: item)


@bench("micro/mark_phase_tuple", "hotpath")
def bench_mark_phase_tuple(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    """``micro/mark_phase`` with app-shaped tuple priorities (every bundled
    app declares tuples).  Before the rank encoder these demoted the pool
    to the scalar kernel on the first ``add``; now they rank-encode once at
    window entry and the vector kernel engages — this bench times exactly
    the case the apps hit."""
    return _mark_phase_payload(
        quick, repeats, engine, lambda item: (item % 97, 0, item // 97, item)
    )


# ----------------------------------------------------------------------
# exec/ — whole-executor inner loops on synthetic workloads
# ----------------------------------------------------------------------
def _visit_private(item: Any, ctx) -> None:
    """Per-task private state: 5 written + 2 read locations, conflict-free.

    The bundled apps all declare multi-location rw-sets (billiards: two
    balls plus cells; LU: a block row/column; MST: edge endpoints plus a
    component), so synthetic workloads that mark a single location per task
    understate Phase I/II and index-maintenance work.  Private locations
    enrich every task to a representative 6-8 entries without changing the
    conflict structure — they are keyed by the item, so no two tasks share
    them.
    """
    for j in range(5):
        ctx.write(("state", item, j))
    ctx.read(("ro", item, 0))
    ctx.read(("ro", item, 1))


def _independent_algorithm(n: int) -> OrderedAlgorithm:
    """n tasks, disjoint rw-sets: pure scheduling overhead, zero conflicts."""

    def visit(item, ctx):
        ctx.write(("cell", item))
        _visit_private(item, ctx)

    return OrderedAlgorithm(
        name="bench-indep",
        initial_items=list(range(n)),
        priority=lambda x: x,
        visit_rw_sets=visit,
        apply_update=lambda item, ctx: ctx.work(5.0),
        properties=AlgorithmProperties(
            stable_source=True,
            monotonic=True,
            no_new_tasks=True,
            structure_based_rw_sets=True,
        ),
    )


def _chain_algorithm(n: int, chains: int) -> OrderedAlgorithm:
    """n tasks over ``chains`` write-locations: long conflict chains, so the
    window carries tasks across many rounds (rw-set recomputation churn)."""

    def visit(item, ctx):
        ctx.write(("lock", item % chains))
        _visit_private(item, ctx)

    return OrderedAlgorithm(
        name="bench-chains",
        initial_items=list(range(n)),
        priority=lambda x: x,
        visit_rw_sets=visit,
        apply_update=lambda item, ctx: ctx.work(4.0),
        properties=AlgorithmProperties(
            stable_source=True,
            monotonic=True,
            no_new_tasks=True,
            structure_based_rw_sets=True,
        ),
    )


def _level_algorithm(n: int, per_level: int) -> OrderedAlgorithm:
    """Discrete priority levels with intra-level conflicts (BFS-shaped)."""

    def visit(item, ctx):
        ctx.write(("slot", item % 16))
        _visit_private(item, ctx)

    return OrderedAlgorithm(
        name="bench-levels",
        initial_items=list(range(n)),
        priority=lambda x: x // per_level,
        visit_rw_sets=visit,
        apply_update=lambda item, ctx: ctx.work(4.0),
        properties=AlgorithmProperties(
            stable_source=True,
            monotonic=True,
            no_new_tasks=True,
            structure_based_rw_sets=True,
        ),
    )


def _exec_payload(run_fn, repeats: int, ops: int) -> dict[str, Any]:
    holder: dict[str, Any] = {}

    def run() -> None:
        holder["result"] = run_fn()

    payload = timed_payload(run, repeats, ops=ops)
    result = holder["result"]
    payload["sim_cycles"] = result.elapsed_cycles
    payload["executed"] = result.executed
    if result.config is not None:
        # The *resolved* configuration, straight from the run — reports no
        # longer reconstruct it from CLI flags.
        payload["config"] = result.config.describe()
    return payload


@bench("exec/ikdg_independent", "hotpath")
def bench_ikdg_independent(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    n = _size(quick, 800, 3_000)
    return _exec_payload(
        lambda: run_ikdg(_independent_algorithm(n), SimMachine(BENCH_THREADS),
                         RunConfig(engine=engine, backend=backend, workers=workers)),
        repeats,
        ops=n,
    )


@bench("exec/ikdg_chains", "hotpath")
def bench_ikdg_chains(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    """Contended-window IKDG: fewer chains than window slots, so most of
    each round's window loses the marking race and is re-marked next round
    (the carried-window regime of the paper's apps — a billiards or AVI
    window is mostly conflicting tasks that wait several rounds)."""
    n = _size(quick, 512, 2_048)
    return _exec_payload(
        lambda: run_ikdg(_chain_algorithm(n, 16), SimMachine(BENCH_THREADS),
                         RunConfig(engine=engine, backend=backend, workers=workers)),
        repeats,
        ops=n,
    )


@bench("exec/kdg_rna_rounds", "hotpath")
def bench_kdg_rna_rounds(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    n = _size(quick, 384, 1_536)
    return _exec_payload(
        lambda: run_kdg_rna(
            _chain_algorithm(n, 48), SimMachine(BENCH_THREADS),
            RunConfig(asynchronous=False, engine=engine, backend=backend,
                      workers=workers),
        ),
        repeats,
        ops=n,
    )


@bench("exec/kdg_rna_async", "hotpath")
def bench_kdg_rna_async(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    n = _size(quick, 384, 1_536)
    return _exec_payload(
        lambda: run_kdg_rna(
            _chain_algorithm(n, 48), SimMachine(BENCH_THREADS),
            RunConfig(asynchronous=True, engine=engine, backend=backend,
                      workers=workers),
        ),
        repeats,
        ops=n,
    )


@bench("exec/level_by_level", "hotpath")
def bench_level_by_level(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    n = _size(quick, 512, 2_048)
    return _exec_payload(
        lambda: run_level_by_level(
            _level_algorithm(n, 64), SimMachine(BENCH_THREADS),
            RunConfig(engine=engine, backend=backend, workers=workers),
        ),
        repeats,
        ops=n,
    )


@bench("exec/ikdg_wide_window", "hotpath")
def bench_ikdg_wide_window(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    """Wide-window IKDG marking: large rounds are where the vectorized
    flat kernels amortize best (hundreds of tasks per ``mark_round``), and
    chains several tasks deep keep the window carried across rounds."""
    from ..runtime.windowing import AdaptiveWindow

    n = _size(quick, 2_048, 8_192)
    return _exec_payload(
        lambda: run_ikdg(
            _chain_algorithm(n, 128),
            SimMachine(BENCH_THREADS),
            RunConfig(window_policy=AdaptiveWindow(initial=1_024),
                      engine=engine, backend=backend, workers=workers),
        ),
        repeats,
        ops=n,
    )


@bench("exec/serial", "hotpath")
def bench_serial(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    n = _size(quick, 1_000, 4_000)
    return _exec_payload(
        lambda: run_serial(_independent_algorithm(n), config=RunConfig(engine=engine)),
        repeats,
        ops=n,
    )


@bench("exec/speculation", "hotpath")
def bench_speculation(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    n = _size(quick, 256, 1_024)
    return _exec_payload(
        lambda: run_speculation(_chain_algorithm(n, 32), SimMachine(BENCH_THREADS),
                                RunConfig(engine=engine)),
        repeats,
        ops=n,
    )


@bench("exec/sssp_delta", "hotpath")
def bench_sssp_delta(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    """Delta-stepping SSSP through the relaxed executor: the fused bucket
    worklist serves whole priority buckets as commit windows and drains
    each to fixpoint, so scheduling cost is one O(1) bucket op per task
    instead of a heap op — the speedup the rank-error oracle prices.
    Ignores the suite backend (the relaxed executor is inline-only)."""
    from ..apps.sssp import DEFAULT_DELTA, make_algorithm, make_grid_state

    n = _size(quick, 24, 48)
    return _exec_payload(
        lambda: run_relaxed(
            make_algorithm(make_grid_state(n, n, seed=3)),
            SimMachine(BENCH_THREADS),
            RunConfig(delta=DEFAULT_DELTA, engine=engine),
        ),
        repeats,
        ops=n * n,
    )


@bench("exec/astar", "hotpath")
def bench_astar(quick: bool, repeats: int, engine: str = "dict",
                   backend: Any = "inline", workers: int = 2) -> dict[str, Any]:
    """A* corner-to-corner through the relaxed executor's bucket worklist:
    f-value buckets mix heuristic guidance with relaxed intra-bucket order,
    and goal pruning keeps the expanded region a corridor.  Inline-only,
    like ``exec/sssp_delta``."""
    from ..apps.astar import DEFAULT_DELTA, make_algorithm, make_grid_state

    n = _size(quick, 28, 56)
    return _exec_payload(
        lambda: run_relaxed(
            make_algorithm(make_grid_state(n, n, seed=9)),
            SimMachine(BENCH_THREADS),
            RunConfig(delta=DEFAULT_DELTA, engine=engine),
        ),
        repeats,
        ops=n * n,
    )


# ----------------------------------------------------------------------
# exec/mp_scaling — the mp backend at 1/2/4 workers vs. inline
# ----------------------------------------------------------------------
def _mp_scaling_algorithm(n: int) -> OrderedAlgorithm:
    """A mark-phase-bound workload: wide carried windows of fat rw-sets.

    Few shared locks relative to the window keep most tasks losing the
    marking race for many rounds, and ~14 entries per task (1 contended +
    9 private writes + 4 reads) make each round's mark phase the dominant
    cost — the regime where sharding the marking across processes can pay.
    """

    def visit(item, ctx):
        ctx.write(("lock", item % max(1, n // 24)))
        for j in range(9):
            ctx.write(("state", item, j))
        for j in range(4):
            ctx.read(("ro", item, j))

    return OrderedAlgorithm(
        name="bench-mp-scaling",
        initial_items=list(range(n)),
        priority=lambda x: x,
        visit_rw_sets=visit,
        apply_update=lambda item, ctx: ctx.work(4.0),
        properties=AlgorithmProperties(
            stable_source=True,
            monotonic=True,
            no_new_tasks=True,
            structure_based_rw_sets=True,
        ),
    )


def _register_mp_scaling(label: str, mp_workers: int | None) -> None:
    @bench(f"exec/mp_scaling/{label}", "mp")
    def bench_mp_scaling(
        quick: bool, repeats: int, engine: str = "dict",
        backend: Any = "inline", workers: int = 2,
        mp_workers=mp_workers,
    ) -> dict[str, Any]:
        """Identical simulated run at every label; only the host-side mark
        execution differs, so the wall-clock ratios are the scaling curve.
        Each label manages its own backend (the suite-level ``backend``
        argument is ignored here) and always runs the flat engine."""
        from ..runtime.mp_backend import MPMarkBackend
        from ..runtime.windowing import AdaptiveWindow

        n = _size(quick, 4_096, 16_384)

        def run_once(be):
            return run_ikdg(
                _mp_scaling_algorithm(n),
                SimMachine(BENCH_THREADS),
                RunConfig(window_policy=AdaptiveWindow(initial=2_048),
                          engine="flat", backend=be),
            )

        if mp_workers is None:
            payload = _exec_payload(lambda: run_once(None), repeats, ops=n)
            payload["mp_workers"] = 0
            return payload
        with MPMarkBackend(workers=mp_workers) as be:
            holder: dict[str, Any] = {}

            def run() -> None:
                holder["result"] = run_once(be)

            payload = timed_payload(run, repeats, ops=n)
            result = holder["result"]
            payload["sim_cycles"] = result.elapsed_cycles
            payload["executed"] = result.executed
            payload["mp_workers"] = mp_workers
            payload["mp"] = be.wall_stats().summary()
        return payload


for _label, _workers in (("inline", None), ("w1", 1), ("w2", 2), ("w4", 4)):
    _register_mp_scaling(_label, _workers)


# ----------------------------------------------------------------------
# e2e/ — the seven paper applications, wall seconds + simulated cycles
# ----------------------------------------------------------------------
def _register_e2e(app: str, impl: str) -> None:
    @bench(f"e2e/{app}/{impl}", "e2e")
    def bench_e2e(
        quick: bool, repeats: int, engine: str = "dict",
        backend: Any = "inline", workers: int = 2, app=app, impl=impl,
    ) -> dict[str, Any]:
        from ..apps import APPS
        from ..oracle.workloads import make_oracle_state

        spec = APPS[app]
        make_state = (lambda: make_oracle_state(app, 0)) if quick else spec.make_small
        holder: dict[str, Any] = {}

        options: dict[str, Any] = {"engine": engine}
        if backend is not None and backend != "inline":
            # Both registered e2e impls (kdg-auto, ikdg) are ordered-model
            # executors, so the backend threads straight through spec.run.
            options["backend"] = backend
            options["workers"] = workers

        def run(state: Any) -> None:
            holder["result"] = spec.run(
                state, impl, SimMachine(BENCH_THREADS), **options
            )

        payload = timed_payload(run, repeats, ops=1, setup=make_state)
        result = holder["result"]
        payload["ops"] = result.executed
        payload["per_op_ns"] = (
            (payload["wall_seconds"] / result.executed) * 1e9 if result.executed else 0.0
        )
        payload["sim_cycles"] = result.elapsed_cycles
        payload["executed"] = result.executed
        payload["executor"] = result.executor
        if result.config is not None:
            payload["config"] = result.config.describe()
        return payload


def _register_all_e2e() -> None:
    # Deferred app import keeps `repro.bench` import-light for unit tests.
    from ..apps import APPS

    for app in sorted(APPS):
        _register_e2e(app, "kdg-auto")
    # Structure-based apps driven through the windowed IKDG: exercises the
    # rw-set memoization fast path that kdg-auto (async KDG) never hits.
    for app in ("avi", "lu"):
        _register_e2e(app, "ikdg")


_register_all_e2e()
