"""Bench results: schema, baseline comparison, regression detection.

``BENCH_results.json`` schema (``repro-bench/v1``)::

    {
      "schema": "repro-bench/v1",
      "quick": bool,                 # workload scale (quick vs full)
      "repeats": int,
      "engine": "dict" | "flat",     # rw-set index engine used for the run;
                                     # comparisons refuse mismatched engines
      "backend": "inline" | "mp",    # mark-phase execution backend; also
      "workers": int | null,         # refused on mismatch
      "host": {"python": "...", "platform": "...", "numpy": "..."},
      "benchmarks": {
        "<name>": {
          "group": "hotpath" | "e2e" | "mp",
          "wall_seconds": float,     # best-of-repeats wall time
          "ops": float, "per_op_ns": float,
          "all_seconds": [float, ...],
          "sim_cycles": float,       # executor/e2e benches only — the
          "executed": int            # simulated makespan; must be constant
        }, ...                       # across code changes (schedule proof)
      },
      "comparison": {                # present when a baseline was loaded
        "baseline_quick": bool, "threshold": float,
        "per_benchmark": {"<name>": {"baseline_wall": f, "speedup": f}},
        "aggregate_speedup_hotpath": float,   # geomean over group=hotpath
        "aggregate_speedup_e2e": float,
        "aggregate_speedup_all": float,
        "regressions": ["<name>", ...],       # wall > threshold * baseline
        "schedule_changes": ["<name>", ...]   # sim_cycles != baseline
      }
    }

Wall-clock numbers are machine-dependent; the committed baseline
(``benchmarks/perf/BASELINE.json``) stores one ``quick`` and one ``full``
section, and comparisons only ever pair sections of the same scale.
Simulated-cycle equality is machine-*independent* and is checked strictly:
any drift means an "optimization" changed the schedule.
"""

from __future__ import annotations

import json
import math
import platform
import sys
from pathlib import Path
from typing import Any

from .suite import BENCHES

SCHEMA = "repro-bench/v1"

#: Default committed baseline location (resolved from the source tree).
DEFAULT_BASELINE = Path(__file__).resolve().parents[3] / "benchmarks" / "perf" / "BASELINE.json"

#: Default regression threshold: fail when a benchmark's wall time exceeds
#: this multiple of its baseline.  Generous by default because baselines
#: travel across machines; CI overrides per its own noise floor.
DEFAULT_THRESHOLD = 1.5


def run_suite(
    quick: bool = False,
    repeats: int | None = None,
    name_filter: str | None = None,
    verbose: bool = True,
    engine: str = "dict",
    backend: str = "inline",
    workers: int = 2,
) -> dict[str, Any]:
    """Run (a filtered subset of) the suite; returns the results document.

    ``backend="mp"`` requires ``engine="flat"`` and runs the executor
    benches' mark rounds on one shared pool of ``workers`` worker
    processes (spawned once, closed after the last bench); the dedicated
    ``exec/mp_scaling/*`` benches manage their own backends and ignore it.
    """
    if engine not in ("dict", "flat"):
        raise ValueError(f"unknown engine {engine!r} (expected 'dict' or 'flat')")
    if backend not in ("inline", "mp"):
        raise ValueError(f"unknown backend {backend!r} (expected 'inline' or 'mp')")
    if backend == "mp" and engine != "flat":
        raise ValueError(
            f"backend='mp' requires engine='flat' (got engine={engine!r})"
        )
    if repeats is None:
        repeats = 3 if quick else 5
    selected = {
        name: b
        for name, b in sorted(BENCHES.items())
        if name_filter is None or name_filter in name
    }
    if not selected:
        raise ValueError(f"no benchmarks match filter {name_filter!r}")
    shared_backend: Any = "inline"
    if backend == "mp":
        from ..runtime.mp_backend import MPMarkBackend

        shared_backend = MPMarkBackend(workers=workers)
    benchmarks: dict[str, Any] = {}
    try:
        for name, b in selected.items():
            payload = b.fn(
                quick, repeats, engine=engine,
                backend=shared_backend, workers=workers,
            )
            payload["group"] = b.group
            benchmarks[name] = payload
            if verbose:
                extra = ""
                if "sim_cycles" in payload:
                    extra = f"  sim={payload['sim_cycles']:.0f}cy"
                print(
                    f"  {name:<28} {payload['wall_seconds'] * 1e3:>9.2f} ms "
                    f"({payload['per_op_ns']:>10.0f} ns/op){extra}"
                )
    finally:
        if shared_backend != "inline":
            shared_backend.close()
    import numpy

    return {
        "schema": SCHEMA,
        "quick": quick,
        "repeats": repeats,
        "engine": engine,
        "backend": backend,
        "workers": workers if backend == "mp" else None,
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "numpy": numpy.__version__,
        },
        "benchmarks": benchmarks,
    }


def _geomean(values: list[float]) -> float | None:
    values = [v for v in values if v > 0]
    if not values:
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))


def compare(
    results: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> dict[str, Any]:
    """Compare a results document against a same-scale baseline section.

    Raises :class:`ValueError` when the two documents were produced by
    different engines or different execution backends: dict-vs-flat (or
    inline-vs-mp) wall times measure different code, so the comparison
    would silently mix representations (the cross-engine speedup table in
    EXPERIMENTS.md is produced deliberately, from two explicit result
    files).
    """
    results_engine = results.get("engine", "dict")
    baseline_engine = baseline.get("engine", "dict")
    if results_engine != baseline_engine:
        raise ValueError(
            f"engine mismatch: results were produced with engine="
            f"{results_engine!r} but the baseline was recorded with engine="
            f"{baseline_engine!r}; re-run with a matching --engine or "
            f"refresh the baseline with --update-baseline"
        )
    results_backend = results.get("backend", "inline")
    baseline_backend = baseline.get("backend", "inline")
    if results_backend != baseline_backend:
        raise ValueError(
            f"backend mismatch: results were produced with backend="
            f"{results_backend!r} but the baseline was recorded with backend="
            f"{baseline_backend!r}; re-run with a matching --backend or "
            f"refresh the baseline with --update-baseline"
        )
    per_benchmark: dict[str, Any] = {}
    regressions: list[str] = []
    schedule_changes: list[str] = []
    speedups_by_group: dict[str, list[float]] = {}
    base_benches = baseline.get("benchmarks", {})
    for name, payload in results["benchmarks"].items():
        base = base_benches.get(name)
        if base is None:
            continue
        base_wall = base["wall_seconds"]
        wall = payload["wall_seconds"]
        speedup = base_wall / wall if wall > 0 else float("inf")
        entry: dict[str, Any] = {"baseline_wall": base_wall, "speedup": speedup}
        if wall > threshold * base_wall:
            regressions.append(name)
            entry["regression"] = True
        if "sim_cycles" in payload and "sim_cycles" in base:
            if payload["sim_cycles"] != base["sim_cycles"]:
                schedule_changes.append(name)
                entry["baseline_sim_cycles"] = base["sim_cycles"]
        per_benchmark[name] = entry
        speedups_by_group.setdefault(payload["group"], []).append(speedup)
    all_speedups = [s for group in speedups_by_group.values() for s in group]
    return {
        "baseline_quick": baseline.get("quick"),
        "threshold": threshold,
        "per_benchmark": per_benchmark,
        "aggregate_speedup_hotpath": _geomean(speedups_by_group.get("hotpath", [])),
        "aggregate_speedup_e2e": _geomean(speedups_by_group.get("e2e", [])),
        "aggregate_speedup_all": _geomean(all_speedups),
        "regressions": regressions,
        "schedule_changes": schedule_changes,
    }


def load_baseline_section(path: Path, quick: bool) -> dict[str, Any] | None:
    """Load the matching-scale section of a committed baseline file."""
    if not path.is_file():
        return None
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return doc.get("quick_suite" if quick else "full_suite")


def update_baseline_file(path: Path, results: dict[str, Any]) -> None:
    """Merge ``results`` into the baseline file's matching-scale section.

    A filtered run only refreshes the benchmarks it ran; the other scale's
    section is preserved untouched.
    """
    doc: dict[str, Any] = {"schema": SCHEMA}
    if path.is_file():
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            pass
    section_key = "quick_suite" if results["quick"] else "full_suite"
    section = doc.get(section_key) or {
        "schema": SCHEMA,
        "quick": results["quick"],
        "repeats": results["repeats"],
        "host": results["host"],
        "benchmarks": {},
    }
    section["host"] = results["host"]
    section["repeats"] = results["repeats"]
    section["engine"] = results.get("engine", "dict")
    section["backend"] = results.get("backend", "inline")
    section["benchmarks"].update(results["benchmarks"])
    doc[section_key] = section
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")


def write_results(path: Path, results: dict[str, Any]) -> None:
    path.write_text(json.dumps(results, indent=1, sort_keys=True) + "\n")
