"""repro — Kinetic Dependence Graphs (ASPLOS 2015) in Python.

A reproduction of Hassaan, Nguyen & Pingali, *Kinetic Dependence Graphs*,
ASPLOS 2015: the KDG abstraction, the ordered-foreach programming model, the
explicit (KDG-RNA) and implicit (IKDG) executors with property-driven
optimizations, comparison executors (serial, level-by-level, speculation),
and the paper's seven applications — all running on a deterministic
simulated multicore (see DESIGN.md for the hardware substitution).

Quickstart::

    from repro import for_each_ordered, AlgorithmProperties, SimMachine

    result = for_each_ordered(
        initial_items=events,
        priority=lambda e: e.time,
        visit_rw_sets=lambda e, ctx: ctx.write(("cell", e.cell)),
        apply_update=body,
        properties=AlgorithmProperties(stable_source=True,
                                       structure_based_rw_sets=True),
        machine=SimMachine(num_threads=16),
    )
    print(result.elapsed_seconds, result.breakdown())
"""

from .core import (
    KDG,
    AlgorithmProperties,
    BodyContext,
    LivenessViolation,
    OrderedAlgorithm,
    RWSetContext,
    RWSetViolation,
    SafetyViolation,
    SourceView,
    Task,
    TaskFactory,
    TaskGraph,
    for_each_ordered,
)
from .core.verify import PropertyReport, verify_properties
from .machine import Category, CostModel, CycleStats, SimMachine
from .runtime import (
    EXECUTORS,
    AdaptiveWindow,
    LoopResult,
    choose_executor,
    run_ikdg,
    run_kdg_rna,
    run_level_by_level,
    run_serial,
    run_speculation,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveWindow",
    "AlgorithmProperties",
    "BodyContext",
    "Category",
    "CostModel",
    "CycleStats",
    "EXECUTORS",
    "KDG",
    "LivenessViolation",
    "LoopResult",
    "OrderedAlgorithm",
    "PropertyReport",
    "RWSetContext",
    "RWSetViolation",
    "SafetyViolation",
    "SimMachine",
    "SourceView",
    "Task",
    "TaskFactory",
    "TaskGraph",
    "choose_executor",
    "for_each_ordered",
    "run_ikdg",
    "run_kdg_rna",
    "run_level_by_level",
    "run_serial",
    "run_speculation",
    "verify_properties",
]
