"""Hand-specialized tree traversal executors (§4.7).

``run_manual`` embeds the task graph in the tree itself ("because they are
isomorphic"): each internal node carries a pending-children counter set up
during tree construction; leaves start ready and a node is exposed when its
last child completes.  No rw-sets, no task objects.

``run_other`` reimplements the Cilk-style parallel recursion the paper
compares against: the same child-before-parent dependence structure driven
by fork-join, with a spawn/steal overhead per task instead of the counter
update.
"""

from __future__ import annotations

from ...machine import Category, SimMachine, simulate_async
from ...runtime.base import LoopResult, inflate_execute
from .app import MEM_FRACTION, TreeSumState

#: Cycle costs: atomic decrement of a pending counter; Cilk spawn + steal.
COUNTER_DECREMENT = 12.0
CILK_SPAWN = 35.0


def _tree_schedule(
    state: TreeSumState, machine: SimMachine, per_task_overhead: float, label: str
) -> LoopResult:
    tree = state.tree
    cm = machine.cost_model
    pending = [len(tree.children[n]) for n in range(tree.num_nodes)]
    executed = {"count": 0}
    max_depth = tree.max_depth()

    def key(node: int) -> tuple[int, int]:
        return (max_depth - tree.depth[node], node)

    def step(node: int) -> tuple[dict, list[int]]:
        if tree.is_leaf(node):
            work = tree.summarize_leaf(node)
        else:
            work = tree.summarize_internal(node)
        executed["count"] += 1
        exposed = []
        parent = tree.parent[node]
        if parent >= 0:
            pending[parent] -= 1
            if pending[parent] == 0:
                exposed.append(parent)
        breakdown = {
            Category.EXECUTE: inflate_execute(machine, cm.work_cost(work), MEM_FRACTION),
            Category.SCHEDULE: per_task_overhead + COUNTER_DECREMENT,
        }
        return breakdown, exposed

    leaves = [n for n in range(tree.num_nodes) if tree.is_leaf(n)]
    simulate_async(machine, leaves, key, step)
    return LoopResult(
        algorithm="treesum",
        executor=label,
        machine=machine,
        executed=executed["count"],
    )


def run_manual(state: TreeSumState, machine: SimMachine) -> LoopResult:
    """Task graph embedded in the tree (pending-children counters)."""
    return _tree_schedule(state, machine, 0.0, "manual-embedded-dag")


def run_other(state: TreeSumState, machine: SimMachine) -> LoopResult:
    """Cilk-style parallel recursion with spawn overheads."""
    return _tree_schedule(state, machine, CILK_SPAWN, "cilk-recursion")
