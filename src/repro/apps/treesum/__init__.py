"""Bottom-up tree traversal: Barnes–Hut center of mass (§4.7).

Paper inputs: 40 M / 100 M Plummer-distributed bodies.  Scaled here to
20 K / 60 K bodies in a quadtree with 8-body leaves.
"""

from ..common import AppSpec
from .app import TREE_PROPERTIES, TreeSumState, make_algorithm, make_state
from .manual import run_manual, run_other

SPEC = AppSpec(
    name="treesum",
    make_small=lambda: make_state(20000, leaf_size=8, seed=7),
    make_large=lambda: make_state(60000, leaf_size=8, seed=7),
    algorithm=make_algorithm,
    snapshot=lambda state: state.snapshot(),
    validate=lambda state: state.validate(),
    serial_baseline="linear",
    run_manual=run_manual,
    run_other=run_other,
)

__all__ = [
    "SPEC",
    "TREE_PROPERTIES",
    "TreeSumState",
    "make_algorithm",
    "make_state",
    "run_manual",
    "run_other",
]
