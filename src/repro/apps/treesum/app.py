"""Bottom-up tree traversal in the ordered model (§4.7).

One task per tree node, ordered deeper-first (a linear extension of the
paper's partial order "children before parents"); the rw-set of a node's
task writes the node and reads its children.  The application is
stable-source, monotonic, creates no tasks and has non-increasing rw-sets —
a conventional task graph — so the automatic runtime uses the explicit KDG
with subrule R only, running asynchronously.

Inference audit (``repro infer treesum``): every declared flag —
``stable_source``, ``monotonic``, ``structure_based_rw_sets``,
``non_increasing_rw_sets``, ``no_new_tasks`` — is *proved*; the push-free
body over a static tree leaves the abstract interpreter nothing to doubt.
"""

from __future__ import annotations

import numpy as np

from ...core.algorithm import OrderedAlgorithm
from ...core.context import BodyContext, RWSetContext
from ...core.properties import AlgorithmProperties
from ...inputs.bodies import plummer_bodies
from .tree import QuadTree

TREE_PROPERTIES = AlgorithmProperties(
    stable_source=True,
    monotonic=True,
    no_new_tasks=True,
    structure_based_rw_sets=True,
)

#: Memory-bound share of task execution (bandwidth model, DESIGN.md).
MEM_FRACTION = 1.0


class TreeSumState:
    """A quadtree whose center-of-mass summary is being computed."""

    def __init__(self, num_bodies: int, leaf_size: int = 8, seed: int = 0):
        positions, masses = plummer_bodies(num_bodies, seed=seed)
        self.tree = QuadTree(positions, masses, leaf_size=leaf_size)
        self.tree.reset_summary()
        self.num_bodies = num_bodies

    def snapshot(self) -> tuple[bytes, bytes]:
        return (self.tree.mass.tobytes(), self.tree.com.tobytes())

    def validate(self) -> None:
        tree = self.tree
        assert abs(tree.mass[0] - tree.masses.sum()) < 1e-9, "root mass wrong"
        expected_com = (
            tree.positions * tree.masses[:, None]
        ).sum(axis=0) / tree.masses.sum()
        assert np.allclose(tree.com[0], expected_com, atol=1e-9), "root COM wrong"
        for node in range(tree.num_nodes):
            if not tree.is_leaf(node):
                child_mass = sum(tree.mass[c] for c in tree.children[node])
                assert abs(tree.mass[node] - child_mass) < 1e-9


def make_state(num_bodies: int, leaf_size: int = 8, seed: int = 0) -> TreeSumState:
    return TreeSumState(num_bodies, leaf_size=leaf_size, seed=seed)


def make_algorithm(state: TreeSumState) -> OrderedAlgorithm:
    tree = state.tree
    max_depth = tree.max_depth()

    def priority(node: int) -> tuple[int, int]:
        # Deeper nodes first: a linear extension of child-before-parent.
        return (max_depth - tree.depth[node], node)

    def level_of(node: int) -> int:
        return max_depth - tree.depth[node]

    def visit_rw_sets(node: int, ctx: RWSetContext) -> None:
        ctx.write(("node", node))
        for child in tree.children[node]:
            ctx.read(("node", child))

    def apply_update(node: int, ctx: BodyContext) -> None:
        ctx.access(("node", node))
        if tree.is_leaf(node):
            ctx.work(tree.summarize_leaf(node))
        else:
            for child in tree.children[node]:
                ctx.access(("node", child))
            ctx.work(tree.summarize_internal(node))

    return OrderedAlgorithm(
        memory_bound_fraction=MEM_FRACTION,
        name="treesum",
        initial_items=list(range(tree.num_nodes)),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=TREE_PROPERTIES,
        level_of=level_of,
        # §4.7: dependences are exactly child -> parent, so rw-set
        # computation is disabled and the KDG is wired from the tree.
        dependences=lambda node: list(tree.children[node]),
    )
