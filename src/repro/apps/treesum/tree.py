"""Quadtree over Plummer-distributed bodies for Barnes–Hut (§4.7).

Built bulk top-down with numpy-assisted partitioning: a node with more than
``leaf_size`` bodies splits into four quadrants.  The center-of-mass pass
(the paper's bottom-up traversal benchmark) fills ``mass`` and ``com`` from
the leaves upward.
"""

from __future__ import annotations

import numpy as np


class QuadTree:
    """Array-of-lists quadtree: children, depth, and per-leaf body buckets."""

    def __init__(self, positions: np.ndarray, masses: np.ndarray, leaf_size: int = 8):
        if len(positions) != len(masses):
            raise ValueError("positions and masses must have equal length")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.positions = positions
        self.masses = masses
        self.leaf_size = leaf_size
        self.children: list[list[int]] = []
        self.parent: list[int] = []
        self.depth: list[int] = []
        self.bodies: list[np.ndarray] = []  # body index arrays (leaves only)
        self.com = None  # filled by the traversal
        self.mass = None
        self._build()

    def _new_node(self, parent: int, depth: int) -> int:
        nid = len(self.children)
        self.children.append([])
        self.parent.append(parent)
        self.depth.append(depth)
        self.bodies.append(np.empty(0, dtype=np.int64))
        return nid

    def _build(self) -> None:
        pos = self.positions
        lo = pos.min(axis=0) - 1e-9
        hi = pos.max(axis=0) + 1e-9
        root = self._new_node(-1, 0)
        all_bodies = np.arange(len(pos), dtype=np.int64)
        stack = [(root, all_bodies, lo, hi)]
        while stack:
            node, members, lo_n, hi_n = stack.pop()
            if len(members) <= self.leaf_size:
                self.bodies[node] = members
                continue
            mid = (lo_n + hi_n) / 2.0
            right = pos[members, 0] >= mid[0]
            top = pos[members, 1] >= mid[1]
            for quadrant in range(4):
                mask = (right == bool(quadrant & 1)) & (top == bool(quadrant & 2))
                selected = members[mask]
                if len(selected) == 0:
                    continue
                q_lo = np.array(
                    [mid[0] if quadrant & 1 else lo_n[0], mid[1] if quadrant & 2 else lo_n[1]]
                )
                q_hi = np.array(
                    [hi_n[0] if quadrant & 1 else mid[0], hi_n[1] if quadrant & 2 else mid[1]]
                )
                child = self._new_node(node, self.depth[node] + 1)
                self.children[node].append(child)
                stack.append((child, selected, q_lo, q_hi))

    @property
    def num_nodes(self) -> int:
        return len(self.children)

    def is_leaf(self, node: int) -> bool:
        return not self.children[node]

    def leaves(self) -> list[int]:
        return [n for n in range(self.num_nodes) if self.is_leaf(n)]

    def max_depth(self) -> int:
        return max(self.depth)

    def reset_summary(self) -> None:
        self.com = np.zeros((self.num_nodes, 2))
        self.mass = np.zeros(self.num_nodes)

    def summarize_leaf(self, node: int) -> float:
        """Center of mass of a leaf bucket; returns op count."""
        members = self.bodies[node]
        m = self.masses[members]
        total = float(m.sum())
        self.mass[node] = total
        if total > 0:
            self.com[node] = (self.positions[members] * m[:, None]).sum(axis=0) / total
        return 120.0 * max(1, len(members))

    def summarize_internal(self, node: int) -> float:
        """Combine children centers of mass; returns op count."""
        total = 0.0
        acc = np.zeros(2)
        for child in self.children[node]:
            total += self.mass[child]
            acc += self.mass[child] * self.com[child]
        self.mass[node] = total
        if total > 0:
            self.com[node] = acc / total
        return 150.0 * max(1, len(self.children[node]))
