"""Hand-specialized Kruskal executors (§4.2).

``run_manual`` inlines the IKDG into the application: edges are pre-sorted,
reservations are priority-writes on component representatives, and there is
no task-object or rw-set machinery — only the two finds the algorithm needs
anyway.  It keeps our adaptive window policy.

``run_other`` reimplements the Blelloch et al. PBBS algorithm the paper
compares against: the same deterministic reservations, but with a
fixed-size prefix policy and the classic light/heavy edge split — heavy
edges are filtered against the partial forest before being processed.
"""

from __future__ import annotations

from collections.abc import Callable

from ...machine import Category, SimMachine
from ...runtime.base import LoopResult, inflate_execute
from ...runtime.windowing import AdaptiveWindow
from .app import FIND_WORK, MEM_FRACTION, UNION_WORK, MSTState

#: ``next_size(current, committed, threads) -> next window size``
SizePolicy = Callable[[int, int, int], int]


def _reservation_rounds(
    state: MSTState,
    machine: SimMachine,
    items: list[tuple[float, int, int, int]],
    initial_size: int,
    next_size: SizePolicy,
) -> tuple[int, int]:
    """Windowed priority-write reservation loop over pre-sorted ``items``.

    Returns ``(edges_processed, rounds)``.
    """
    cm = machine.cost_model
    uf = state.uf
    start = 0
    processed = 0
    rounds = 0
    size = initial_size
    carry: list[tuple[float, int, int, int]] = []  # losers of the last round
    while start < len(items) or carry:
        rounds += 1
        take = max(0, size - len(carry))
        window = carry + items[start : start + take]
        start += take
        # Phase I: reserve component representatives (priority-write).  As
        # in PBBS, only the root being re-pointed needs exclusive ownership
        # (both on a rank tie); the surviving root is shared read-only, so
        # many edges can hang onto one large component in the same round.
        # Self-loop edges are dropped without reserving anything.
        res_all: dict[int, tuple[float, int]] = {}
        res_writer: dict[int, tuple[float, int]] = {}
        phase1 = []
        sides: list[tuple[tuple[int, ...], tuple[int, ...]] | None] = []
        for w, u, v, eid in window:
            ru, rv = uf.find_no_compress(u), uf.find_no_compress(v)
            key = (w, eid)
            if ru == rv:
                sides.append(None)  # self-loop: no reservation needed
                phase1.append(
                    {Category.EXECUTE: inflate_execute(machine, 2 * FIND_WORK, MEM_FRACTION)}
                )
                continue
            if uf.rank[ru] < uf.rank[rv]:
                writes, reads = (ru,), (rv,)
            elif uf.rank[rv] < uf.rank[ru]:
                writes, reads = (rv,), (ru,)
            else:
                writes, reads = (ru, rv), ()
            sides.append((writes, reads))
            for rep in writes + reads:
                held = res_all.get(rep)
                if held is None or key < held:
                    res_all[rep] = key
            for rep in writes:
                held = res_writer.get(rep)
                if held is None or key < held:
                    res_writer[rep] = key
            phase1.append(
                {
                    Category.SCHEDULE: 3 * cm.mark_cas,
                    Category.EXECUTE: inflate_execute(machine, 2 * FIND_WORK, MEM_FRACTION),
                }
            )
        machine.run_phase(phase1)
        # Phase II: winners contract; losers carry to the next round.
        carry = []
        committed = 0
        phase2 = []
        for (w, u, v, eid), side in zip(window, sides):
            key = (w, eid)
            if side is None:
                # Self-loop: drop (check cost only, already paid in phase I).
                processed += 1
                committed += 1
                continue
            writes, reads = side
            wins = all(res_all.get(rep) == key for rep in writes) and all(
                res_writer.get(rep) is None or res_writer[rep] > key for rep in reads
            )
            if wins:
                state.contract(u, v)
                state.mst_weight += w
                state.mst_edges.append(eid)
                processed += 1
                committed += 1
                phase2.append(
                    {
                        Category.EXECUTE: inflate_execute(
                            machine, 2 * FIND_WORK + UNION_WORK, MEM_FRACTION
                        ),
                        Category.SCHEDULE: 2 * cm.mark_reset,
                    }
                )
            else:
                carry.append((w, u, v, eid))
                phase2.append({Category.SCHEDULE: cm.mark_reset})
        machine.run_phase(phase2)
        size = next_size(size, committed, machine.num_threads)
    return processed, rounds


def _sorted_items(state: MSTState, machine: SimMachine) -> list:
    cm = machine.cost_model
    items = sorted(state.items, key=lambda it: (it[0], it[3]))
    # Parallel sample-sort stand-in: n log n comparison work spread out.
    machine.run_phase(
        [{Category.SCHEDULE: cm.pq_cost(len(items))} for _ in items]
    )
    return items


def run_manual(state: MSTState, machine: SimMachine) -> LoopResult:
    """IKDG inlined into Kruskal, with the adaptive window policy."""
    items = _sorted_items(state, machine)
    policy = AdaptiveWindow()
    processed, rounds = _reservation_rounds(
        state,
        machine,
        items,
        policy.first_size(machine.num_threads),
        policy.next_size,
    )
    return LoopResult(
        algorithm="mst",
        executor="manual-ikdg",
        machine=machine,
        executed=processed,
        rounds=rounds,
    )


def run_other(state: MSTState, machine: SimMachine) -> LoopResult:
    """Blelloch et al. style: light/heavy split + fixed-size prefixes."""
    cm = machine.cost_model
    items = _sorted_items(state, machine)
    # Light/heavy split at 3·|V| lightest edges (PBBS heuristic).
    cut = min(len(items), 3 * state.num_nodes)
    light, heavy = items[:cut], items[cut:]

    def fixed(size: int, committed: int, threads: int) -> int:
        return size

    prefix = max(1024, 64 * machine.num_threads)
    processed, rounds = _reservation_rounds(state, machine, light, prefix, fixed)
    # Filter heavy edges against the partial forest, then process the rest.
    uf = state.uf
    survivors = []
    filter_costs = []
    for w, u, v, eid in heavy:
        if uf.find_no_compress(u) != uf.find_no_compress(v):
            survivors.append((w, u, v, eid))
        filter_costs.append(
            {Category.EXECUTE: inflate_execute(machine, 2 * FIND_WORK, MEM_FRACTION)}
        )
        processed += 1  # filtered edges count as processed work items
    machine.run_phase(filter_costs)
    done, more_rounds = _reservation_rounds(state, machine, survivors, prefix, fixed)
    processed += done
    return LoopResult(
        algorithm="mst",
        executor="pbbs-kruskal",
        machine=machine,
        executed=processed,
        rounds=rounds + more_rounds,
    )
