"""Kruskal MST (§4.2).

Paper inputs: 2-D grid |V| = 16 M (small), uniform random |V| = 67 M
(large).  Scaled here to a 90×90 grid (~16 K edges) and a 6 000-node random
graph (~12 K edges).
"""

from ..common import AppSpec
from .app import (
    MST_PROPERTIES,
    MSTState,
    make_algorithm,
    make_grid_state,
    make_random_state,
)
from .manual import run_manual, run_other

SPEC = AppSpec(
    name="mst",
    make_small=lambda: make_grid_state(90, 90, seed=2),
    make_large=lambda: make_random_state(6000, avg_degree=4.0, seed=2),
    algorithm=make_algorithm,
    snapshot=lambda state: state.snapshot(),
    validate=lambda state: state.validate(),
    serial_baseline="linear",
    run_manual=run_manual,
    run_other=run_other,
)

__all__ = [
    "MSTState",
    "MST_PROPERTIES",
    "SPEC",
    "make_algorithm",
    "make_grid_state",
    "make_random_state",
    "run_manual",
    "run_other",
]
