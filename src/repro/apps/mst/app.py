"""Kruskal's minimum-weight spanning tree in the ordered model (§4.2).

Tasks are edges, ordered by ``(weight, edge id)``.  The rw-set of an edge
is the pair of *components* its endpoints currently belong to — computed
with a compression-free find so the cautious prefix stays read-only.  Edge
contraction (union) grows the rw-sets of pending edges, so Kruskal does
*not* have non-increasing rw-sets; it is stable-source and creates no new
tasks, which sends the automatic runtime to the IKDG executor with
windowing (§4.2).

Inference audit (``repro infer mst``): ``stable_source``, ``monotonic``
and ``no_new_tasks`` are all *proved* (no pushes at all).  The analysis
also proves ``structure_based_rw_sets`` would be a lie — the body writes
the union-find structure the visitor reads — which is precisely why the
flag is not declared.
"""

from __future__ import annotations

import numpy as np

from ...core.algorithm import OrderedAlgorithm
from ...core.context import BodyContext, RWSetContext
from ...core.properties import AlgorithmProperties
from ...galois.unionfind import UnionFind
from ...inputs.graphs import grid2d, random_graph

MST_PROPERTIES = AlgorithmProperties(
    stable_source=True,
    monotonic=True,
    no_new_tasks=True,
)

#: Memory-bound share of task execution (bandwidth model, DESIGN.md).
MEM_FRACTION = 0.8

#: Representative op counts for the cost model.  Union-find on large graphs
#: chases pointers through DRAM (the paper's serial rate is ~600
#: cycles/edge), so a find is modeled at cache-miss cost.
FIND_WORK = 180.0
UNION_WORK = 60.0


class MSTState:
    """Input edges plus the union-find forest and the accumulated MST."""

    def __init__(self, num_nodes: int, edges: list[tuple[int, int]], weights: np.ndarray):
        self.num_nodes = num_nodes
        #: (weight, u, v, edge id) — the edge id is the tie-break ``≺``.
        self.items = [
            (float(w), int(u), int(v), eid)
            for eid, ((u, v), w) in enumerate(zip(edges, weights))
        ]
        self.uf = UnionFind(num_nodes)
        self.mst_weight = 0.0
        self.mst_edges: list[int] = []

    def contract(self, u: int, v: int) -> bool:
        """Edge contraction via union-find (identical across executors)."""
        return self.uf.union(u, v)

    def snapshot(self) -> tuple[float, tuple[int, ...], tuple[int, ...]]:
        return (
            self.mst_weight,
            tuple(sorted(self.mst_edges)),
            tuple(self.uf.snapshot()),
        )

    def validate(self) -> None:
        """The result must be a spanning forest with |V| - #components edges."""
        expected = self.num_nodes - self.uf.num_components
        assert len(self.mst_edges) == expected, (
            f"{len(self.mst_edges)} tree edges for {expected} merges"
        )
        assert np.isfinite(self.mst_weight) and self.mst_weight >= 0


def make_grid_state(nx: int, ny: int, seed: int = 0) -> MSTState:
    """The paper's MST-small family: a 2-D grid."""
    _, edges, weights = grid2d(nx, ny, seed=seed)
    return MSTState(nx * ny, edges, weights)


def make_random_state(num_nodes: int, avg_degree: float = 4.0, seed: int = 0) -> MSTState:
    """The paper's MST-large family: a uniform random graph."""
    _, edges, weights = random_graph(num_nodes, avg_degree=avg_degree, seed=seed)
    return MSTState(num_nodes, edges, weights)


def make_algorithm(state: MSTState) -> OrderedAlgorithm:
    uf = state.uf

    def priority(item: tuple[float, int, int, int]) -> tuple[float, int]:
        w, _, _, eid = item
        return (w, eid)

    def level_of(item: tuple[float, int, int, int]) -> float:
        return item[0]  # priority levels are edge weights (Fig. 14)

    def visit_rw_sets(item: tuple[float, int, int, int], ctx: RWSetContext) -> None:
        _, u, v, _ = item
        # Read-only find: the cautious prefix must not compress paths.
        ru = uf.find_no_compress(u)
        rv = uf.find_no_compress(v)
        if ru == rv:
            # Already connected: the task only observes the component.
            ctx.read(("comp", ru))
            return
        # Mirror union-by-rank: contraction re-points (writes) the
        # lower-rank root and merely hangs off (reads) the higher-rank one;
        # equal ranks also bump the surviving root's rank (write both).
        # This is what lets many edges attach to one large component
        # concurrently, as in PBBS's reservation scheme.
        if uf.rank[ru] < uf.rank[rv]:
            ctx.write(("comp", ru))
            ctx.read(("comp", rv))
        elif uf.rank[rv] < uf.rank[ru]:
            ctx.write(("comp", rv))
            ctx.read(("comp", ru))
        else:
            ctx.write(("comp", ru))
            ctx.write(("comp", rv))

    def apply_update(item: tuple[float, int, int, int], ctx: BodyContext) -> None:
        w, u, v, eid = item
        ctx.access(("comp", uf.find_no_compress(u)))
        ctx.access(("comp", uf.find_no_compress(v)))
        ctx.work(2 * FIND_WORK)
        if state.contract(u, v):
            ctx.work(UNION_WORK)
            state.mst_weight += w
            state.mst_edges.append(eid)

    return OrderedAlgorithm(
        memory_bound_fraction=MEM_FRACTION,
        name="mst",
        initial_items=state.items,
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=MST_PROPERTIES,
        level_of=level_of,
    )
