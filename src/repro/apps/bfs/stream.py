"""Streaming mutation adapter for BFS (edge insertions).

Adding an edge can only *shorten* distances, so the existing labels stay a
pointwise upper bound and ordered relaxation from the endpoints converges
to the new exact distances: seed ``(v, dist[u] + 1)`` and ``(u, dist[v] +
1)`` for each labelled endpoint and let pushes cascade the improvement.
Edge deletions are unsupported — a deletion can *increase* distances,
which monotone relaxation cannot express (it would need invalidation, the
classic decremental-SSSP gap), so ``RemoveEdge`` raises
:class:`~repro.core.mutations.UnsupportedMutationError`.

The CSR graph is immutable; the adapter keeps the undirected edge list and
rebuilds the CSR on each insertion (host-side bookkeeping, not simulated
work — the executor only charges the repair tasks).
"""

from __future__ import annotations

from ...core.mutations import AddEdge, MutationAdapter, MutationError
from ...galois.graphs import CSRGraph
from .app import BFSState, make_algorithm


class BFSAdapter(MutationAdapter):
    supported = (AddEdge,)
    watermark_policy = "fixpoint"
    executor = "ikdg"
    level_windows = True

    def __init__(self, state: BFSState):
        super().__init__(state)
        # CSR stores both directions; keep one canonical copy per edge.
        self._edges = {
            (min(int(u), int(v)), max(int(u), int(v)))
            for u, v in state.graph.edges()
        }

    def make_algorithm(self, seed_items=None, state=None):
        return make_algorithm(
            self.state if state is None else state, seed_items
        )

    def fork_cold(self) -> BFSState:
        return BFSState(self.state.graph, self.state.source)

    def apply(self, mutation) -> list[tuple[int, int]]:
        state = self.state
        u, v = int(mutation.u), int(mutation.v)
        n = state.graph.num_nodes
        if not (0 <= u < n and 0 <= v < n):
            raise MutationError(
                f"bfs: edge ({u}, {v}) outside node range [0, {n})"
            )
        if u == v:
            raise MutationError(f"bfs: self-loop ({u}, {u}) not allowed")
        key = (min(u, v), max(u, v))
        if key in self._edges:
            return []
        self._edges.add(key)
        state.graph = CSRGraph.from_undirected_edges(n, sorted(self._edges))
        seeds: list[tuple[int, int]] = []
        if state.dist[u] >= 0:
            seeds.append((v, int(state.dist[u]) + 1))
        if state.dist[v] >= 0:
            seeds.append((u, int(state.dist[v]) + 1))
        return seeds
