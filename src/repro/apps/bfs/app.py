"""Breadth-first search in the ordered model (§4.6).

A task ``(n, L)`` updates node ``n``'s distance label to ``L``; updates must
appear to execute in increasing distance order.  BFS is *not* stable-source
(a shorter-distance update for a node can be created after a longer one is
already a source), so the safe-source test admits a source only when its
level equals the current global minimum — exactly the insight behind
level-by-level BFS.  The automatic runtime uses IKDG with the level
windowing strategy (§3.6.1).

Inference audit (``repro infer bfs``): ``monotonic`` and
``structure_based_rw_sets`` are *proved* (children land at level ``L + 1``
on the static graph).  The safe-source test provably reads
``view.min_priority`` — confirming ``local_safe_source_test`` is correctly
left undeclared.
"""

from __future__ import annotations

import numpy as np

from ...core.algorithm import OrderedAlgorithm, SourceView
from ...core.context import BodyContext, RWSetContext
from ...core.properties import AlgorithmProperties
from ...core.task import Task
from ...galois.graphs import CSRGraph
from ...inputs.graphs import grid2d, random_graph

BFS_PROPERTIES = AlgorithmProperties(
    monotonic=True,
    structure_based_rw_sets=True,
    stable_source=False,
)

#: Memory-bound share of task execution (bandwidth model, DESIGN.md).
MEM_FRACTION = 0.9

#: Base ops per update plus ops per scanned neighbor.  BFS on large graphs
#: is memory-latency bound (the paper's serial rate is ~120 cycles/node), so
#: these model cache-missing node and edge accesses, not ALU work.
NODE_WORK = 90.0
EDGE_WORK = 25.0


class BFSState:
    """Graph, BFS source, and the distance labels being computed."""

    def __init__(self, graph: CSRGraph, source: int = 0):
        self.graph = graph
        self.source = source
        self.dist = np.full(graph.num_nodes, -1, dtype=np.int64)

    def snapshot(self) -> bytes:
        return self.dist.tobytes()

    def validate(self) -> None:
        assert self.dist[self.source] == 0
        dist = self.dist
        for u in range(self.graph.num_nodes):
            if dist[u] < 0:
                continue
            for v in self.graph.neighbors(u):
                assert dist[v] >= 0, f"neighbor {v} of reached node {u} unreached"
                assert abs(dist[u] - dist[v]) <= 1, "BFS triangle inequality broken"


def make_grid_state(nx: int, ny: int, seed: int = 0) -> BFSState:
    """Road-network stand-in: a 2-D grid (thousands of BFS levels)."""
    graph, _, _ = grid2d(nx, ny, seed=seed)
    return BFSState(graph, source=0)


def make_random_state(num_nodes: int, avg_degree: float = 4.0, seed: int = 0) -> BFSState:
    """The paper's Random input: low diameter, few fat levels."""
    graph, _, _ = random_graph(num_nodes, avg_degree=avg_degree, seed=seed)
    return BFSState(graph, source=0)


def make_algorithm(
    state: BFSState, seed_items: list[tuple[int, int]] | None = None
) -> OrderedAlgorithm:
    """The ordered BFS algorithm over ``state``.

    ``seed_items`` replaces the cold start ``[(source, 0)]`` with a repair
    frontier (streaming sessions): tasks relax from existing distance
    labels instead of from scratch.
    """
    graph, dist = state.graph, state.dist

    def priority(item: tuple[int, int]) -> tuple[int, int]:
        node, level = item
        return (level, node)

    def level_of(item: tuple[int, int]) -> int:
        return item[1]

    def visit_rw_sets(item: tuple[int, int], ctx: RWSetContext) -> None:
        ctx.write(("node", item[0]))

    def apply_update(item: tuple[int, int], ctx: BodyContext) -> None:
        node, level = item
        ctx.access(("node", node))
        ctx.work(NODE_WORK)
        if dist[node] != -1 and dist[node] <= level:
            return  # stale update
        dist[node] = level
        for neighbor in graph.neighbors(node):
            ctx.work(EDGE_WORK)
            labelled = dist[neighbor]
            if labelled == -1 or labelled > level + 1:
                ctx.push((int(neighbor), level + 1))

    def safe_source_test(task: Task, view: SourceView) -> bool:
        # Safe exactly at the current global minimum level.
        return view.min_priority is not None and task.priority[0] == view.min_priority[0]

    return OrderedAlgorithm(
        memory_bound_fraction=MEM_FRACTION,
        name="bfs",
        initial_items=(
            [(state.source, 0)]
            if seed_items is None
            else [(int(n), int(level)) for n, level in seed_items]
        ),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=BFS_PROPERTIES,
        safe_source_test=safe_source_test,
        level_of=level_of,
        # Label-correcting: out-of-order relaxations converge to the same
        # distance fixpoint (stale updates no-op), so the relaxed executor
        # may reorder BFS freely — order only bounds wasted work.
        relaxable=True,
    )
