"""BFS (§4.6).

Paper inputs: USA road network |V| = 23 M (small), uniform random
|V| = 67 M (large).  Scaled here to a 250×250 grid (road stand-in: ~500
levels) and a 64 000-node random graph (~15 fat levels).
"""

from ..common import AppSpec
from .app import (
    BFS_PROPERTIES,
    BFSState,
    make_algorithm,
    make_grid_state,
    make_random_state,
)
from .manual import run_manual, run_other
from .stream import BFSAdapter

SPEC = AppSpec(
    name="bfs",
    make_small=lambda: make_grid_state(250, 250, seed=3),
    make_large=lambda: make_random_state(64000, avg_degree=4.0, seed=3),
    algorithm=make_algorithm,
    snapshot=lambda state: state.snapshot(),
    validate=lambda state: state.validate(),
    serial_baseline="linear",
    run_serial_best=run_manual,
    run_manual=run_manual,
    run_other=run_other,
    auto_options={"level_windows": True},
    stream_adapter=BFSAdapter,
    relaxed_delta=2,
)

__all__ = [
    "BFSAdapter",
    "BFSState",
    "BFS_PROPERTIES",
    "SPEC",
    "make_algorithm",
    "make_grid_state",
    "make_random_state",
    "run_manual",
    "run_other",
]
