"""Hand-specialized BFS executors (§4.6).

``run_manual`` is the two-frontier level-synchronous BFS the paper
describes ("only two levels need to be maintained at a time"): no task
objects, no marking — just the current and next frontier arrays with one
barrier per level.

``run_other`` reimplements the shape of Leiserson & Schardl's bag-based
work-efficient parallel BFS: the same level-synchronous structure, but the
frontier is split into chunks ("pennants") handed to threads wholesale,
which amortizes scheduling to one operation per chunk rather than per node.
"""

from __future__ import annotations

from ...machine import Category, SimMachine
from ...runtime.base import LoopResult, inflate_execute
from .app import EDGE_WORK, MEM_FRACTION, NODE_WORK, BFSState

#: Bag chunk (pennant) size for the Leiserson–Schardl style executor.
BAG_CHUNK = 128


def _level_sync(
    state: BFSState, machine: SimMachine, chunk_size: int, schedule_per: str
) -> tuple[int, int]:
    """Shared level-synchronous core; returns (nodes visited, levels)."""
    cm = machine.cost_model
    graph, dist = state.graph, state.dist
    dist[state.source] = 0
    frontier = [state.source]
    visited = 1
    levels = 0
    while frontier:
        levels += 1
        next_frontier: list[int] = []
        costs = []
        for u in frontier:
            cost = NODE_WORK
            for v in graph.neighbors(u):
                cost += EDGE_WORK
                if dist[v] == -1:
                    dist[v] = dist[u] + 1
                    next_frontier.append(int(v))
                    visited += 1
            item = {Category.EXECUTE: inflate_execute(machine, cm.work_cost(cost), MEM_FRACTION)}
            if schedule_per == "node":
                # Array-based frontier: a fetch-and-add slot claim per node.
                item[Category.SCHEDULE] = 6.0
            costs.append(item)
        if schedule_per == "chunk":
            # One scheduling operation per pennant, not per node.
            chunks = max(1, (len(frontier) + chunk_size - 1) // chunk_size)
            for _ in range(chunks):
                costs.append({Category.SCHEDULE: cm.worklist_cost(machine.num_threads)})
        machine.run_phase(costs, chunk_size=chunk_size)
        frontier = next_frontier
    return visited, levels


def run_manual(state: BFSState, machine: SimMachine) -> LoopResult:
    """Two-frontier level-synchronous BFS."""
    visited, levels = _level_sync(state, machine, chunk_size=16, schedule_per="node")
    return LoopResult(
        algorithm="bfs",
        executor="manual-two-level",
        machine=machine,
        executed=visited,
        rounds=levels,
        metrics={"num_levels": levels},
    )


def run_other(state: BFSState, machine: SimMachine) -> LoopResult:
    """Bag-of-pennants level-synchronous BFS (Leiserson & Schardl style)."""
    visited, levels = _level_sync(
        state, machine, chunk_size=BAG_CHUNK, schedule_per="chunk"
    )
    return LoopResult(
        algorithm="bfs",
        executor="bag-bfs",
        machine=machine,
        executed=visited,
        rounds=levels,
        metrics={"num_levels": levels},
    )
