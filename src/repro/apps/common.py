"""Common application harness used by tests, examples and benchmarks.

Each application registers an :class:`AppSpec` exposing, uniformly, the four
implementations the paper compares (§5.1):

* ``serial``      — the optimized serial baseline (priority queue).
* ``kdg-auto``    — our programming model + property-selected KDG executor.
* ``kdg-manual``  — the KDG specialized by hand inside the application.
* ``other``       — a reimplementation of the third-party parallel code
  (absent for AVI and Billiards, as in the paper).

plus the study executors ``level-by-level`` and ``speculation`` used in
Figures 5, 12, 13 and 14.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from ..core.algorithm import OrderedAlgorithm
from ..machine import SimMachine
from ..runtime import EXECUTORS, LoopResult, choose_executor

#: The implementations Figure 11 compares.
PAPER_IMPLS = ("serial", "kdg-auto", "kdg-manual", "other")


@dataclass
class AppSpec:
    """One benchmark application and its implementations."""

    name: str
    make_small: Callable[[], Any]
    make_large: Callable[[], Any]
    #: Build the OrderedAlgorithm over a state object (fresh per run).
    algorithm: Callable[[Any], OrderedAlgorithm]
    #: Deterministic digest of final application state (equality oracle).
    snapshot: Callable[[Any], Any]
    #: Domain invariants checked after a run (raises AssertionError).
    validate: Callable[[Any], None]
    run_manual: Callable[[Any, SimMachine], LoopResult] | None = None
    run_other: Callable[[Any, SimMachine], LoopResult] | None = None
    #: Extra options for the auto executor (e.g. IKDG window mode).
    auto_options: dict[str, Any] = field(default_factory=dict)
    #: Serial baseline cost model (§5.1): "heap" for priority-queue serial
    #: codes (AVI, Billiards, DES), "linear" for sorted/structural loops
    #: (MST, LU, BFS, tree traversal).
    serial_baseline: str = "heap"
    #: Paper-grade *best* serial implementation, when the ordered-task
    #: serial loop is not it (e.g. BFS, where the optimized serial code
    #: processes each node once while the task formulation re-visits).
    #: Run on a 1-thread machine; defaults to the ordered serial executor.
    run_serial_best: Callable[[Any, SimMachine], LoopResult] | None = None
    #: Additional named implementations beyond the paper's four (e.g. the
    #: Time Warp comparator for DES).
    extra_impls: dict[str, Callable[[Any, SimMachine], LoopResult]] = field(
        default_factory=dict
    )
    #: Whether the multiset of committed tasks is the same for every
    #: serializable schedule.  False for apps whose bodies re-issue work
    #: based on state observed at their serialization point — billiards
    #: void predictions vary in number between schedules — in which case
    #: the oracle compares final-state digests but not task multisets.
    deterministic_task_set: bool = True
    #: Canonicalize a task priority for cross-executor comparison.  Some
    #: apps embed a creation counter in the priority as a FIFO tie-break
    #: (DES event ids); creation order is schedule-dependent, so the oracle
    #: strips it before comparing task multisets and last-writer digests.
    #: ``None`` compares priorities verbatim.
    oracle_task_key: Callable[[Any], Any] | None = None
    #: Cached result of :meth:`auto_executor` — the property-driven choice
    #: depends only on the algorithm's declarations, never on state, but
    #: probing it builds (and throws away) a full application state.
    _auto_name: str | None = field(default=None, repr=False, compare=False)

    def auto_executor(self) -> str:
        """The executor §3.6's rules select for this app's properties."""
        if self._auto_name is None:
            probe = self.algorithm(self.make_tiny())
            self._auto_name = choose_executor(probe.properties)
        return self._auto_name

    def make_tiny(self) -> Any:
        """Smallest state, for property probes; defaults to small."""
        return self.make_small()

    def run(self, state: Any, impl: str, machine: SimMachine, **options: Any) -> LoopResult:
        """Run one implementation over ``state`` on ``machine``."""
        if impl == "serial":
            options.setdefault("baseline", self.serial_baseline)
            return EXECUTORS["serial"](self.algorithm(state), machine=machine, **options)
        if impl == "serial-best":
            if self.run_serial_best is not None:
                return self.run_serial_best(state, machine, **options)
            options.setdefault("baseline", self.serial_baseline)
            return EXECUTORS["serial"](self.algorithm(state), machine=machine, **options)
        if impl == "kdg-auto":
            name = self.auto_executor()
            merged = {**self.auto_options, **options}
            return EXECUTORS[name](self.algorithm(state), machine=machine, **merged)
        if impl == "kdg-manual":
            if self.run_manual is None:
                raise ValueError(f"{self.name} has no manual executor")
            return self.run_manual(state, machine, **options)
        if impl == "other":
            if self.run_other is None:
                raise ValueError(f"{self.name} has no third-party implementation")
            return self.run_other(state, machine, **options)
        if impl in self.extra_impls:
            return self.extra_impls[impl](state, machine, **options)
        if impl in EXECUTORS:
            return EXECUTORS[impl](self.algorithm(state), machine=machine, **options)
        raise ValueError(f"unknown implementation {impl!r}")

    def has_impl(self, impl: str) -> bool:
        if impl == "kdg-manual":
            return self.run_manual is not None
        if impl == "other":
            return self.run_other is not None
        return (
            impl in ("serial", "serial-best", "kdg-auto")
            or impl in EXECUTORS
            or impl in self.extra_impls
        )
