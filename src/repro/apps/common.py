"""Common application harness used by tests, examples and benchmarks.

Each application registers an :class:`AppSpec` exposing, uniformly, the four
implementations the paper compares (§5.1):

* ``serial``      — the optimized serial baseline (priority queue).
* ``kdg-auto``    — our programming model + property-selected KDG executor.
* ``kdg-manual``  — the KDG specialized by hand inside the application.
* ``other``       — a reimplementation of the third-party parallel code
  (absent for AVI and Billiards, as in the paper).

plus the study executors ``level-by-level`` and ``speculation`` used in
Figures 5, 12, 13 and 14.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from ..core.algorithm import OrderedAlgorithm
from ..machine import SimMachine
from ..runtime import EXECUTORS, LoopResult, choose_executor

#: The implementations Figure 11 compares.
PAPER_IMPLS = ("serial", "kdg-auto", "kdg-manual", "other")


@dataclass
class AppSpec:
    """One benchmark application and its implementations."""

    name: str
    make_small: Callable[[], Any]
    make_large: Callable[[], Any]
    #: Build the OrderedAlgorithm over a state object (fresh per run).
    algorithm: Callable[[Any], OrderedAlgorithm]
    #: Deterministic digest of final application state (equality oracle).
    snapshot: Callable[[Any], Any]
    #: Domain invariants checked after a run (raises AssertionError).
    validate: Callable[[Any], None]
    run_manual: Callable[[Any, SimMachine], LoopResult] | None = None
    run_other: Callable[[Any, SimMachine], LoopResult] | None = None
    #: Extra options for the auto executor (e.g. IKDG window mode).
    auto_options: dict[str, Any] = field(default_factory=dict)
    #: Serial baseline cost model (§5.1): "heap" for priority-queue serial
    #: codes (AVI, Billiards, DES), "linear" for sorted/structural loops
    #: (MST, LU, BFS, tree traversal).
    serial_baseline: str = "heap"
    #: Paper-grade *best* serial implementation, when the ordered-task
    #: serial loop is not it (e.g. BFS, where the optimized serial code
    #: processes each node once while the task formulation re-visits).
    #: Run on a 1-thread machine; defaults to the ordered serial executor.
    run_serial_best: Callable[[Any, SimMachine], LoopResult] | None = None
    #: Additional named implementations beyond the paper's four (e.g. the
    #: Time Warp comparator for DES).
    extra_impls: dict[str, Callable[[Any, SimMachine], LoopResult]] = field(
        default_factory=dict
    )
    #: Whether the multiset of committed tasks is the same for every
    #: serializable schedule.  False for apps whose bodies re-issue work
    #: based on state observed at their serialization point — billiards
    #: void predictions vary in number between schedules — in which case
    #: the oracle compares final-state digests but not task multisets.
    deterministic_task_set: bool = True
    #: Canonicalize a task priority for cross-executor comparison.  Some
    #: apps embed a creation counter in the priority as a FIFO tie-break
    #: (DES event ids); creation order is schedule-dependent, so the oracle
    #: strips it before comparing task multisets and last-writer digests.
    #: ``None`` compares priorities verbatim.
    oracle_task_key: Callable[[Any], Any] | None = None
    #: :class:`~repro.core.mutations.MutationAdapter` subclass wiring this
    #: app into :class:`~repro.runtime.session.KineticSession`; ``None``
    #: means the app has no streaming support.
    stream_adapter: type | None = None
    #: Dedicated tiny-state builder for property probes and oracle inputs;
    #: ``None`` falls back to ``make_small``.
    make_tiny_fn: Callable[[], Any] | None = None
    #: Preferred delta-bucket width for the relaxed executor's fused-bucket
    #: mode (used by the oracle's ``relaxed-delta`` variant and the bench
    #: configs).  ``None`` means the app declares no delta-friendly integer
    #: levels — the oracle then skips the delta variant.
    relaxed_delta: int | None = None
    #: Cached result of :meth:`auto_executor` — the property-driven choice
    #: depends only on the algorithm's declarations, never on state, but
    #: probing it builds (and throws away) a full application state.
    _auto_name: str | None = field(default=None, repr=False, compare=False)
    #: Cached result of :meth:`verified_executor` (inference audit passed).
    _verified_name: str | None = field(default=None, repr=False, compare=False)

    def auto_executor(self) -> str:
        """The executor §3.6's rules select for this app's properties."""
        if self._auto_name is None:
            probe = self.algorithm(self.make_tiny())
            self._auto_name = choose_executor(probe.properties)
        return self._auto_name

    def verified_executor(self) -> str:
        """:meth:`auto_executor` on declarations *audited* by inference.

        Runs the static inference pass over the app's source and raises
        :class:`~repro.analysis.infer.UnsoundDeclarationError` if any
        effectively declared property is refuted.  A sound declaration set
        passes through unchanged, so the selected executor — and therefore
        the schedule — is bit-identical to the declared mode.
        """
        if self._verified_name is None:
            from ..analysis.infer import verified_properties

            self._verified_name = choose_executor(verified_properties(self.name))
        return self._verified_name

    def _apply_properties_mode(self, cfg: Any) -> str:
        """Resolve ``cfg.properties`` to the auto-executor name to run."""
        if getattr(cfg, "properties", "declared") == "inferred":
            return self.verified_executor()
        return self.auto_executor()

    def make_tiny(self) -> Any:
        """Smallest state, for property probes; defaults to small."""
        if self.make_tiny_fn is not None:
            return self.make_tiny_fn()
        return self.make_small()

    def _executor_config(self, options: dict[str, Any], **defaults: Any):
        """Build the :class:`~repro.runtime.base.RunConfig` for an
        ordered-model executor run.

        ``options`` may be RunConfig fields (the common case) or a single
        ``config=RunConfig(...)`` passthrough; mixing the two is an error.
        Constructing the config here keeps internal call sites off the
        executors' legacy-kwarg deprecation shim.  ``defaults`` are
        app-level settings (``auto_options``, the serial baseline); they
        fill any config field the caller left at its dataclass default, so
        e.g. BFS keeps ``level_windows=True`` under a passed-in config.
        """
        import dataclasses

        from ..runtime.base import RunConfig

        config = options.pop("config", None)
        if config is not None:
            if options:
                raise TypeError(
                    f"{self.name}: pass either config= or executor options, "
                    f"not both (got {sorted(options)})"
                )
            base = RunConfig()
            fill = {
                key: value
                for key, value in defaults.items()
                if getattr(config, key) == getattr(base, key)
            }
            return dataclasses.replace(config, **fill) if fill else config
        return RunConfig(**{**defaults, **options})

    def run(self, state: Any, impl: str, machine: SimMachine, **options: Any) -> LoopResult:
        """Run one implementation over ``state`` on ``machine``.

        For the ordered-model executors, ``options`` are
        :class:`~repro.runtime.base.RunConfig` fields (or one ``config=``
        instance); hand-specialized implementations (``kdg-manual``,
        ``other``, app extras) receive ``options`` verbatim.
        """
        if impl == "serial" or (impl == "serial-best" and self.run_serial_best is None):
            cfg = self._executor_config(options, baseline=self.serial_baseline)
            if getattr(cfg, "properties", "declared") == "inferred":
                self.verified_executor()  # audit only; raises when unsound
            return EXECUTORS["serial"](self.algorithm(state), machine, cfg)
        if impl == "serial-best":
            return self.run_serial_best(state, machine, **options)
        if impl == "kdg-auto":
            cfg = self._executor_config(options, **self.auto_options)
            name = self._apply_properties_mode(cfg)
            return EXECUTORS[name](self.algorithm(state), machine, cfg)
        if impl == "kdg-manual":
            if self.run_manual is None:
                raise ValueError(f"{self.name} has no manual executor")
            return self.run_manual(state, machine, **options)
        if impl == "other":
            if self.run_other is None:
                raise ValueError(f"{self.name} has no third-party implementation")
            return self.run_other(state, machine, **options)
        if impl in self.extra_impls:
            return self.extra_impls[impl](state, machine, **options)
        if impl in EXECUTORS:
            cfg = self._executor_config(options)
            if getattr(cfg, "properties", "declared") == "inferred":
                self.verified_executor()  # audit only; raises when unsound
            return EXECUTORS[impl](self.algorithm(state), machine, cfg)
        raise ValueError(f"unknown implementation {impl!r}")

    def has_impl(self, impl: str) -> bool:
        if impl == "kdg-manual":
            return self.run_manual is not None
        if impl == "other":
            return self.run_other is not None
        return (
            impl in ("serial", "serial-best", "kdg-auto")
            or impl in EXECUTORS
            or impl in self.extra_impls
        )
