"""The paper's seven benchmark applications (§4), under a uniform harness."""

from . import avi, bfs, billiards, des, lu, mst, treesum
from .common import PAPER_IMPLS, AppSpec

#: Registry in the order of the paper's Figure 11a.
APPS: dict[str, AppSpec] = {
    "avi": avi.SPEC,
    "mst": mst.SPEC,
    "billiards": billiards.SPEC,
    "lu": lu.SPEC,
    "des": des.SPEC,
    "bfs": bfs.SPEC,
    "treesum": treesum.SPEC,
}

__all__ = ["APPS", "AppSpec", "PAPER_IMPLS"]
