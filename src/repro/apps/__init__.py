"""The paper's seven benchmark applications (§4), under a uniform harness,
plus k-core decomposition — the streaming-session flagship workload — and
the relaxed-executor flagships SSSP and A*."""

from . import astar, avi, bfs, billiards, des, kcore, lu, mst, sssp, treesum
from .common import PAPER_IMPLS, AppSpec

#: Registry in the order of the paper's Figure 11a; post-paper additions
#: (k-core, the relaxed-scheduling workloads sssp and astar) follow.
APPS: dict[str, AppSpec] = {
    "avi": avi.SPEC,
    "mst": mst.SPEC,
    "billiards": billiards.SPEC,
    "lu": lu.SPEC,
    "des": des.SPEC,
    "bfs": bfs.SPEC,
    "treesum": treesum.SPEC,
    "kcore": kcore.SPEC,
    "sssp": sssp.SPEC,
    "astar": astar.SPEC,
}

__all__ = ["APPS", "AppSpec", "PAPER_IMPLS"]
