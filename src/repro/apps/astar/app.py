"""A* point-to-point search on grid meshes, in the ordered model.

A task ``(n, g)`` lowers node ``n``'s path cost from the start to ``g``;
tasks are ordered by ``f = g + h(n)`` where ``h`` is the Manhattan-distance
heuristic.  On a grid with positive integer weights ``h`` is *consistent*
(one step changes the Manhattan distance by at most 1 and costs at least
1), so ``f`` never decreases along a path and expanding in ``f`` order is
Dijkstra's order under a re-weighting.  Once the goal is labelled, any task
with ``f >= g(goal)`` is pruned: a consistent heuristic makes ``f`` a lower
bound on every start-goal path through the task's node, so no pruned task
can improve the goal.  The goal label — the app's observable result — is
therefore exactly the shortest-path distance under every serializable
schedule, while the set of *expanded* nodes is schedule-sensitive in
general; the snapshot digests the goal label only.

Like SSSP, A* is relaxable: relaxation reorders expansions and can only
cost wasted work, never goal optimality (pruning compares against a live
upper bound that only decreases).

Inference audit (``repro infer astar``): ``monotonic`` holds by heuristic
consistency (``f(child) = g + w + h(v) >= g + h(u) = f(parent)``) —
the symbolic comparator cannot see this through the ``h`` closure, so the
verdict is *unknown*, not refuted; ``structure_based_rw_sets`` is proved.
"""

from __future__ import annotations

import numpy as np

from ...core.algorithm import OrderedAlgorithm, SourceView
from ...core.context import BodyContext, RWSetContext
from ...core.properties import AlgorithmProperties
from ...core.task import Task
from ...inputs.graphs import grid2d
from ..sssp.app import dijkstra_distances

ASTAR_PROPERTIES = AlgorithmProperties(
    monotonic=True,
    structure_based_rw_sets=True,
    stable_source=False,
)

#: Memory-bound share of task execution (bandwidth model, DESIGN.md).
MEM_FRACTION = 0.9

#: Base ops per expansion plus ops per scanned edge; an expansion also
#: evaluates the heuristic per neighbor.
NODE_WORK = 100.0
EDGE_WORK = 35.0

#: Default delta-bucket width for the relaxed executor (f-value buckets).
DEFAULT_DELTA = 8


class AStarState:
    """Grid mesh, start/goal corners, and the g-labels being computed."""

    def __init__(self, nx: int, ny: int, max_weight: int = 15, seed: int = 0):
        graph, _, _ = grid2d(nx, ny, max_weight=max_weight, seed=seed)
        self.graph = graph
        self.nx = nx
        self.ny = ny
        self.start = 0
        self.goal = nx * ny - 1
        self.g = np.full(graph.num_nodes, -1, dtype=np.int64)

    def heuristic(self, node: int) -> int:
        """Manhattan distance to the goal (consistent: weights are >= 1)."""
        ix, iy = node % self.nx, node // self.nx
        gx, gy = self.goal % self.nx, self.goal // self.nx
        return abs(ix - gx) + abs(iy - gy)

    def snapshot(self) -> bytes:
        """Digest of the observable result: the goal's path cost.

        Expanded-node labels vary between serializable schedules (pruning
        races against expansion order at equal ``f``), so they stay out of
        the cross-executor equality digest.
        """
        return int(self.g[self.goal]).to_bytes(8, "little", signed=True)

    def validate(self) -> None:
        """Goal label must be the true shortest-path distance; every other
        label must be a real path cost (never below the true distance)."""
        expect = dijkstra_distances(self.graph, self.start)
        assert self.g[self.start] == 0
        assert self.g[self.goal] == expect[self.goal], (
            f"goal label {int(self.g[self.goal])} != "
            f"shortest path {int(expect[self.goal])}"
        )
        labelled = np.nonzero(self.g != -1)[0]
        low = labelled[self.g[labelled] < expect[labelled]]
        assert low.size == 0, f"label below true distance at node {int(low[0])}"


def make_grid_state(nx: int, ny: int, max_weight: int = 15, seed: int = 0) -> AStarState:
    return AStarState(nx, ny, max_weight=max_weight, seed=seed)


def make_algorithm(state: AStarState) -> OrderedAlgorithm:
    """The ordered A* algorithm over ``state``."""
    graph, g = state.graph, state.g
    goal = state.goal
    heuristic = state.heuristic
    weights = graph.edge_weights
    column_ids = graph.column_ids

    def priority(item: tuple[int, int]) -> tuple[int, int]:
        node, dist = item
        return (dist + heuristic(node), node)

    def level_of(item: tuple[int, int]) -> int:
        return item[1] + heuristic(item[0])

    def visit_rw_sets(item: tuple[int, int], ctx: RWSetContext) -> None:
        ctx.write(("node", item[0]))

    def apply_update(item: tuple[int, int], ctx: BodyContext) -> None:
        node, dist = item
        ctx.access(("node", node))
        ctx.work(NODE_WORK)
        if g[node] != -1 and g[node] <= dist:
            return  # stale update
        goal_cost = g[goal]
        if goal_cost != -1 and dist + heuristic(node) >= goal_cost:
            return  # pruned: cannot improve the goal (consistent heuristic)
        g[node] = dist
        for eid in graph.edge_range(node):
            ctx.work(EDGE_WORK)
            nd = dist + int(weights[eid])
            neighbor = int(column_ids[eid])
            labelled = g[neighbor]
            if labelled == -1 or labelled > nd:
                ctx.push((neighbor, nd))

    def safe_source_test(task: Task, view: SourceView) -> bool:
        # Safe exactly at the current global minimum f-value.
        return view.min_priority is not None and task.priority[0] == view.min_priority[0]

    return OrderedAlgorithm(
        memory_bound_fraction=MEM_FRACTION,
        name="astar",
        initial_items=[(state.start, 0)],
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=ASTAR_PROPERTIES,
        safe_source_test=safe_source_test,
        level_of=level_of,
        relaxable=True,
    )
