"""A* point-to-point search on grid meshes.

Corner-to-corner queries on weighted 2-D grids: the Manhattan heuristic
steers expansion into a corridor around the optimal path, and goal pruning
caps the explored region.  The observable result (the goal's path cost)
validates against a reference Dijkstra; expanded-node sets are
schedule-sensitive, so cross-executor digests compare the goal label only.
"""

from ..common import AppSpec
from .app import (
    ASTAR_PROPERTIES,
    DEFAULT_DELTA,
    AStarState,
    make_algorithm,
    make_grid_state,
)

SPEC = AppSpec(
    name="astar",
    make_small=lambda: make_grid_state(60, 60, seed=7),
    make_large=lambda: make_grid_state(160, 160, seed=7),
    algorithm=make_algorithm,
    snapshot=lambda state: state.snapshot(),
    validate=lambda state: state.validate(),
    serial_baseline="heap",
    make_tiny_fn=lambda: make_grid_state(8, 8, seed=1),
    relaxed_delta=DEFAULT_DELTA,
    # Goal pruning reads the goal label outside the declared rw-set, so the
    # set of *expanded* tasks races at equal f-values between serializable
    # schedules (like billiards' void re-predictions).  The observable
    # result — the goal label the snapshot digests — is schedule-invariant.
    deterministic_task_set=False,
)

__all__ = [
    "ASTAR_PROPERTIES",
    "AStarState",
    "DEFAULT_DELTA",
    "SPEC",
    "make_algorithm",
    "make_grid_state",
]
