"""Streaming mutation adapter for DES (live stimulus injection).

A streaming DES session keeps the gate-level simulation *open*: the state
is built with ``defer_flush=True`` so no flush stimulus ever closes the
channels, and each :class:`~repro.core.mutations.InjectEvent` applies a
new input vector at a simulation time.  Repair runs resume from the live
channel state — per-port clocks, FIFO queues, wire values — so only the
newly injected activity is simulated, never the already-drained past.

DES is the *ordered*-watermark case: simulated time already committed is
irrevocable (rolling it back would mean un-processing events), so an
injection at or before the committed-priority watermark raises
:class:`~repro.core.mutations.WatermarkError` instead of silently
reordering history.  Repairs run under the level-by-level executor, which
drains strictly by time level and therefore never needs the Chandy–Misra
flush protocol to terminate.
"""

from __future__ import annotations

from ...core.mutations import InjectEvent, MutationAdapter, MutationError, WatermarkError
from ...inputs.circuits import kogge_stone_adder, tree_multiplier
from .app import _random_vectors, make_algorithm
from .simulation import DESState


def make_stream_multiplier_state(
    bits: int = 8, vectors: int = 4, seed: int = 0
) -> DESState:
    """An open (flush-deferred) tree-multiplier simulation for sessions."""
    circuit = tree_multiplier(bits)
    return DESState(
        circuit, _random_vectors(circuit, vectors, seed), defer_flush=True
    )


def make_stream_adder_state(
    bits: int = 16, vectors: int = 6, seed: int = 0
) -> DESState:
    """An open (flush-deferred) Kogge–Stone adder simulation for sessions."""
    circuit = kogge_stone_adder(bits)
    return DESState(
        circuit, _random_vectors(circuit, vectors, seed), defer_flush=True
    )


class DESAdapter(MutationAdapter):
    supported = (InjectEvent,)
    watermark_policy = "ordered"
    executor = "level-by-level"
    level_windows = False

    def __init__(self, state: DESState):
        if not state.defer_flush:
            raise ValueError(
                "des: streaming sessions need a DESState built with "
                "defer_flush=True (a flushed simulation has closed its "
                "channels; see make_stream_multiplier_state)"
            )
        super().__init__(state)

    def make_algorithm(self, seed_items=None, state=None):
        return make_algorithm(
            self.state if state is None else state, seed_items
        )

    def fork_cold(self) -> DESState:
        # The injected schedule, replayed in injection order: the cold
        # state assigns event ids in the same sequence the live session
        # did, so stimulus arrival (and the per-link epsilon bumps) match.
        return DESState(
            self.state.circuit,
            [],
            self.state.period,
            defer_flush=True,
            schedule=[(t, dict(vec)) for t, vec in self.state._schedule],
        )

    def check_watermark(self, mutation, watermark) -> None:
        # watermark is the highest committed priority (time, gate, port,
        # eid); committed simulated time cannot be re-entered.
        if mutation.time <= watermark[0]:
            raise WatermarkError(mutation, (mutation.time,), watermark)

    def apply(self, mutation) -> list:
        vector = mutation.payload
        if not isinstance(vector, dict):
            raise MutationError(
                f"des: InjectEvent payload must be an input-vector dict, "
                f"got {type(vector).__name__}"
            )
        unknown = set(vector) - set(self.state.circuit.inputs)
        if unknown:
            raise MutationError(
                f"des: unknown circuit inputs {sorted(unknown)}"
            )
        return self.state.inject_vector(float(mutation.time), vector)
