"""Hand-specialized DES executors (§4.5).

``run_manual`` exploits the fact that a DES event's rw-set is exactly one
station: the KDG degenerates to one priority queue per station whose head
is the station's source.  No task graph, no rw-set machinery — an
event-driven schedule over station heads filtered by the Chandy–Misra test.

``run_other`` is the Chandy–Misra comparator (Lonestar's implementation):
identical scheduling, but stations emit explicit *null messages* when their
output does not change, advancing downstream channel clocks eagerly at the
price of many extra messages.
"""

from __future__ import annotations

from ...machine import Category, SimMachine, simulate_async
from ...runtime.base import LoopResult, inflate_execute
from .app import MEM_FRACTION
from .simulation import DESState, Event

#: Cycle cost of one per-station priority-queue operation.
STATION_PQ_COST = 20.0


def _event_key(item: Event) -> tuple[float, int, int, int]:
    return (item[0], item[1], item[2], item[3])


def _run_station_queues(state: DESState, machine: SimMachine, label: str) -> LoopResult:
    cm = machine.cost_model
    released: set[int] = set()
    executed = {"count": 0}

    def release_head(gate: int, exposed: list[Event]) -> None:
        head = state.station_head(gate)
        if head is None or head[3] in released:
            return
        if state.is_safe_event(head):
            released.add(head[3])
            exposed.append(head)

    def step(item: Event) -> tuple[dict, list[Event]]:
        emitted, work = state.process_event(item)
        executed["count"] += 1
        exposed: list[Event] = []
        affected = {item[1]}
        affected.update(child[1] for child in emitted)
        for gate in sorted(affected):
            release_head(gate, exposed)
        breakdown = {
            Category.EXECUTE: inflate_execute(machine, cm.work_cost(work), MEM_FRACTION)
            + cm.worklist_cost(machine.num_threads),
            Category.SCHEDULE: STATION_PQ_COST * (1 + len(emitted)),
            Category.SAFETY_TEST: (cm.safe_test_base + 10.0) * max(1, len(affected)),
        }
        return breakdown, exposed

    initial: list[Event] = []
    for gate in range(state.circuit.num_gates):
        release_head(gate, initial)
    simulate_async(machine, initial, _event_key, step)
    leftovers = sum(
        len(q) for queues in state.pending for q in queues
    )
    if leftovers:
        raise RuntimeError(f"DES {label} stalled with {leftovers} events pending")
    return LoopResult(
        algorithm="des",
        executor=label,
        machine=machine,
        executed=executed["count"],
        metrics={"null_events": state.null_events},
    )


def run_manual(state: DESState, machine: SimMachine) -> LoopResult:
    """Per-station priority queues; sources are station heads."""
    return _run_station_queues(state, machine, "manual-station-pq")


def run_other(state: DESState, machine: SimMachine) -> LoopResult:
    """Chandy–Misra with explicit null messages."""
    state.emit_nulls = True
    return _run_station_queues(state, machine, "chandy-misra")
