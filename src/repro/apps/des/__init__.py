"""DES (§4.5).

Paper inputs: 12-bit tree multiplier (small), 64-bit Kogge–Stone adder
(large).  Scaled here to an 8-bit tree multiplier and a 32-bit Kogge–Stone
adder with random stimulus vectors.
"""

from ..common import AppSpec
from .app import (
    DES_PROPERTIES,
    make_adder_state,
    make_algorithm,
    make_multiplier_state,
)
from .manual import run_manual, run_other
from .stream import (
    DESAdapter,
    make_stream_adder_state,
    make_stream_multiplier_state,
)
from .timewarp import TimeWarpDES, run_timewarp
from .simulation import DESState

SPEC = AppSpec(
    name="des",
    make_small=lambda: make_multiplier_state(8, vectors=8, seed=4),
    make_large=lambda: make_adder_state(32, vectors=12, seed=4),
    algorithm=make_algorithm,
    snapshot=lambda state: state.snapshot(),
    validate=lambda state: state.validate(),
    run_manual=run_manual,
    run_other=run_other,
    extra_impls={"time-warp": run_timewarp},
    # DES priorities are (time, gate, port, eid); eid is a global creation
    # counter used only as a FIFO tie-break, and creation order is
    # schedule-dependent.  The logical event (time, gate, port) is not.
    oracle_task_key=lambda priority: priority[:3],
    stream_adapter=DESAdapter,
)

__all__ = [
    "DESAdapter",
    "DESState",
    "DES_PROPERTIES",
    "SPEC",
    "make_adder_state",
    "make_algorithm",
    "make_multiplier_state",
    "make_stream_adder_state",
    "make_stream_multiplier_state",
    "run_manual",
    "run_other",
    "run_timewarp",
    "TimeWarpDES",
]
