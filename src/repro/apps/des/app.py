"""DES in the ordered programming model (§4.5).

A task consumes one event at one station (gate); its rw-set is the target
station.  Events must appear to be processed in global time-stamp order,
but the Chandy–Misra insight makes a *local* safe-source test possible:
with FIFO links, a station that can bound every input channel's clock may
process its earliest event regardless of global time.  DES is therefore
unstable-source with a local test, monotonic (gate delays are positive) and
structure-based — the automatic runtime selects the *asynchronous* explicit
KDG executor, just like AVI (§4.5).

Inference audit (``repro infer des``): ``structure_based_rw_sets`` is
*proved*, and so is ``local_safe_source_test`` — the interprocedural
summary shows the Chandy–Misra test never touches the ``SourceView``,
turning the declaration the asynchronous executor depends on into a
theorem.  ``monotonic`` stays ``unknown`` (gate delays live in state) and
is cross-validated dynamically.
"""

from __future__ import annotations

from ...core.algorithm import OrderedAlgorithm, SourceView
from ...core.context import BodyContext, RWSetContext
from ...core.properties import AlgorithmProperties
from ...core.task import Task
from ...inputs.circuits import Circuit, kogge_stone_adder, tree_multiplier
from .simulation import DESState, Event

DES_PROPERTIES = AlgorithmProperties(
    monotonic=True,
    structure_based_rw_sets=True,
    local_safe_source_test=True,
    stable_source=False,
)

#: Memory-bound share of task execution (bandwidth model, DESIGN.md).
MEM_FRACTION = 0.7

#: Extra cycles one Chandy–Misra port scan costs.
SAFE_TEST_WORK = 30.0


def _random_vectors(circuit: Circuit, count: int, seed: int) -> list[dict[str, int]]:
    import numpy as np

    rng = np.random.RandomState(seed)
    names = sorted(circuit.inputs)
    return [
        {name: int(rng.randint(0, 2)) for name in names} for _ in range(count)
    ]


def make_adder_state(bits: int, vectors: int = 12, seed: int = 0) -> DESState:
    """The paper's DES-large family: a Kogge–Stone adder."""
    circuit = kogge_stone_adder(bits)
    return DESState(circuit, _random_vectors(circuit, vectors, seed))


def make_multiplier_state(bits: int, vectors: int = 8, seed: int = 0) -> DESState:
    """The paper's DES-small family: a tree multiplier."""
    circuit = tree_multiplier(bits)
    return DESState(circuit, _random_vectors(circuit, vectors, seed))


def make_algorithm(
    state: DESState, seed_items: list[Event] | None = None
) -> OrderedAlgorithm:
    """The ordered DES algorithm over ``state``.

    ``seed_items`` replaces the cold start (``state.initial_events``) with
    freshly injected stimulus events (streaming sessions): the simulation
    resumes from its live channel state instead of replaying from t = 0.
    """
    def priority(item: Event) -> tuple[float, int, int, int]:
        time, gate, port, eid, _, _ = item
        return (time, gate, port, eid)

    def level_of(item: Event) -> float:
        return item[0]

    def visit_rw_sets(item: Event, ctx: RWSetContext) -> None:
        ctx.write(("gate", item[1]))

    def apply_update(item: Event, ctx: BodyContext) -> None:
        ctx.access(("gate", item[1]))
        emitted, work = state.process_event(item)
        ctx.work(work)
        for child in emitted:
            ctx.push(child)

    def safe_source_test(task: Task, view: SourceView) -> bool:
        return state.is_safe_event(task.item)

    return OrderedAlgorithm(
        memory_bound_fraction=MEM_FRACTION,
        name="des",
        initial_items=(
            state.initial_events if seed_items is None else list(seed_items)
        ),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=DES_PROPERTIES,
        safe_source_test=safe_source_test,
        safe_test_work=SAFE_TEST_WORK,
        level_of=level_of,
    )
