"""Time Warp: optimistic parallel DES (Jefferson [21], the paper's §6).

The paper contrasts the KDG's *conservative* scheduling with Time Warp's
speculation: stations process events eagerly in local-time order and, when
a straggler (an event earlier than the station's local virtual time)
arrives, the station **rolls back** — restoring a state snapshot, sending
anti-messages that annihilate or cascade-undo everything it wrongly sent,
and reprocessing.  No safe-source test, no dependence graph, but state
saving on every event and wasted work on every rollback.

This is a faithful logical implementation (snapshots, anti-message
cascades, annihilation) driven by the simulated machine: workers grab the
globally earliest unprocessed event; semantic application happens at
completion time, so in-flight overlap between neighboring stations is what
produces stragglers, exactly as wall-clock races do in a real Time Warp.

The final circuit state is identical to the conservative executors' — the
test suite checks it — only the schedule and the overhead differ.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ...inputs.circuits import GATE_FUNCS
from ...machine import Category, SimMachine
from ...runtime.base import LoopResult, inflate_execute
from .app import MEM_FRACTION
from .simulation import EVENT_WORK_BASE, EVENT_WORK_PER_PORT, LINK_EPS, DESState

#: Time Warp cost constants (cycles).
STATE_SAVE_COST = 45.0
ROLLBACK_BASE = 120.0
ROLLBACK_PER_EVENT = 80.0
ANTI_MESSAGE_COST = 30.0

#: TW event tuple: (time, gate, port, eid, value) — values only, no flushes.
TWEvent = tuple[float, int, int, int, int]


def _key(event: TWEvent) -> tuple[float, int, int, int]:
    return (event[0], event[1], event[2], event[3])


@dataclass
class _Processed:
    """One optimistically processed event, with everything needed to undo it."""

    event: TWEvent
    saved_inputs: list[int]
    saved_output: int
    emitted: list[TWEvent] = field(default_factory=list)


class TimeWarpDES:
    """Optimistic gate-level simulator with rollback."""

    def __init__(self, state: DESState):
        # Reuse the conservative state object's circuit and stimulus plan,
        # but keep private station state (Time Warp has no channel clocks).
        self.circuit = state.circuit
        self.vectors = state.vectors
        self.period = state.period
        self.nports = list(state.nports)
        self.input_vals = [[0] * n for n in self.nports]
        self.output_val = self._initial_outputs()
        self.processed: list[list[_Processed]] = [[] for _ in self.circuit.gates]
        self._next_eid = 0
        self._last_emit: dict[tuple[int, int], float] = {}
        self.unprocessed: list[tuple[tuple, TWEvent]] = []
        self.annihilated: set[int] = set()
        self.events_processed = 0
        self.rollbacks = 0
        self.events_undone = 0
        self.anti_messages = 0
        for event in self._build_stimulus():
            heapq.heappush(self.unprocessed, (_key(event), event))

    # ------------------------------------------------------------------
    def _initial_outputs(self) -> list[int]:
        values = [0] * self.circuit.num_gates
        for gid in self.circuit._topological_order():
            gate = self.circuit.gates[gid]
            if gate.kind != "INPUT":
                values[gid] = GATE_FUNCS[gate.kind]([values[s] for s in gate.fanin])
        return values

    def _make_event(self, time: float, gate: int, port: int, value: int) -> TWEvent:
        link = (gate, port)
        time = max(time, self._last_emit.get(link, -1.0) + LINK_EPS)
        self._last_emit[link] = time
        eid = self._next_eid
        self._next_eid += 1
        return (time, gate, port, eid, value)

    def _build_stimulus(self) -> list[TWEvent]:
        events = []
        current = {name: 0 for name in self.circuit.inputs}
        for k, vector in enumerate(self.vectors):
            t = k * self.period
            for name, gid in self.circuit.inputs.items():
                value = int(vector.get(name, current[name]))
                if value != current[name]:
                    current[name] = value
                    events.append(self._make_event(t, gid, 0, value))
        return events

    # ------------------------------------------------------------------
    def lvt(self, gate: int) -> tuple:
        """Local virtual time: key of the last processed event at ``gate``."""
        history = self.processed[gate]
        return _key(history[-1].event) if history else (-1.0, -1, -1, -1)

    def _apply(self, event: TWEvent) -> tuple[list[TWEvent], float]:
        """Process one event at its station (state must be time-consistent)."""
        time, gate_id, port, eid, value = event
        gate = self.circuit.gates[gate_id]
        record = _Processed(
            event,
            saved_inputs=list(self.input_vals[gate_id]),
            saved_output=self.output_val[gate_id],
        )
        self.input_vals[gate_id][port] = value
        new_out = GATE_FUNCS[gate.kind](
            self.input_vals[gate_id][: max(1, len(gate.fanin))]
        )
        work = EVENT_WORK_BASE + EVENT_WORK_PER_PORT * self.nports[gate_id]
        if new_out != self.output_val[gate_id]:
            self.output_val[gate_id] = new_out
            for tgt, tport in gate.fanout:
                child = self._make_event(time + gate.delay, tgt, tport, new_out)
                record.emitted.append(child)
                heapq.heappush(self.unprocessed, (_key(child), child))
        self.processed[gate_id].append(record)
        self.events_processed += 1
        return list(record.emitted), work

    def _rollback(self, gate_id: int, before: tuple, annihilate_eid: int | None) -> float:
        """Undo processed events at ``gate_id`` with key ≥ ``before``.

        Undone events re-enter the pool (except an annihilated one); their
        emissions are cancelled with anti-messages, possibly cascading.
        Returns the cycles this rollback costs.
        """
        history = self.processed[gate_id]
        if not history or _key(history[-1].event) < before:
            return 0.0
        self.rollbacks += 1
        cost = ROLLBACK_BASE
        undone: list[_Processed] = []
        while history and _key(history[-1].event) >= before:
            undone.append(history.pop())
        # Restore the state from before the earliest undone event.
        self.input_vals[gate_id] = list(undone[-1].saved_inputs)
        self.output_val[gate_id] = undone[-1].saved_output
        for record in undone:
            self.events_undone += 1
            cost += ROLLBACK_PER_EVENT
            eid = record.event[3]
            if eid == annihilate_eid:
                pass  # the anti-message and this positive copy annihilate
            else:
                heapq.heappush(self.unprocessed, (_key(record.event), record.event))
            for child in record.emitted:
                cost += self._send_anti_message(child)
        return cost

    def _send_anti_message(self, event: TWEvent) -> float:
        """Cancel ``event`` wherever its positive copy currently is."""
        self.anti_messages += 1
        cost = ANTI_MESSAGE_COST
        eid = event[3]
        target = event[1]
        history = self.processed[target]
        if history and _key(history[-1].event) >= _key(event):
            processed_eids = {record.event[3] for record in history}
            if eid in processed_eids:
                cost += self._rollback(target, _key(event), annihilate_eid=eid)
                return cost
        # Not processed (yet): annihilate it in the pool, lazily.
        self.annihilated.add(eid)
        return cost

    # ------------------------------------------------------------------
    def receive(self, event: TWEvent) -> tuple[list[TWEvent], float, float]:
        """Deliver one event: rollback if straggler, then apply.

        Returns (emissions, execute_cycles, rollback_cycles).
        """
        gate_id = event[1]
        rollback_cost = 0.0
        if _key(event) < self.lvt(gate_id):
            rollback_cost = self._rollback(gate_id, _key(event), annihilate_eid=None)
        emitted, work = self._apply(event)
        return emitted, work, rollback_cost

    def snapshot(self) -> tuple:
        return (
            tuple(self.output_val),
            tuple(tuple(vals) for vals in self.input_vals),
        )

    def output_values(self) -> dict[str, int]:
        return {
            name: self.output_val[gid] for name, gid in self.circuit.outputs.items()
        }


def run_timewarp(state: DESState, machine: SimMachine) -> LoopResult:
    """Run Time Warp DES on the simulated machine.

    Workers take the globally earliest unprocessed events; application
    happens at completion, so concurrent in-flight events at neighboring
    stations race — the source of stragglers and rollbacks.
    """
    cm = machine.cost_model
    engine = TimeWarpDES(state)
    idle = list(range(machine.num_threads))
    heapq.heapify(idle)
    thread_clock = [0.0] * machine.num_threads
    in_flight: list[tuple[float, int, int, TWEvent]] = []  # (wall, seq, tid, ev)
    now = 0.0
    seq = 0

    def pop_live() -> TWEvent | None:
        while engine.unprocessed:
            _, event = heapq.heappop(engine.unprocessed)
            if event[3] in engine.annihilated:
                engine.annihilated.discard(event[3])
                continue
            return event
        return None

    while True:
        # Dispatch as many events as there are idle workers.
        while idle:
            event = pop_live()
            if event is None:
                break
            tid = heapq.heappop(idle)
            if thread_clock[tid] < now:
                machine.stats.charge(tid, Category.IDLE, now - thread_clock[tid])
                thread_clock[tid] = now
            # The shared event pool is a priority queue (plus contention).
            dispatch = cm.pq_cost(len(engine.unprocessed) + 1) + cm.worklist_cost(
                machine.num_threads
            )
            duration = (
                dispatch
                + STATE_SAVE_COST
                + inflate_execute(
                    machine,
                    EVENT_WORK_BASE + EVENT_WORK_PER_PORT * engine.nports[event[1]],
                    MEM_FRACTION,
                )
            )
            machine.stats.charge(tid, Category.SCHEDULE, dispatch + STATE_SAVE_COST)
            heapq.heappush(in_flight, (thread_clock[tid] + duration, seq, tid, event))
            seq += 1
        if not in_flight:
            break
        wall, _, tid, event = heapq.heappop(in_flight)
        now = max(now, wall)
        if event[3] in engine.annihilated:
            # Annihilated while in flight: the work was wasted.
            engine.annihilated.discard(event[3])
            machine.stats.charge(tid, Category.ABORT, wall - thread_clock[tid])
            thread_clock[tid] = wall
        else:
            _, work, rollback_cost = engine.receive(event)
            machine.stats.charge(tid, Category.EXECUTE, wall - thread_clock[tid])
            thread_clock[tid] = wall
            if rollback_cost:
                machine.stats.charge(tid, Category.ABORT, rollback_cost)
                thread_clock[tid] += rollback_cost
        heapq.heappush(idle, tid)

    end = max(max(thread_clock), now)
    for tid in range(machine.num_threads):
        if thread_clock[tid] < end:
            machine.stats.charge(tid, Category.IDLE, end - thread_clock[tid])
        machine.set_clock(tid, end)

    # Publish the optimistic engine's final wires back into the state so the
    # standard snapshot/validate infrastructure sees them.
    state.output_val = list(engine.output_val)
    state.input_vals = [list(v) for v in engine.input_vals]
    state.events_processed = engine.events_processed
    for queues in state.pending:  # TW consumed the stimulus via its own pool
        for queue in queues:
            queue.clear()
    return LoopResult(
        algorithm="des",
        executor="time-warp",
        machine=machine,
        executed=engine.events_processed,
        metrics={
            "rollbacks": engine.rollbacks,
            "events_undone": engine.events_undone,
            "anti_messages": engine.anti_messages,
        },
    )
