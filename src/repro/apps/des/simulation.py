"""Discrete-event gate-level simulation state (§4.5).

Stations are logic gates; events travel along FIFO links with per-gate
delay.  A task is the consumption of one event by its target gate.  Three
event kinds exist:

* ``val``   — a value change on a wire; consuming it may re-evaluate the
  gate and emit new events.
* ``null``  — a Chandy–Misra null message: advances the receiving port's
  channel clock without carrying data (only the CM comparator emits these).
* ``flush`` — an end-of-simulation null: after the last stimulus vector the
  testbench flushes every input, and each gate forwards one flush once all
  its ports have flushed.  This closes every channel, so the local
  safe-source test can always eventually fire (termination).

Per-port channel clocks hold the latest time seen on a link.  Emission
times are strictly increasing per link (an epsilon bump breaks exact ties),
which makes ``clock ≥ t`` a sound guarantee that no earlier event can still
arrive — the basis of the Chandy–Misra safe-source test.
"""

from __future__ import annotations

from collections import deque

from ...inputs.circuits import GATE_FUNCS, Circuit

#: Minimum spacing between events on one link (breaks glitch-pair ties).
LINK_EPS = 1e-7

#: Work: base ops per event plus ops per input port re-read.
EVENT_WORK_BASE = 25.0
EVENT_WORK_PER_PORT = 10.0

#: Event kinds.
VAL, NULL, FLUSH = "val", "null", "flush"

#: Event item layout: (time, gate, port, eid, kind, value)
Event = tuple[float, int, int, int, str, int]


class DESState:
    """Circuit + per-station simulation and channel state."""

    def __init__(
        self,
        circuit: Circuit,
        vectors: list[dict[str, int]],
        period: float = 50.0,
        emit_nulls: bool = False,
        defer_flush: bool = False,
        schedule: list[tuple[float, dict[str, int]]] | None = None,
    ):
        self.circuit = circuit
        self.vectors = list(vectors)
        self.period = period
        self.emit_nulls = emit_nulls
        #: Streaming mode: no flush stimulus is emitted, so channels stay
        #: open and later vectors can be injected (:meth:`inject_vector`).
        #: Termination then needs an executor that does not rely on the
        #: Chandy–Misra safe test (level-by-level drains by time).
        self.defer_flush = defer_flush
        #: Explicit (time, vector) stimulus plan.  Defaults to one vector
        #: per period, which reproduces the classic constructor behavior;
        #: a streaming session's cold re-run passes the full injected
        #: schedule so stimulus arrival order (and hence event ids) match.
        if schedule is None:
            self._schedule = [
                (k * period, dict(vec)) for k, vec in enumerate(self.vectors)
            ]
        else:
            self._schedule = [(float(t), dict(vec)) for t, vec in schedule]
            self.vectors = [dict(vec) for _, vec in self._schedule]
        n = circuit.num_gates
        self.nports = [max(1, len(g.fanin)) for g in circuit.gates]
        self.input_vals = [[0] * self.nports[g.gid] for g in circuit.gates]
        self.port_clock = [[0.0] * self.nports[g.gid] for g in circuit.gates]
        self.flushed = [[False] * self.nports[g.gid] for g in circuit.gates]
        self.pending: list[list[deque]] = [
            [deque() for _ in range(self.nports[g.gid])] for g in circuit.gates
        ]
        self.last_arrival = [[-1.0] * self.nports[g.gid] for g in circuit.gates]
        self.output_val = self._initial_outputs()
        self.events_processed = 0
        self.null_events = 0
        self._next_eid = 0
        self.initial_events = self._build_stimulus()

    # ------------------------------------------------------------------
    def _initial_outputs(self) -> list[int]:
        """Steady-state outputs with every primary input at 0."""
        values = [0] * self.circuit.num_gates
        for gid in self.circuit._topological_order():
            gate = self.circuit.gates[gid]
            if gate.kind != "INPUT":
                values[gid] = GATE_FUNCS[gate.kind](
                    [values[src] for src in gate.fanin]
                )
        return values

    def _arrive(self, time: float, gate: int, port: int, kind: str, value: int) -> Event:
        """Enqueue an event on a link; returns the task item to push."""
        time = max(time, self.last_arrival[gate][port] + LINK_EPS)
        self.last_arrival[gate][port] = time
        if kind == FLUSH:
            # A flush is the last event this channel will ever carry: close
            # it (clock = ∞), so sibling ports stop waiting on it.
            self.port_clock[gate][port] = float("inf")
        else:
            self.port_clock[gate][port] = time
        eid = self._next_eid
        self._next_eid += 1
        item: Event = (time, gate, port, eid, kind, value)
        self.pending[gate][port].append(item)
        return item

    def _build_stimulus(self) -> list[Event]:
        """Initial tasks: value changes per vector, then the final flush."""
        items: list[Event] = []
        self._input_levels = {name: 0 for name in self.circuit.inputs}
        current = self._input_levels
        for t, vector in self._schedule:
            for name, gid in self.circuit.inputs.items():
                value = int(vector.get(name, current[name]))
                if value != current[name]:
                    current[name] = value
                    items.append(self._arrive(t, gid, 0, VAL, value))
        if not self.defer_flush:
            t_end = (
                self._schedule[-1][0] + self.period if self._schedule else 0.0
            )
            for gid in self.circuit.inputs.values():
                items.append(self._arrive(t_end, gid, 0, FLUSH, 0))
        return items

    def inject_vector(self, time: float, vector: dict[str, int]) -> list[Event]:
        """Apply a stimulus vector to the primary inputs at ``time``.

        Only valid in ``defer_flush`` mode (channels must still be open).
        Returns the task items to push; the vector also joins
        ``self.vectors`` so :meth:`validate`'s functional oracle sees it.
        """
        if not self.defer_flush:
            raise RuntimeError(
                "inject_vector requires defer_flush=True (channels are "
                "closed once the flush stimulus is emitted)"
            )
        items: list[Event] = []
        current = self._input_levels
        for name, gid in self.circuit.inputs.items():
            value = int(vector.get(name, current[name]))
            if value != current[name]:
                current[name] = value
                items.append(self._arrive(time, gid, 0, VAL, value))
        self.vectors.append({k: int(v) for k, v in vector.items()})
        self._schedule.append((float(time), dict(vector)))
        return items

    # ------------------------------------------------------------------
    def process_event(self, item: Event) -> tuple[list[Event], float]:
        """Consume one event; returns (emitted task items, work done)."""
        time, gate_id, port, eid, kind, value = item
        queue = self.pending[gate_id][port]
        if not queue or queue[0][3] != eid:
            raise RuntimeError(
                f"event {eid} executed out of FIFO order at gate {gate_id}"
            )
        queue.popleft()
        gate = self.circuit.gates[gate_id]
        self.events_processed += 1
        work = EVENT_WORK_BASE + EVENT_WORK_PER_PORT * self.nports[gate_id]
        emitted: list[Event] = []
        if kind == FLUSH:
            self.flushed[gate_id][port] = True
            if all(self.flushed[gate_id]):
                for tgt, tport in gate.fanout:
                    emitted.append(
                        self._arrive(time + gate.delay, tgt, tport, FLUSH, 0)
                    )
        elif kind == NULL:
            self.null_events += 1  # channel clock already advanced on arrival
        else:
            self.input_vals[gate_id][port] = value
            new_out = GATE_FUNCS[gate.kind](self.input_vals[gate_id][: max(1, len(gate.fanin))])
            if new_out != self.output_val[gate_id]:
                self.output_val[gate_id] = new_out
                for tgt, tport in gate.fanout:
                    emitted.append(
                        self._arrive(time + gate.delay, tgt, tport, VAL, new_out)
                    )
            elif self.emit_nulls:
                # Chandy–Misra: advance downstream clocks explicitly.
                for tgt, tport in gate.fanout:
                    emitted.append(
                        self._arrive(time + gate.delay, tgt, tport, NULL, 0)
                    )
        return emitted, work

    # ------------------------------------------------------------------
    def is_safe_event(self, item: Event) -> bool:
        """The Chandy–Misra local safe-source test (§4.5).

        ``item`` may be processed iff it is the earliest pending event at
        its station and every other port either has a pending event (whose
        head is later) or a channel clock at/after ``item``'s time.
        """
        time, gate_id, port, eid, _, _ = item
        for q in range(self.nports[gate_id]):
            queue = self.pending[gate_id][q]
            if queue:
                head = queue[0]
                if (head[0], q, head[3]) < (time, port, eid):
                    return False
            elif self.port_clock[gate_id][q] < time:
                return False
        return True

    def station_head(self, gate_id: int) -> Event | None:
        """Earliest pending event at a station (None when idle)."""
        best: Event | None = None
        for q in range(self.nports[gate_id]):
            queue = self.pending[gate_id][q]
            if queue:
                head = queue[0]
                if best is None or (head[0], head[1], head[2], head[3]) < (
                    best[0],
                    best[1],
                    best[2],
                    best[3],
                ):
                    best = head
        return best

    # ------------------------------------------------------------------
    def snapshot(self) -> tuple:
        """Final wire values (comparators may differ in event counts)."""
        return (
            tuple(self.output_val),
            tuple(tuple(vals) for vals in self.input_vals),
        )

    def output_values(self) -> dict[str, int]:
        return {name: self.output_val[gid] for name, gid in self.circuit.outputs.items()}

    def validate(self) -> None:
        """All queues drained; outputs equal the functional oracle."""
        for gate_id in range(self.circuit.num_gates):
            for queue in self.pending[gate_id]:
                assert not queue, f"unconsumed events at gate {gate_id}"
        final_vector = {name: 0 for name in self.circuit.inputs}
        for vector in self.vectors:
            final_vector.update({k: int(v) for k, v in vector.items()})
        oracle = self.circuit.evaluate(final_vector)
        assert self.output_values() == oracle, (
            f"DES outputs {self.output_values()} != oracle {oracle}"
        )
