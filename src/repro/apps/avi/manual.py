"""Hand-specialized AVI executor: the edge-flipping dependence DAG (§4.1).

A variation of Huang et al.'s parallel AVI: one DAG node per element, one
edge per pair of vertex-sharing elements, directed toward the later
time-stamp.  Executing an element updates its node *in place* — bump its
time-stamp and flip incident edges — because the child task has the same
rw-set and a later time (the paper's in-place update-rule optimization).

No rw-sets are ever computed and no task objects are allocated; edges are
predecessor *counts* flipped in O(degree).  This is the KDG-Manual line of
Figures 5 and 11.
"""

from __future__ import annotations

from ...machine import Category, SimMachine, simulate_async
from ...runtime.base import LoopResult, inflate_execute
from .app import MEM_FRACTION
from .simulation import AVI_ELEMENT_WORK, AVIState

#: Cycle cost of flipping one dependence edge in the manual DAG.
EDGE_FLIP_COST = 10.0


def run_manual(state: AVIState, machine: SimMachine) -> LoopResult:
    """Run AVI with the edge-flipping DAG on the simulated machine."""
    mesh = state.mesh
    cm = machine.cost_model
    num_elements = mesh.num_elements
    neighbors = [mesh.element_neighbors(e) for e in range(num_elements)]

    active = [bool(state.next_time[e] < state.end_time) for e in range(num_elements)]

    def key(elem: int) -> tuple[float, int]:
        return (float(state.next_time[elem]), elem)

    # Initial DAG: predecessor counts under the (time, element) order.
    pred_count = [0] * num_elements
    build_costs = []
    for e in range(num_elements):
        if not active[e]:
            continue
        count = 0
        for n in neighbors[e]:
            if active[n] and key(n) < key(e):
                count += 1
        pred_count[e] = count
        build_costs.append(
            {Category.SCHEDULE: cm.graph_add_edge * max(1, len(neighbors[e]))}
        )
    machine.run_phase(build_costs)

    executed = {"count": 0}

    def step(elem: int) -> tuple[dict[Category, float], list[int]]:
        time = float(state.next_time[elem])
        old_key = (time, elem)
        state.element_update(elem)
        executed["count"] += 1
        new_time = time + state.step[elem]
        state.next_time[elem] = new_time
        exposed: list[int] = []
        flips = 0
        if new_time >= state.end_time:
            # Retire the node: every edge out of it disappears.
            active[elem] = False
            for n in neighbors[elem]:
                if active[n] and old_key < key(n):
                    pred_count[n] -= 1
                    flips += 1
                    if pred_count[n] == 0:
                        exposed.append(n)
        else:
            # In-place update: new time-stamp, flip edges that now point in.
            new_key = (float(new_time), elem)
            for n in neighbors[elem]:
                if not active[n]:
                    continue
                if not new_key < key(n):  # edge elem→n flips to n→elem
                    pred_count[elem] += 1
                    pred_count[n] -= 1
                    flips += 1
                    if pred_count[n] == 0:
                        exposed.append(n)
            if pred_count[elem] == 0:
                exposed.append(elem)
        breakdown = {
            Category.EXECUTE: inflate_execute(
                machine, cm.work_cost(AVI_ELEMENT_WORK), MEM_FRACTION
            )
            + cm.worklist_cost(machine.num_threads),
            Category.SCHEDULE: EDGE_FLIP_COST * max(1, flips),
        }
        return breakdown, exposed

    initial = [e for e in range(num_elements) if active[e] and pred_count[e] == 0]
    simulate_async(machine, initial, key, step)
    return LoopResult(
        algorithm="avi",
        executor="manual-edge-flip",
        machine=machine,
        executed=executed["count"],
    )
