"""AVI — asynchronous variational integrators (§2.1, §4.1).

Paper inputs: 42 K (small) / 166 K (large) element meshes.  Scaled here to
512 / 1 536 elements (~5 K / ~15 K elemental updates); the executor-shape
comparison (Figure 5) is preserved because time-stamps are still almost
all distinct.
"""

from ..common import AppSpec
from .app import AVI_PROPERTIES, make_algorithm, make_state
from .manual import run_manual
from .simulation import AVIState


def _small() -> AVIState:
    return make_state(16, 16, end_time=0.5, seed=1)


def _large() -> AVIState:
    return make_state(32, 24, end_time=0.5, seed=1)


SPEC = AppSpec(
    name="avi",
    make_small=_small,
    make_large=_large,
    algorithm=make_algorithm,
    snapshot=lambda state: state.snapshot(),
    validate=lambda state: state.validate(),
    run_manual=run_manual,
    run_other=None,  # the paper found no usable third-party AVI (§4.1)
)

__all__ = ["AVIState", "AVI_PROPERTIES", "SPEC", "make_algorithm", "make_state", "run_manual"]
