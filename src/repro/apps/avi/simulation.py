"""Asynchronous Variational Integrator state and elemental physics (§2.1).

AVI advances each mesh element with its *own* time step (set by element
quality), so elements drift apart in simulation time — the reason
level-by-level parallelization collapses (Figure 5: 1.38 tasks per level)
while the KDG's asynchronous schedule scales.

The elemental kernel is a linear-elastic edge-spring update: symplectic
half-kick / drift on the element's three vertices.  It is intentionally
small — the paper stresses that AVI tasks are fine-grained — but performs
real floating-point state updates, so executor serializations are checked
bit-for-bit against the serial run.
"""

from __future__ import annotations

import numpy as np

from ...galois.mesh import TriangularMesh

#: Representative operation count of one elemental update (cost model).
AVI_ELEMENT_WORK = 1200.0


class AVIState:
    """Mesh + per-vertex kinematics + per-element clocks."""

    def __init__(
        self,
        mesh: TriangularMesh,
        end_time: float,
        base_step: float = 0.05,
        stiffness: float = 1.0,
        seed: int = 0,
    ):
        self.mesh = mesh
        self.end_time = end_time
        self.stiffness = stiffness
        rng = np.random.RandomState(seed)
        ne = mesh.num_elements
        nv = mesh.num_vertices
        # Heterogeneous steps (element "quality"): time-stamps rarely tie,
        # which is exactly what starves the level-by-level executor.
        self.step = base_step * (0.5 + rng.rand(ne))
        self.next_time = self.step.copy()
        # Initial displacement field: a smooth bump; zero velocity.
        xy = mesh.positions
        self.disp = np.zeros((nv, 2))
        self.disp[:, 0] = 0.01 * np.sin(2 * np.pi * xy[:, 0])
        self.disp[:, 1] = 0.01 * np.cos(2 * np.pi * xy[:, 1])
        self.vel = np.zeros((nv, 2))
        self.updates_done = np.zeros(ne, dtype=np.int64)

    def initial_items(self) -> list[tuple[int, float]]:
        """One pending update per element, at its first scheduled time."""
        return [
            (e, float(self.next_time[e]))
            for e in range(self.mesh.num_elements)
            if self.next_time[e] < self.end_time
        ]

    def element_update(self, elem: int) -> None:
        """One elemental step: edge-spring kick + drift on the 3 vertices."""
        a, b, c = self.mesh.vertices_of(elem)
        dt = self.step[elem]
        k = self.stiffness
        disp, vel = self.disp, self.vel
        for i, j in ((a, b), (b, c), (c, a)):
            d = disp[i] - disp[j]
            f = -k * d
            vel[i] += dt * f
            vel[j] -= dt * f
        for i in (a, b, c):
            disp[i] += dt * vel[i] / 3.0
        self.updates_done[elem] += 1

    def snapshot(self) -> tuple[bytes, bytes, bytes, bytes]:
        """Bit-exact digest of the final state (serializability oracle)."""
        return (
            self.disp.tobytes(),
            self.vel.tobytes(),
            self.next_time.tobytes(),
            self.updates_done.tobytes(),
        )

    def validate(self) -> None:
        """Every element must have reached the end time, with finite state."""
        assert np.all(self.next_time >= self.end_time), "element left behind"
        assert np.all(np.isfinite(self.disp)), "non-finite displacement"
        assert np.all(np.isfinite(self.vel)), "non-finite velocity"
        assert np.all(self.updates_done >= 1), "element never updated"
