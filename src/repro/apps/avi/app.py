"""AVI in the ordered programming model (Figures 2 and 7).

Work items are ``(element, time)`` pairs ordered by ``(time, element)``
(the element id is the paper's tie-break ``≺``, folded into the priority so
every executor serializes identically).  The rw-set of an update is the
element's three vertices plus its own clock.  AVI is stable-source,
monotonic and has structure-based rw-sets (a child updates the same
element), so the automatic runtime selects the asynchronous KDG-RNA
executor with subrules R and A only (§4.1).

Inference audit (``repro infer avi``): ``structure_based_rw_sets`` (and
hence ``non_increasing``) is *proved* — the visitor reads only the static
mesh.  ``monotonic`` and ``stable_source`` rest on the domain argument
that an element's clock only advances, which the effect summaries cannot
express: both stay a justified ``unknown`` and are cross-validated
dynamically.
"""

from __future__ import annotations

from ...core.algorithm import OrderedAlgorithm
from ...core.context import BodyContext, RWSetContext
from ...core.properties import AlgorithmProperties
from ...galois.mesh import TriangularMesh
from .simulation import AVI_ELEMENT_WORK, AVIState

AVI_PROPERTIES = AlgorithmProperties(
    stable_source=True,
    monotonic=True,
    structure_based_rw_sets=True,
)

#: Memory-bound share of task execution (bandwidth model, DESIGN.md).
MEM_FRACTION = 0.25


def make_state(
    nx: int, ny: int, end_time: float = 0.5, seed: int = 0
) -> AVIState:
    """A structured-mesh AVI problem of ``2·nx·ny`` elements."""
    return AVIState(TriangularMesh.structured(nx, ny), end_time=end_time, seed=seed)


def make_algorithm(state: AVIState) -> OrderedAlgorithm:
    """Bind an :class:`AVIState` to the ordered loop."""
    mesh = state.mesh

    def priority(item: tuple[int, float]) -> tuple[float, int]:
        elem, time = item
        return (time, elem)

    def level_of(item: tuple[int, float]) -> float:
        return item[1]  # priority levels are time-stamps (Fig. 14)

    def visit_rw_sets(item: tuple[int, float], ctx: RWSetContext) -> None:
        elem, _ = item
        for v in mesh.vertices_of(elem):
            ctx.write(("vertex", v))
        ctx.write(("element", elem))

    def apply_update(item: tuple[int, float], ctx: BodyContext) -> None:
        elem, time = item
        for v in mesh.vertices_of(elem):
            ctx.access(("vertex", v))
        ctx.access(("element", elem))
        state.element_update(elem)
        ctx.work(AVI_ELEMENT_WORK)
        new_time = time + state.step[elem]
        state.next_time[elem] = new_time
        if new_time < state.end_time:
            ctx.push((elem, float(new_time)))

    return OrderedAlgorithm(
        memory_bound_fraction=MEM_FRACTION,
        name="avi",
        initial_items=state.initial_items(),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=AVI_PROPERTIES,
        level_of=level_of,
    )
