"""Billiards (§4.3).

Paper inputs: 7 K balls on a 7K×7K table (small), 15 K balls on 15K×15K
(large).  Scaled here to 256 and 512 balls on proportionally sized tables.
Available parallelism in billiards is proportional to the number of balls,
so the scaled speedups are lower than the paper's (see EXPERIMENTS.md).
"""

from ..common import AppSpec
from .app import BILLIARDS_PROPERTIES, make_algorithm, make_state
from .manual import run_manual
from .simulation import BilliardsState

SPEC = AppSpec(
    name="billiards",
    make_small=lambda: make_state(256, end_time=20.0, seed=6),
    make_large=lambda: make_state(512, end_time=12.0, seed=6),
    algorithm=make_algorithm,
    snapshot=lambda state: state.snapshot(),
    validate=lambda state: state.validate(),
    run_manual=run_manual,
    run_other=None,  # no third-party comparator in the paper (§4.3)
    # Void (stale) predictions re-predict from the state at their own
    # serialization point; only their *number* varies between schedules
    # (simulation.py), so the committed-task multiset is schedule-dependent
    # even though the physical trajectory is deterministic.
    deterministic_task_set=False,
)

__all__ = [
    "BILLIARDS_PROPERTIES",
    "BilliardsState",
    "SPEC",
    "make_algorithm",
    "make_state",
    "run_manual",
]
