"""Hand-specialized Billiards executor (§4.3).

The manual KDG keeps, per ball, only its *earliest* pending event; a source
is an event that is the earliest for every ball it involves.  This slashes
the number of safe-source-test invocations compared to testing every mark
owner in the window, and replaces rw-set marking with two per-ball compares
(the paper's per-thread-priority-queue optimization, simulated here with a
deterministic global view).
"""

from __future__ import annotations

import heapq

from ...machine import Category, SimMachine
from ...runtime.base import LoopResult, inflate_execute
from .app import MEM_FRACTION
from .simulation import BALL, BilliardsState, Event

#: Cycle cost of a per-ball earliest-event compare-and-update.
BALL_TRACK_COST = 18.0


def _involved(event: Event) -> tuple[int, ...]:
    return (event[2],) if event[1] != BALL else (event[2], event[3])


def run_manual(state: BilliardsState, machine: SimMachine) -> LoopResult:
    """Round-based executor over per-ball earliest events."""
    cm = machine.cost_model
    pending: list[Event] = []
    for event in state.initial_events():
        heapq.heappush(pending, event)
    executed = 0
    rounds = 0

    while pending:
        rounds += 1
        # Phase 1: per-ball earliest tracking over the pending queue head
        # region (a window of the earliest events).
        window_size = max(64, machine.num_threads * 8)
        window = [heapq.heappop(pending) for _ in range(min(window_size, len(pending)))]
        earliest: dict[int, Event] = {}
        phase1 = []
        for event in window:
            for ball in _involved(event):
                held = earliest.get(ball)
                if held is None or event < held:
                    earliest[ball] = event
            phase1.append({Category.SCHEDULE: BALL_TRACK_COST * len(_involved(event))})
        machine.run_phase(phase1)

        # Phase 2: sources (earliest for all involved balls) pass the
        # pairwise max-velocity test and execute.
        sources = [
            event
            for event in window
            if all(earliest[ball] is event for ball in _involved(event))
        ]
        safe: list[Event] = []
        losers: list[Event] = []
        phase2 = []
        source_set = {id(event) for event in sources}
        for event in window:
            if id(event) in source_set:
                phase2.append(
                    {Category.SAFETY_TEST: cm.safe_test_base + 15.0 * len(sources)}
                )
                earlier = [s for s in sources if s < event]
                if state.is_safe_against_sources(event, earlier):
                    safe.append(event)
                else:
                    losers.append(event)
            else:
                losers.append(event)
        if not safe:
            raise RuntimeError("billiards manual executor: no safe event")
        machine.run_phase(phase2)

        phase3 = []
        for event in safe:
            new_events, work = state.process(event)
            executed += 1
            cost = {
                Category.EXECUTE: inflate_execute(machine, cm.work_cost(work), MEM_FRACTION)
                + cm.worklist_cost(machine.num_threads),
                Category.SCHEDULE: 0.0,
            }
            for fresh in new_events:
                heapq.heappush(pending, fresh)
                cost[Category.SCHEDULE] += cm.pq_cost(len(pending))
            phase3.append(cost)
        machine.run_phase(phase3)
        for event in losers:
            heapq.heappush(pending, event)

    return LoopResult(
        algorithm="billiards",
        executor="manual-ball-track",
        machine=machine,
        executed=executed,
        rounds=rounds,
        metrics={"void_events": state.void_events, "collisions": state.collisions},
    )
