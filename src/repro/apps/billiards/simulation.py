"""Elastic billiard-ball simulation state and event physics (§4.3).

Classic event-driven molecular-dynamics structure (Alder & Wainwright,
Lubachevsky): every ball carries its own clock and advances lazily; events
are *predicted* collisions (ball-ball or ball-wall) stamped with the
collision counters of the balls involved.  A popped event whose stamps are
stale is void — but it re-predicts the still-fresh ball, which keeps every
ball covered by a pending prediction (the progress invariant).

The physical trajectory is deterministic across executors: conflicting
events are ordered by the runtime, and void events re-predict from the
state at their own serialization point.  Only the number of void
predictions may vary between schedules.
"""

from __future__ import annotations

import math

import numpy as np

from ...inputs.bodies import billiard_table

#: Work: ops per candidate ball scanned during prediction; collision math.
PREDICT_WORK_PER_BALL = 12.0
COLLISION_WORK = 60.0

#: Event kinds: ball-ball and ball-wall.
BALL, WALL = "ball", "wall"

#: Event item: (time, kind, a, other, stamp_a, stamp_other, owner)
#: ``owner`` is the ball whose prediction created the event (re-predicted
#: when the event turns out void).
Event = tuple[float, str, int, int, int, int, int]


class BilliardsState:
    """Balls on a square table, with lazy per-ball clocks."""

    def __init__(
        self,
        n_balls: int,
        table_size: float,
        end_time: float,
        radius: float = 0.5,
        max_speed: float = 1.0,
        seed: int = 0,
    ):
        self.n = n_balls
        self.table = table_size
        self.radius = radius
        self.end_time = end_time
        pos, vel = billiard_table(n_balls, table_size, radius, max_speed, seed)
        self.pos = pos
        self.vel = vel
        self.ball_time = np.zeros(n_balls)
        self.stamp = np.zeros(n_balls, dtype=np.int64)
        # Speed bound for the safe-source test.  Energy conservation gives
        # the loose bound sqrt(2E); in practice (Maxwell-Boltzmann-like
        # mixing) speeds stay within a few times the initial maximum, so we
        # use 4x with a runtime assertion in process() — a violation would
        # make the test unsound, so it fails loudly instead.
        self.vmax = 4.0 * float(np.sqrt((vel**2).sum(axis=1)).max())
        self.initial_energy = float((vel**2).sum())
        self.collisions = 0
        self.wall_bounces = 0
        self.void_events = 0

    # ------------------------------------------------------------------
    # Kinematics
    # ------------------------------------------------------------------
    def advance(self, ball: int, time: float) -> None:
        dt = time - self.ball_time[ball]
        if dt < -1e-9:
            raise RuntimeError(f"ball {ball} moving backwards in time")
        if dt > 0:
            self.pos[ball] += self.vel[ball] * dt
            self.ball_time[ball] = time

    def position_at(self, ball: int, time: float) -> np.ndarray:
        return self.pos[ball] + self.vel[ball] * (time - self.ball_time[ball])

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _wall_hit(self, ball: int) -> tuple[float, int]:
        """Earliest wall hit (absolute time, wall id) for ``ball``."""
        best_t, best_w = math.inf, -1
        r, table = self.radius, self.table
        for axis in range(2):
            v = self.vel[ball][axis]
            x = self.pos[ball][axis]
            if v < 0:
                tau = (r - x) / v
                wall = 0 if axis == 0 else 2
            elif v > 0:
                tau = (table - r - x) / v
                wall = 1 if axis == 0 else 3
            else:
                continue
            # Plain float, not np.float64: event times are priority tuple
            # elements, and the declared Event type (and the flat engine's
            # rank encoder, which admits exact builtin types only) expects
            # builtin floats.  Value-identical — no rounding happens.
            hit = float(self.ball_time[ball] + tau)
            if tau >= 0 and hit < best_t:
                best_t, best_w = hit, wall
        return best_t, best_w

    def _pair_hit(self, a: int, b: int) -> float:
        """Absolute time when balls ``a`` and ``b`` touch (inf if never)."""
        t0 = max(self.ball_time[a], self.ball_time[b])
        pa = self.position_at(a, t0)
        pb = self.position_at(b, t0)
        dp = pb - pa
        dv = self.vel[b] - self.vel[a]
        b_coef = float(dp @ dv)
        if b_coef >= 0:
            return math.inf  # separating
        a_coef = float(dv @ dv)
        if a_coef <= 1e-18:
            return math.inf
        c_coef = float(dp @ dp) - (2 * self.radius) ** 2
        disc = b_coef * b_coef - a_coef * c_coef
        if disc <= 0:
            return math.inf
        tau = (-b_coef - math.sqrt(disc)) / a_coef
        if tau < -1e-9:
            return math.inf
        return t0 + max(tau, 0.0)

    def _all_pair_hits(self, ball: int) -> np.ndarray:
        """Vectorized ``_pair_hit`` against every other ball (inf = never)."""
        t0 = np.maximum(self.ball_time[ball], self.ball_time)
        pa = self.pos[ball] + self.vel[ball] * (t0 - self.ball_time[ball])[:, None]
        pb = self.pos + self.vel * (t0 - self.ball_time)[:, None]
        dp = pb - pa
        dv = self.vel - self.vel[ball]
        b_coef = (dp * dv).sum(axis=1)
        a_coef = (dv * dv).sum(axis=1)
        c_coef = (dp * dp).sum(axis=1) - (2 * self.radius) ** 2
        hits = np.full(self.n, np.inf)
        candidates = (b_coef < 0) & (a_coef > 1e-18)
        disc = np.where(candidates, b_coef * b_coef - a_coef * c_coef, -1.0)
        candidates &= disc > 0
        with np.errstate(invalid="ignore", divide="ignore"):
            tau = (-b_coef - np.sqrt(np.where(disc > 0, disc, 0.0))) / np.where(
                a_coef > 0, a_coef, 1.0
            )
        candidates &= tau >= -1e-9
        hits[candidates] = t0[candidates] + np.maximum(tau[candidates], 0.0)
        hits[ball] = np.inf
        return hits

    def predict(self, ball: int) -> Event | None:
        """Earliest future event for ``ball``; None when past end time."""
        best_t, best_w = self._wall_hit(ball)
        kind, other = WALL, best_w
        hits = self._all_pair_hits(ball)
        candidate = int(hits.argmin())
        if hits[candidate] < best_t:
            best_t, kind, other = float(hits[candidate]), BALL, candidate
        if best_t >= self.end_time or other < 0:
            return None
        if kind == WALL:
            return (best_t, WALL, ball, other, int(self.stamp[ball]), 0, ball)
        return (
            best_t,
            BALL,
            min(ball, other),
            max(ball, other),
            int(self.stamp[min(ball, other)]),
            int(self.stamp[max(ball, other)]),
            ball,
        )

    def initial_events(self) -> list[Event]:
        events = [self.predict(ball) for ball in range(self.n)]
        return [e for e in events if e is not None]

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------
    def is_stale(self, event: Event) -> bool:
        time, kind, a, other, stamp_a, stamp_other, _ = event
        if self.stamp[a] != stamp_a:
            return True
        return kind == BALL and self.stamp[other] != stamp_other

    def process(self, event: Event) -> tuple[list[Event], float]:
        """Execute one event; returns (new predictions, work done)."""
        time, kind, a, other, stamp_a, stamp_other, owner = event
        work = COLLISION_WORK
        if self.is_stale(event):
            # Void.  Re-predict the owner only if *its* stamp still matches:
            # then this event was the owner's only pending coverage (the
            # progress invariant); otherwise the owner re-predicted already
            # when it collided.
            self.void_events += 1
            new_events = []
            owner_stamp = stamp_a if owner == a else stamp_other
            if self.stamp[owner] == owner_stamp:
                fresh = self.predict(owner)
                work += PREDICT_WORK_PER_BALL * self.n
                if fresh is not None:
                    new_events.append(fresh)
            return new_events, work
        if kind == WALL:
            self.advance(a, time)
            axis = 0 if other in (0, 1) else 1
            self.vel[a][axis] = -self.vel[a][axis]
            self.stamp[a] += 1
            self.wall_bounces += 1
            affected = [a]
        else:
            self.advance(a, time)
            self.advance(other, time)
            normal = self.pos[other] - self.pos[a]
            norm = float(np.sqrt(normal @ normal))
            if norm > 0:
                normal = normal / norm
                exchange = float((self.vel[other] - self.vel[a]) @ normal)
                # Equal masses: exchange the normal velocity components.
                self.vel[a] += exchange * normal
                self.vel[other] -= exchange * normal
                for ball in (a, other):
                    speed = float(np.sqrt(self.vel[ball] @ self.vel[ball]))
                    if speed > self.vmax:
                        raise RuntimeError(
                            f"ball {ball} exceeded the declared speed bound"
                        )
            self.stamp[a] += 1
            self.stamp[other] += 1
            self.collisions += 1
            affected = [a, other]
        new_events = []
        for ball in affected:
            fresh = self.predict(ball)
            work += PREDICT_WORK_PER_BALL * self.n
            if fresh is not None:
                new_events.append(fresh)
        return new_events, work

    # ------------------------------------------------------------------
    # Safe-source test (max-velocity / bounded-lag, §4.3)
    # ------------------------------------------------------------------
    def is_safe_against_sources(self, event: Event, earlier: list[Event]) -> bool:
        """The paper's safe-source test: max-velocity check on source pairs.

        ``event`` is safe if, for every earlier source ``e'``, the balls of
        ``e'`` could not reach the balls of ``event`` before it fires even
        at maximum velocity (both parties closing at ``vmax`` each).  Any
        influence chain must begin at some currently earlier source, so a
        positive margin against every earlier source guarantees the event
        cannot be invalidated.
        """
        t = event[0]
        mine = self._involved_positions(event)
        for other in earlier:
            if not other[0] < t and not other < event:
                continue
            reach = 2.0 * self.vmax * (t - other[0])
            theirs = self._involved_positions(other)
            for p in mine:
                for q in theirs:
                    d = p - q
                    if float(np.sqrt(d @ d)) - 2 * self.radius <= reach:
                        return False
        return True

    def _involved_positions(self, event: Event) -> list[np.ndarray]:
        time, kind, a, other, _, _, _ = event
        involved = (a,) if kind == WALL else (a, other)
        return [self.position_at(ball, time) for ball in involved]

    def reach_gap(self, event: Event, min_time: float) -> float:
        """Worst-case slack before any third ball could disturb this event.

        A third ball x follows its recorded straight-line trajectory at
        least until ``min_time`` (its next pending event cannot be earlier
        than the global minimum), so its position is extrapolated exactly to
        ``ref = max(ball_time[x], min_time)``; beyond that it can close in
        at no more than ``vmax``.  If every x still has positive slack, no
        earlier event can invalidate this one (the paper's max-velocity
        test).
        """
        time, kind, a, other, _, _, _ = event
        involved = (a,) if kind == WALL else (a, other)
        pos_involved = [self.position_at(ball, time) for ball in involved]
        gap = math.inf
        for x in range(self.n):
            if x in involved:
                continue
            ref = max(float(self.ball_time[x]), min_time)
            pos_x = self.position_at(x, ref) if ref > self.ball_time[x] else self.pos[x]
            travel = self.vmax * max(0.0, time - ref)
            for p in pos_involved:
                d = pos_x - p
                slack = float(np.sqrt(d @ d)) - 2 * self.radius - travel
                gap = min(gap, slack)
        return gap

    def is_safe_event(self, event: Event, min_time: float) -> bool:
        if event[0] <= min_time + 1e-12:
            return True  # the globally earliest event is always safe
        return self.reach_gap(event, min_time) > 0.0

    # ------------------------------------------------------------------
    def snapshot(self) -> tuple[bytes, bytes, bytes]:
        """Final positions/velocities at end time (deterministic physics)."""
        final = self.pos + self.vel * (self.end_time - self.ball_time)[:, None]
        return (final.tobytes(), self.vel.tobytes(), self.stamp.tobytes())

    def validate(self) -> None:
        energy = float((self.vel**2).sum())
        assert abs(energy - self.initial_energy) < 1e-6 * max(1.0, self.initial_energy), (
            "kinetic energy not conserved"
        )
        final = self.pos + self.vel * (self.end_time - self.ball_time)[:, None]
        r = self.radius
        assert (final > r - 1e-6).all() and (final < self.table - r + 1e-6).all(), (
            "ball escaped the table"
        )
        # No two balls may overlap at the end time.
        for a in range(self.n):
            for b in range(a + 1, self.n):
                d = final[b] - final[a]
                assert float(d @ d) > (2 * r - 1e-6) ** 2, f"balls {a},{b} overlap"
