"""Billiards in the ordered programming model (§4.3).

Tasks are predicted collision events ordered by time; the rw-set of an
event is the ball (or two balls) involved.  Billiards is unstable-source:
processing an early collision can speed a ball up and invalidate a later
event that is currently a source.  The safe-source test is the
maximum-velocity (bounded-lag) test: an event is safe if no third ball
could possibly reach its participants before it fires, or if it is the
globally earliest event.  The test reads global state (every ball), so it
is not local — the automatic runtime selects IKDG with windowing, which
also suits the fact that many non-source predictions turn stale (§4.3).

Inference audit (``repro infer billiards``): ``structure_based_rw_sets``
is *proved*; ``monotonic`` is a justified ``unknown`` (predicted collision
times come out of the physics state).  The bounded-lag test provably
consults the global ``SourceView`` — confirming it is correctly not
declared local.
"""

from __future__ import annotations

from ...core.algorithm import OrderedAlgorithm, SourceView
from ...core.context import BodyContext, RWSetContext
from ...core.properties import AlgorithmProperties
from ...core.task import Task
from .simulation import BALL, PREDICT_WORK_PER_BALL, BilliardsState, Event

BILLIARDS_PROPERTIES = AlgorithmProperties(
    monotonic=True,
    structure_based_rw_sets=True,
    stable_source=False,
)

#: Memory-bound share of task execution (bandwidth model, DESIGN.md).
MEM_FRACTION = 0.3


def make_state(
    n_balls: int, table_size: float | None = None, end_time: float = 30.0, seed: int = 0
) -> BilliardsState:
    """An ``n × n`` table of ``n²``-ish balls, as in the paper's inputs."""
    if table_size is None:
        table_size = float(max(8, int(n_balls**0.5 * 3)))
    return BilliardsState(n_balls, table_size, end_time, seed=seed)


def make_algorithm(state: BilliardsState) -> OrderedAlgorithm:
    def priority(item: Event) -> Event:
        return item  # (time, kind, a, other, ...) is already a total order

    def level_of(item: Event) -> float:
        return item[0]

    def visit_rw_sets(item: Event, ctx: RWSetContext) -> None:
        _, kind, a, other, _, _, _ = item
        ctx.write(("ball", a))
        if kind == BALL:
            ctx.write(("ball", other))

    def apply_update(item: Event, ctx: BodyContext) -> None:
        ctx.access(("ball", item[2]))
        if item[1] == BALL:
            ctx.access(("ball", item[3]))
        new_events, work = state.process(item)
        ctx.work(work)
        for event in new_events:
            ctx.push(event)

    def safe_source_test(task: Task, view: SourceView) -> bool:
        earlier = [s.item for s in view.sources if s.item < task.item]
        return state.is_safe_against_sources(task.item, earlier)

    return OrderedAlgorithm(
        memory_bound_fraction=MEM_FRACTION,
        name="billiards",
        initial_items=state.initial_events(),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=BILLIARDS_PROPERTIES,
        safe_source_test=safe_source_test,
        safe_test_work=PREDICT_WORK_PER_BALL * state.n,
        level_of=level_of,
    )
