"""Sparse blocked LU (§4.4).

Paper inputs: 12K×12K / 140 K nnz (small), 23K×23K / 1.1 M nnz (large).
Scaled here to 32×32 blocks of 20×20 (small) and 40×40 blocks of 24×24
(large), banded plus random off-band blocks with symbolic fill.
"""

from ..common import AppSpec
from .app import LU_PROPERTIES, LUState, make_algorithm, make_state
from .manual import run_manual, run_other

SPEC = AppSpec(
    name="lu",
    make_small=lambda: make_state(32, 20, bandwidth=2, density=0.08, seed=5),
    make_large=lambda: make_state(40, 24, bandwidth=2, density=0.08, seed=5),
    algorithm=make_algorithm,
    snapshot=lambda state: state.snapshot(),
    validate=lambda state: state.validate(),
    serial_baseline="linear",
    run_manual=run_manual,
    run_other=run_other,
)

__all__ = ["LUState", "LU_PROPERTIES", "SPEC", "make_algorithm", "make_state", "run_manual", "run_other"]
