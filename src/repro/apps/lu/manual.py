"""Hand-specialized LU executors (§4.4).

Both follow the BOTS ``sparselu`` level-by-level structure: for each
diagonal stage ``k``, the diagonal factorization runs serially, then one
parallel phase performs the row/column solves (type II) and a second
parallel phase performs the trailing updates (type III), with a barrier
between phases.

``run_manual`` is our in-application version; ``run_other`` is the BOTS
comparator, which additionally pays an OpenMP-style task-creation overhead
per spawned task (BOTS spawns one task per block).
"""

from __future__ import annotations

from ...machine import Category, SimMachine
from ...runtime.base import LoopResult, inflate_execute
from . import kernels
from .app import MEM_FRACTION, LUState

#: OpenMP task-spawn overhead modeled for the BOTS comparator.
OMP_TASK_SPAWN = 180.0


def _level_by_level_lu(
    state: LUState, machine: SimMachine, spawn_overhead: float, label: str
) -> LoopResult:
    cm = machine.cost_model
    mat = state.mat
    executed = 0
    stages = 0
    for k in range(state.num_blocks):
        stages += 1
        # Serial diagonal factorization on one thread.
        flops = kernels.lu0(mat[k, k])
        state.tasks_run["lu0"] += 1
        machine.run_phase(
            [{Category.EXECUTE: inflate_execute(machine, cm.work_cost(flops), MEM_FRACTION)}]
        )
        executed += 1

        # Phase 1: row and column solves in parallel.
        phase1 = []
        for j in state.row_blocks(k):
            flops = kernels.fwd(mat[k, k], mat[k, j])
            state.tasks_run["fwd"] += 1
            phase1.append(
                {
                    Category.EXECUTE: inflate_execute(machine, cm.work_cost(flops), MEM_FRACTION),
                    Category.SCHEDULE: spawn_overhead
                    + cm.worklist_cost(machine.num_threads),
                }
            )
            executed += 1
        for i in state.col_blocks(k):
            flops = kernels.bdiv(mat[k, k], mat[i, k])
            state.tasks_run["bdiv"] += 1
            phase1.append(
                {
                    Category.EXECUTE: inflate_execute(machine, cm.work_cost(flops), MEM_FRACTION),
                    Category.SCHEDULE: spawn_overhead
                    + cm.worklist_cost(machine.num_threads),
                }
            )
            executed += 1
        machine.run_phase(phase1)

        # Phase 2: trailing updates in parallel.
        phase2 = []
        for i in state.col_blocks(k):
            for j in state.row_blocks(k):
                flops = kernels.bmod(mat[i, k], mat[k, j], mat[i, j])
                state.tasks_run["bmod"] += 1
                phase2.append(
                    {
                        Category.EXECUTE: inflate_execute(machine, cm.work_cost(flops), MEM_FRACTION),
                        Category.SCHEDULE: spawn_overhead
                        + cm.worklist_cost(machine.num_threads),
                    }
                )
                executed += 1
        machine.run_phase(phase2)
    return LoopResult(
        algorithm="lu",
        executor=label,
        machine=machine,
        executed=executed,
        rounds=stages,
    )


def run_manual(state: LUState, machine: SimMachine) -> LoopResult:
    """BOTS-style level-by-level LU without per-task spawn overhead."""
    return _level_by_level_lu(state, machine, 0.0, "manual-level-lu")


def run_other(state: LUState, machine: SimMachine) -> LoopResult:
    """The BOTS comparator with OpenMP task-spawn overheads."""
    return _level_by_level_lu(state, machine, OMP_TASK_SPAWN, "bots-sparselu")
