"""Sparse blocked LU in the ordered programming model (§4.4).

Following the paper's KDG formulation: the *initial* tasks are the type I
(diagonal) updates, whose rw-set covers every nonzero block of the trailing
submatrix; executing ``lu0(k)`` spawns the stage-``k`` type II tasks, and
each row-solve ``fwd(k,j)`` spawns the ``bmod(i,j,k)`` type III updates in
its column.  A type II task's rw-set covers the blocks its children will
write, so children's rw-sets are subsets of their parent's
(structure-based), every source is safe (stable-source), and the automatic
runtime picks the asynchronous KDG-RNA executor with subrules R and A —
"as in the case of AVI" (§4.4).

A symbolic-factorization pre-pass allocates fill blocks first, so the block
pattern is static during the ordered loop.

Inference audit (``repro infer lu``): ``monotonic`` is *proved* (children
carry stage ``k + 1``).  ``structure_based_rw_sets`` and ``stable_source``
stay a justified ``unknown``: they rest on exactly the symbolic-fill
argument above (the visitor walks ``state.blocks``, which the body also
writes — but only into pre-allocated fill), which the summaries cannot
see.  Both are cross-validated dynamically.
"""

from __future__ import annotations

import numpy as np

from ...core.algorithm import OrderedAlgorithm
from ...core.context import BodyContext, RWSetContext
from ...core.properties import AlgorithmProperties
from ...inputs.matrices import BlockMatrix, sparse_blocked_matrix, symbolic_fill
from . import kernels

LU_PROPERTIES = AlgorithmProperties(
    stable_source=True,
    monotonic=True,
    structure_based_rw_sets=True,
)

#: Memory-bound share of task execution (bandwidth model, DESIGN.md).
MEM_FRACTION = 0.15

#: Task kinds, in intra-stage priority order.
LU0, FWD, BDIV, BMOD = "lu0", "fwd", "bdiv", "bmod"


class LUState:
    """The block matrix being factored plus its pristine copy."""

    def __init__(self, matrix: BlockMatrix):
        self.original = matrix.copy()
        self.mat = matrix
        self.fill_blocks = symbolic_fill(self.mat)
        self.tasks_run = {LU0: 0, FWD: 0, BDIV: 0, BMOD: 0}

    @property
    def num_blocks(self) -> int:
        return self.mat.num_blocks

    def row_blocks(self, k: int) -> list[int]:
        """Nonzero column indices j > k in block row k."""
        return [j for j in range(k + 1, self.num_blocks) if self.mat[k, j] is not None]

    def col_blocks(self, k: int) -> list[int]:
        """Nonzero row indices i > k in block column k."""
        return [i for i in range(k + 1, self.num_blocks) if self.mat[i, k] is not None]

    def trailing_nonzeros(self, k: int) -> list[tuple[int, int]]:
        return [
            (i, j)
            for i in range(k, self.num_blocks)
            for j in range(k, self.num_blocks)
            if self.mat[i, j] is not None
        ]

    def snapshot(self) -> bytes:
        return self.mat.to_dense().tobytes()

    def validate(self, tolerance: float = 1e-8) -> None:
        """Reconstruct L·U and compare against the original matrix."""
        n = self.num_blocks
        b = self.mat.block_size
        size = n * b
        lower = np.zeros((size, size))
        upper = np.zeros((size, size))
        for i in range(n):
            for j in range(n):
                block = self.mat[i, j]
                if block is None:
                    continue
                rows = slice(i * b, (i + 1) * b)
                cols = slice(j * b, (j + 1) * b)
                if i == j:
                    l_blk, u_blk = kernels.unpack_lu(block)
                    lower[rows, cols] = l_blk
                    upper[rows, cols] = u_blk
                elif i > j:
                    lower[rows, cols] = block
                else:
                    upper[rows, cols] = block
        dense = self.original.to_dense()
        error = np.abs(lower @ upper - dense).max()
        scale = max(1.0, np.abs(dense).max())
        assert error / scale < tolerance, f"LU residual too large: {error:.3e}"


def make_state(
    num_blocks: int, block_size: int, bandwidth: int = 2, density: float = 0.08, seed: int = 0
) -> LUState:
    return LUState(
        sparse_blocked_matrix(num_blocks, block_size, bandwidth, density, seed=seed)
    )


def make_algorithm(state: LUState) -> OrderedAlgorithm:
    mat = state.mat

    def priority(item: tuple) -> tuple[int, int, int, int]:
        kind = item[0]
        if kind == LU0:
            return (item[1], 0, 0, 0)
        if kind == FWD:  # ("fwd", k, j)
            return (item[1], 1, 0, item[2])
        if kind == BDIV:  # ("bdiv", k, i)
            return (item[1], 1, 1, item[2])
        # ("bmod", k, i, j)
        return (item[1], 2, item[2], item[3])

    def level_of(item: tuple) -> tuple[int, int]:
        return priority(item)[:2]

    def visit_rw_sets(item: tuple, ctx: RWSetContext) -> None:
        kind = item[0]
        if kind == LU0:
            k = item[1]
            for loc in state.trailing_nonzeros(k):
                ctx.write(("block",) + loc)
        elif kind == FWD:
            _, k, j = item
            ctx.write(("block", k, j))
            for i in state.col_blocks(k):
                ctx.write(("block", i, j))
        elif kind == BDIV:
            _, k, i = item
            ctx.write(("block", i, k))
            for j in state.row_blocks(k):
                ctx.write(("block", i, j))
        else:
            _, k, i, j = item
            ctx.write(("block", i, j))

    def apply_update(item: tuple, ctx: BodyContext) -> None:
        # Cautiousness: declare every access before the first shared-state
        # write, so the per-kind counter bumps only after the declaration.
        kind = item[0]
        if kind == LU0:
            k = item[1]
            ctx.access(("block", k, k))
            state.tasks_run[kind] += 1
            ctx.work(kernels.lu0(mat[k, k]))
            for j in state.row_blocks(k):
                ctx.push((FWD, k, j))
            for i in state.col_blocks(k):
                ctx.push((BDIV, k, i))
        elif kind == FWD:
            _, k, j = item
            ctx.access(("block", k, j))
            state.tasks_run[kind] += 1
            ctx.work(kernels.fwd(mat[k, k], mat[k, j]))
            for i in state.col_blocks(k):
                ctx.push((BMOD, k, i, j))
        elif kind == BDIV:
            _, k, i = item
            ctx.access(("block", i, k))
            state.tasks_run[kind] += 1
            ctx.work(kernels.bdiv(mat[k, k], mat[i, k]))
        else:
            _, k, i, j = item
            ctx.access(("block", i, j))
            state.tasks_run[kind] += 1
            ctx.work(kernels.bmod(mat[i, k], mat[k, j], mat[i, j]))

    return OrderedAlgorithm(
        memory_bound_fraction=MEM_FRACTION,
        name="lu",
        initial_items=[(LU0, k) for k in range(state.num_blocks)],
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=LU_PROPERTIES,
        level_of=level_of,
    )
