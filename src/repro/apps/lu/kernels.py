"""Dense block kernels for right-looking LU without pivoting (§4.4).

These are the four BOTS ``sparselu`` kernels:

* ``lu0``  — factor a diagonal block in place (packed L\\U, unit lower).
* ``fwd``  — forward-solve a row block:   U-part  ``A_kj ← L_kk⁻¹ A_kj``.
* ``bdiv`` — back-solve a column block:   L-part  ``A_ik ← A_ik U_kk⁻¹``.
* ``bmod`` — trailing update:             ``A_ij ← A_ij − A_ik A_kj``.

Each returns its floating-point operation count for the cost model.
"""

from __future__ import annotations

import numpy as np


def lu0(block: np.ndarray) -> float:
    """In-place LU of a diagonal block (no pivoting)."""
    n = block.shape[0]
    for c in range(n - 1):
        pivot = block[c, c]
        if pivot == 0.0:
            raise ZeroDivisionError("zero pivot: matrix not LU-factorable without pivoting")
        block[c + 1 :, c] /= pivot
        block[c + 1 :, c + 1 :] -= np.outer(block[c + 1 :, c], block[c, c + 1 :])
    return (2.0 / 3.0) * n**3


def fwd(diag: np.ndarray, block: np.ndarray) -> float:
    """Forward substitution with the packed unit-lower factor of ``diag``."""
    n = diag.shape[0]
    for r in range(1, n):
        block[r, :] -= diag[r, :r] @ block[:r, :]
    return float(n**3)


def bdiv(diag: np.ndarray, block: np.ndarray) -> float:
    """Back substitution with the upper factor of ``diag`` (right solve)."""
    n = diag.shape[0]
    for c in range(n):
        block[:, c] -= block[:, :c] @ diag[:c, c]
        block[:, c] /= diag[c, c]
    return float(n**3)


def bmod(a_ik: np.ndarray, a_kj: np.ndarray, a_ij: np.ndarray) -> float:
    """Trailing-submatrix update."""
    a_ij -= a_ik @ a_kj
    n = a_ik.shape[0]
    return 2.0 * n**3


def unpack_lu(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a packed diagonal block into (unit-lower L, upper U)."""
    lower = np.tril(packed, -1) + np.eye(packed.shape[0])
    upper = np.triu(packed)
    return lower, upper
