"""k-core decomposition — the streaming flagship app.

Not in the original paper's suite: added as the canonical batched-update
workload (Liu, Shun & Zablotchi 2024, PAPERS.md) for
:class:`~repro.runtime.session.KineticSession`.  One-shot runs compute
coreness as an h-operator fixpoint under every ordered executor; the
streaming adapter repairs it under edge insertions and deletions.
"""

from ..common import AppSpec
from .app import (
    KCORE_PROPERTIES,
    KCoreState,
    make_algorithm,
    make_large_state,
    make_small_state,
    make_tiny_state,
)
from .stream import KCoreAdapter

SPEC = AppSpec(
    name="kcore",
    make_small=lambda: make_small_state(seed=3),
    make_large=lambda: make_large_state(seed=3),
    algorithm=make_algorithm,
    snapshot=lambda state: state.snapshot(),
    validate=lambda state: state.validate(),
    serial_baseline="linear",
    auto_options={"level_windows": True},
    stream_adapter=KCoreAdapter,
    make_tiny_fn=lambda: make_tiny_state(seed=3),
)

__all__ = [
    "KCORE_PROPERTIES",
    "KCoreAdapter",
    "KCoreState",
    "SPEC",
    "make_algorithm",
    "make_large_state",
    "make_small_state",
    "make_tiny_state",
]
