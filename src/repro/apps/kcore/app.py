"""k-core decomposition in the ordered model — the streaming flagship.

Coreness is computed as the fixpoint of the local *h-operator* (Lü et al.;
Liu, Shun & Zablotchi 2024, PAPERS.md): every vertex keeps an estimate
``est[v]``, initialized to its degree, and a task ``(v, r)`` lowers it to
``H({est[u] : u ∈ N(v)})`` — the largest ``h`` such that at least ``h``
neighbors have estimate ``≥ h``.  Any labeling that is pointwise ≥ the true
coreness and satisfies ``est[v] ≤ H(N(v))`` everywhere *is* the coreness
(the h-index locality theorem), so the fixpoint is unique and independent
of execution order — which is exactly what makes the app streamable: a
mutation only has to restore the upper-bound invariant and seed the
vertices whose h-value it disturbed.

Round-based tasks ``(v, r)`` with priority ``(r, v)`` are monotonic and
level-structured (children land in round ``r + 1``), so the app runs under
every round executor.  Push dedup goes through per-run scheduling cells
``("sched", v)`` declared in the rw-set: two same-round updaters of a
common neighbor conflict on its sched cell and serialize in priority
order, so at most one task per ``(v, r)`` exists and the committed task
set is schedule-independent.

Inference audit (``repro infer kcore``): ``monotonic`` and
``structure_based_rw_sets`` are *proved* (round ``r + 1`` children, static
adjacency); the round-gate safe-source test provably reads the global
view, confirming it is correctly not declared local.
"""

from __future__ import annotations

import numpy as np

from ...core.algorithm import OrderedAlgorithm, SourceView
from ...core.context import BodyContext, RWSetContext
from ...core.properties import AlgorithmProperties
from ...core.task import Task
from ...inputs.graphs import random_graph

KCORE_PROPERTIES = AlgorithmProperties(
    monotonic=True,
    structure_based_rw_sets=True,
    stable_source=False,
)

#: Memory-bound share of task execution (bandwidth model, DESIGN.md).
MEM_FRACTION = 0.85

#: Ops per h-index evaluation plus ops per scanned neighbor — k-core is
#: neighbor-gather bound, like BFS but with a small counting pass on top.
NODE_WORK = 60.0
EDGE_WORK = 20.0


class KCoreState:
    """Mutable undirected graph and the coreness estimates over it.

    The adjacency is a list of neighbor sets — mutable on purpose, this is
    the app streaming mutations target.  ``est`` starts at the degrees (a
    pointwise upper bound of coreness) and converges to the coreness.
    """

    def __init__(self, num_nodes: int, edges: list[tuple[int, int]]):
        self.num_nodes = num_nodes
        self.adj: list[set[int]] = [set() for _ in range(num_nodes)]
        for u, v in edges:
            if u != v:
                self.adj[u].add(v)
                self.adj[v].add(u)
        self.est = np.array([len(n) for n in self.adj], dtype=np.int64)

    def edges(self) -> list[tuple[int, int]]:
        """Each undirected edge once, ``(min, max)``-ordered, sorted."""
        return sorted(
            (u, v) for u in range(self.num_nodes) for v in self.adj[u] if u < v
        )

    def snapshot(self) -> bytes:
        return self.est.tobytes()

    def validate(self) -> None:
        """``est`` must equal the true coreness (checked two ways).

        The self-contained check verifies the h-index locality conditions
        that characterize coreness exactly; when networkx is importable the
        estimates are additionally compared against its ``core_number``.
        """
        est, adj = self.est, self.adj
        for v in range(self.num_nodes):
            k = int(est[v])
            # Sub-solution: at least est[v] neighbors with est ≥ est[v].
            assert sum(1 for u in adj[v] if est[u] >= k) >= k, (
                f"vertex {v}: est {k} exceeds its h-index"
            )
        # Super-solution: {v: est[v] ≥ t} must be the t-core's superset —
        # equivalently each maximal level set induces min degree ≥ t, which
        # the sub-solution check already gives.  Cross-check exactly:
        try:
            import networkx as nx
        except ImportError:
            return
        g = nx.Graph()
        g.add_nodes_from(range(self.num_nodes))
        g.add_edges_from(self.edges())
        core = nx.core_number(g)
        for v in range(self.num_nodes):
            assert int(est[v]) == core[v], (
                f"vertex {v}: est {int(est[v])} != coreness {core[v]}"
            )


def make_small_state(seed: int = 0) -> KCoreState:
    _, edges, _ = random_graph(120, avg_degree=6.0, seed=seed)
    return KCoreState(120, edges)


def make_large_state(seed: int = 0) -> KCoreState:
    _, edges, _ = random_graph(2000, avg_degree=8.0, seed=seed)
    return KCoreState(2000, edges)


def make_tiny_state(seed: int = 0) -> KCoreState:
    _, edges, _ = random_graph(28, avg_degree=4.0, seed=seed)
    return KCoreState(28, edges)


def make_algorithm(
    state: KCoreState, seed_items: list[tuple[int, int]] | None = None
) -> OrderedAlgorithm:
    """Build the h-operator fixpoint loop over the current graph.

    ``seed_items`` restricts the initial round-0 tasks to the given
    vertices (the streaming repair path); ``None`` seeds every vertex (cold
    run).  The per-run ``sched`` array dedups pushes: at most one task per
    ``(v, round)`` ever exists, so same-priority ties cannot arise and
    every serializable schedule commits the identical task set.
    """
    adj, est = state.adj, state.est
    n = state.num_nodes
    sched = np.full(n, -1, dtype=np.int64)
    if seed_items is None:
        initial = [(v, 0) for v in range(n)]
    else:
        initial = [
            (int(v), 0) for v in dict.fromkeys(v for v, _ in seed_items)
        ]
    for v, _ in initial:
        sched[v] = 0

    def priority(item: tuple[int, int]) -> tuple[int, int]:
        vertex, rnd = item
        return (rnd, vertex)

    def level_of(item: tuple[int, int]) -> int:
        return item[1]

    def visit_rw_sets(item: tuple[int, int], ctx: RWSetContext) -> None:
        vertex = item[0]
        ctx.write(("core", vertex))
        for u in adj[vertex]:
            ctx.read(("core", u))
            # Push dedup cell — written when scheduling u's recompute.
            ctx.write(("sched", u))

    def apply_update(item: tuple[int, int], ctx: BodyContext) -> None:
        vertex, rnd = item
        ctx.access(("core", vertex))
        ctx.work(NODE_WORK)
        cap = int(est[vertex])
        if cap == 0:
            return
        # H-operator, counting pass clipped at the current estimate.
        bins = [0] * (cap + 1)
        for u in adj[vertex]:
            ctx.access(("core", u))
            ctx.work(EDGE_WORK)
            e = int(est[u])
            bins[cap if e >= cap else e] += 1
        h = 0
        count = 0
        for level in range(cap, 0, -1):
            count += bins[level]
            if count >= level:
                h = level
                break
        if h >= cap:
            return
        nxt = rnd + 1
        # Only neighbors whose estimate exceeded the new value can see
        # their h-index drop; the sched cell dedups rival pushers.
        targets = [u for u in adj[vertex] if est[u] > h and sched[u] < nxt]
        for u in targets:
            ctx.access(("sched", u))
        est[vertex] = h
        for u in targets:
            sched[u] = nxt
            ctx.push((int(u), nxt))

    def safe_source_test(task: Task, view: SourceView) -> bool:
        # Safe exactly at the current global minimum round.
        return view.min_priority is not None and task.priority[0] == view.min_priority[0]

    return OrderedAlgorithm(
        memory_bound_fraction=MEM_FRACTION,
        name="kcore",
        initial_items=initial,
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=KCORE_PROPERTIES,
        safe_source_test=safe_source_test,
        level_of=level_of,
    )
