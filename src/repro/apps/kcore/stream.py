"""Streaming mutation adapter for k-core (Sarıyüce-style edge updates).

Edge deletions keep the estimate array a pointwise upper bound of the new
coreness for free (deleting an edge never raises coreness), so the
endpoints alone reseed the h-operator repair.  Edge insertions can raise
coreness by at most one, and only inside the *subcore* (Sarıyüce et al.,
Theorem 1): vertices at the insertion level ``k = min(core(u), core(v))``
reachable from the level-``k`` endpoints through paths of coreness-``k``
vertices.  The adapter peels the subcore with candidate-degree eviction —
leaving exactly the promoted vertices — bumps their estimates and seeds
them, so the repair run certifies the new fixpoint rather than searching
for it.  Computing ``k`` and the subcore needs *converged* estimates,
hence ``flush_before`` on insertions.
"""

from __future__ import annotations

from ...core.mutations import AddEdge, MutationAdapter, MutationError, RemoveEdge
from .app import KCoreState, make_algorithm


class KCoreAdapter(MutationAdapter):
    supported = (AddEdge, RemoveEdge)
    watermark_policy = "fixpoint"
    executor = "ikdg"
    level_windows = True

    def make_algorithm(self, seed_items=None, state=None):
        return make_algorithm(
            self.state if state is None else state, seed_items
        )

    def fork_cold(self) -> KCoreState:
        return KCoreState(self.state.num_nodes, self.state.edges())

    def flush_before(self, mutation) -> bool:
        # The subcore bump reads converged estimates.
        return isinstance(mutation, AddEdge)

    def apply(self, mutation) -> list[tuple[int, int]]:
        state = self.state
        u, v = int(mutation.u), int(mutation.v)
        n = state.num_nodes
        if not (0 <= u < n and 0 <= v < n):
            raise MutationError(
                f"kcore: edge ({u}, {v}) outside vertex range [0, {n})"
            )
        if u == v:
            raise MutationError(f"kcore: self-loop ({u}, {u}) not allowed")
        if isinstance(mutation, RemoveEdge):
            if v not in state.adj[u]:
                return []
            state.adj[u].discard(v)
            state.adj[v].discard(u)
            return [(u, 0), (v, 0)]
        if v in state.adj[u]:
            return []
        est = state.est
        # Estimates are converged coreness here (flush_before drained the
        # frontier), so the subcore rule applies exactly.
        k = int(min(est[u], est[v]))
        state.adj[u].add(v)
        state.adj[v].add(u)
        # Subcore traversal: only level-k vertices connected to a level-k
        # endpoint through level-k paths can be promoted (the new edge
        # itself bridges the endpoints' subcores, so roots are both
        # endpoints at level k).
        roots = [w for w in (u, v) if est[w] == k]
        subcore = set(roots)
        stack = list(roots)
        while stack:
            w = stack.pop()
            for x in state.adj[w]:
                if x not in subcore and est[x] == k:
                    subcore.add(x)
                    stack.append(x)
        # Candidate-degree peeling: w can only reach coreness k+1 through
        # neighbors already at coreness > k (the old (k+1)-core survives
        # the insertion) or fellow candidates.  Evicting every candidate
        # whose count drops to ≤ k — cascading — leaves exactly the
        # promoted set, so the estimates below are the *new* coreness and
        # the seeded repair tasks merely certify the fixpoint.
        cd = {
            w: sum(1 for x in state.adj[w] if est[x] > k or x in subcore)
            for w in subcore
        }
        evict = [w for w, c in cd.items() if c <= k]
        while evict:
            w = evict.pop()
            subcore.discard(w)
            for x in state.adj[w]:
                if x in subcore:
                    cd[x] -= 1
                    if cd[x] == k:
                        evict.append(x)
        for w in subcore:
            est[w] += 1
        return [(w, 0) for w in sorted(subcore)]
