"""Single-source shortest paths (delta-stepping flagship).

Weighted counterparts of the BFS inputs: a 2-D grid (road stand-in, long
weighted diameter) and a low-diameter random graph.  Small integer weights
keep distance levels dense, so the relaxed executor's delta buckets hold
real parallelism; final labels validate against a reference Dijkstra.
"""

from ..common import AppSpec
from .app import (
    DEFAULT_DELTA,
    SSSP_PROPERTIES,
    SSSPState,
    dijkstra_distances,
    make_algorithm,
    make_grid_state,
    make_random_state,
)

SPEC = AppSpec(
    name="sssp",
    make_small=lambda: make_grid_state(60, 60, seed=5),
    make_large=lambda: make_random_state(20000, avg_degree=4.0, seed=5),
    algorithm=make_algorithm,
    snapshot=lambda state: state.snapshot(),
    validate=lambda state: state.validate(),
    serial_baseline="heap",
    make_tiny_fn=lambda: make_grid_state(8, 8, seed=1),
    relaxed_delta=DEFAULT_DELTA,
)

__all__ = [
    "DEFAULT_DELTA",
    "SSSPState",
    "SSSP_PROPERTIES",
    "SPEC",
    "dijkstra_distances",
    "make_algorithm",
    "make_grid_state",
    "make_random_state",
]
