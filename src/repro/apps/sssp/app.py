"""Single-source shortest paths in the ordered model (delta-stepping).

A task ``(n, d)`` lowers node ``n``'s distance label to ``d``; updates must
appear to execute in increasing distance order (Dijkstra's order).  Like
BFS, SSSP is *not* stable-source — a shorter tentative distance for a node
can be created after a longer one is already a source — so the safe-source
test admits a source only at the current global minimum distance.  Unlike
BFS the levels are weighted distances, so exact ordering leaves very little
parallelism per level: this is the flagship workload for the *relaxed*
executor, whose delta mode fuses ``delta`` consecutive distance values into
one bucket (delta-stepping, Meyer & Sanders 2003) and whose MultiQueue mode
pops approximately-least tasks.  The algorithm is *relaxable*: the body is
a monotone relax step (labels only decrease, stale updates no-op), so any
execution order converges to the Dijkstra fixpoint.

Inference audit (``repro infer sssp``): ``monotonic`` holds because edge
weights are positive (children land at ``d + w``, ``w >= 1``);
``structure_based_rw_sets`` is proved (the visitor writes the task's node
on the static graph and reads nothing the body writes).
"""

from __future__ import annotations

import heapq

import numpy as np

from ...core.algorithm import OrderedAlgorithm, SourceView
from ...core.context import BodyContext, RWSetContext
from ...core.properties import AlgorithmProperties
from ...core.task import Task
from ...galois.graphs import CSRGraph
from ...inputs.graphs import grid2d, random_graph

SSSP_PROPERTIES = AlgorithmProperties(
    monotonic=True,
    structure_based_rw_sets=True,
    stable_source=False,
)

#: Memory-bound share of task execution (bandwidth model, DESIGN.md).
MEM_FRACTION = 0.9

#: Base ops per relax plus ops per scanned edge; SSSP is latency-bound
#: like BFS but touches edge weights too, so edges cost a little more.
NODE_WORK = 90.0
EDGE_WORK = 30.0

#: Default delta-bucket width for the relaxed executor: about half the
#: mean edge weight of the bundled inputs, the classic delta-stepping
#: sweet spot between bucket parallelism and wasted re-relaxations.
DEFAULT_DELTA = 8


class SSSPState:
    """Weighted graph, source, and the distance labels being computed."""

    def __init__(self, graph: CSRGraph, source: int = 0):
        if graph.edge_weights is None:
            raise ValueError("SSSP requires an edge-weighted graph")
        self.graph = graph
        self.source = source
        self.dist = np.full(graph.num_nodes, -1, dtype=np.int64)

    def snapshot(self) -> bytes:
        return self.dist.tobytes()

    def validate(self) -> None:
        """Final labels must be exactly Dijkstra's distances."""
        expect = dijkstra_distances(self.graph, self.source)
        assert self.dist[self.source] == 0
        mismatched = np.nonzero(self.dist != expect)[0]
        assert mismatched.size == 0, (
            f"{mismatched.size} label(s) differ from Dijkstra "
            f"(first: node {int(mismatched[0])}, "
            f"got {int(self.dist[mismatched[0]])}, "
            f"want {int(expect[mismatched[0]])})"
        )


def dijkstra_distances(graph: CSRGraph, source: int) -> np.ndarray:
    """Reference solver: textbook binary-heap Dijkstra (int distances)."""
    dist = np.full(graph.num_nodes, -1, dtype=np.int64)
    dist[source] = 0
    heap: list[tuple[int, int]] = [(0, source)]
    weights = graph.edge_weights
    column_ids = graph.column_ids
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist[node]:
            continue  # stale heap entry
        for eid in graph.edge_range(node):
            nd = d + int(weights[eid])
            neighbor = int(column_ids[eid])
            if dist[neighbor] == -1 or nd < dist[neighbor]:
                dist[neighbor] = nd
                heapq.heappush(heap, (nd, neighbor))
    return dist


def make_grid_state(nx: int, ny: int, max_weight: int = 15, seed: int = 0) -> SSSPState:
    """Road-network stand-in: a 2-D grid with small integer weights."""
    graph, _, _ = grid2d(nx, ny, max_weight=max_weight, seed=seed)
    return SSSPState(graph, source=0)


def make_random_state(
    num_nodes: int, avg_degree: float = 4.0, max_weight: int = 15, seed: int = 0
) -> SSSPState:
    """Low-diameter random graph: many distance ties, fat delta buckets."""
    graph, _, _ = random_graph(
        num_nodes, avg_degree=avg_degree, max_weight=max_weight, seed=seed
    )
    return SSSPState(graph, source=0)


def make_algorithm(state: SSSPState) -> OrderedAlgorithm:
    """The ordered SSSP algorithm over ``state``."""
    graph, dist = state.graph, state.dist
    weights = graph.edge_weights
    column_ids = graph.column_ids

    def priority(item: tuple[int, int]) -> tuple[int, int]:
        node, d = item
        return (d, node)

    def level_of(item: tuple[int, int]) -> int:
        return item[1]

    def visit_rw_sets(item: tuple[int, int], ctx: RWSetContext) -> None:
        ctx.write(("node", item[0]))

    def apply_update(item: tuple[int, int], ctx: BodyContext) -> None:
        node, d = item
        ctx.access(("node", node))
        ctx.work(NODE_WORK)
        if dist[node] != -1 and dist[node] <= d:
            return  # stale update
        dist[node] = d
        for eid in graph.edge_range(node):
            ctx.work(EDGE_WORK)
            nd = d + int(weights[eid])
            neighbor = int(column_ids[eid])
            labelled = dist[neighbor]
            if labelled == -1 or labelled > nd:
                ctx.push((neighbor, nd))

    def safe_source_test(task: Task, view: SourceView) -> bool:
        # Safe exactly at the current global minimum distance.
        return view.min_priority is not None and task.priority[0] == view.min_priority[0]

    return OrderedAlgorithm(
        memory_bound_fraction=MEM_FRACTION,
        name="sssp",
        initial_items=[(state.source, 0)],
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=SSSP_PROPERTIES,
        safe_source_test=safe_source_test,
        level_of=level_of,
        relaxable=True,
    )
