"""Worklists in the style of the Galois runtime.

:class:`OrderedWorklist` is the shared priority-ordered worklist the KDG
executors schedule from.  :class:`PerThreadWorklists` models the per-thread
priority queues used by the manual Billiards executor to reduce safe-source
test invocations (§4.3).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any, Generic, TypeVar

from .priorityqueue import BinaryHeap

T = TypeVar("T")


class OrderedWorklist(Generic[T]):
    """A shared, priority-ordered worklist (earliest priority first)."""

    def __init__(self, key: Callable[[T], Any], items: Iterable[T] = ()):
        self.key = key
        self._heap: BinaryHeap[T] = BinaryHeap(key, items)
        self.pushes = 0
        self.pops = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, item: T) -> None:
        self.pushes += 1
        self._heap.push(item)

    def pop(self) -> T:
        self.pops += 1
        return self._heap.pop()

    def peek(self) -> T:
        return self._heap.peek()

    def pop_prefix(self, max_items: int) -> list[T]:
        """Pop up to ``max_items`` earliest-priority items (a priority prefix)."""
        if max_items < 0:
            raise ValueError("max_items must be >= 0")
        out: list[T] = []
        while self._heap and len(out) < max_items:
            out.append(self.pop())
        return out

    def pop_level(self) -> tuple[Any, list[T]]:
        """Pop every item whose priority equals the current minimum.

        Returns ``(level_key, items)``.  Used by the level-by-level executor;
        the level key is the priority of the earliest item.
        """
        if not self._heap:
            raise IndexError("pop_level from empty worklist")
        first = self.pop()
        level = self.key(first)
        items = [first]
        while self._heap and self.key(self._heap.peek()) == level:
            items.append(self.pop())
        return level, items


class PerThreadWorklists(Generic[T]):
    """One ordered worklist per simulated thread, with owner hashing."""

    def __init__(self, num_threads: int, key: Callable[[T], Any]):
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = num_threads
        self.queues = [OrderedWorklist(key) for _ in range(num_threads)]

    def push(self, item: T, owner: int) -> None:
        self.queues[owner % self.num_threads].push(item)

    def __len__(self) -> int:
        return sum(len(q) for q in self.queues)

    def global_min(self) -> T | None:
        """Earliest item across all queues (None when all are empty)."""
        best: T | None = None
        best_key: Any = None
        for queue in self.queues:
            if queue:
                item = queue.peek()
                item_key = queue.key(item)
                if best is None or item_key < best_key:
                    best, best_key = item, item_key
        return best
