"""Graph data structures from the Galois library that the apps build on.

:class:`CSRGraph` is a compressed-sparse-row immutable graph used by BFS and
MST; it mirrors Galois' ``LC_CSR_Graph``.  Node data lives in parallel
arrays owned by the application.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np


class CSRGraph:
    """Immutable directed graph in compressed sparse row form.

    For undirected use, add each edge in both directions (see
    :meth:`from_undirected_edges`).
    """

    def __init__(
        self,
        num_nodes: int,
        row_starts: np.ndarray,
        column_ids: np.ndarray,
        edge_weights: np.ndarray | None = None,
    ):
        if len(row_starts) != num_nodes + 1:
            raise ValueError("row_starts must have num_nodes + 1 entries")
        if row_starts[0] != 0 or row_starts[-1] != len(column_ids):
            raise ValueError("row_starts endpoints are inconsistent")
        self.num_nodes = num_nodes
        self.row_starts = row_starts
        self.column_ids = column_ids
        self.edge_weights = edge_weights

    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        weights: Iterable[float] | np.ndarray | None = None,
    ) -> "CSRGraph":
        """Build from a directed edge list (stable within each source node)."""
        edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        sources = edge_array[:, 0].astype(np.int64)
        targets = edge_array[:, 1].astype(np.int64)
        if len(sources) and (sources.min() < 0 or sources.max() >= num_nodes):
            raise ValueError("edge source out of range")
        if len(targets) and (targets.min() < 0 or targets.max() >= num_nodes):
            raise ValueError("edge target out of range")
        order = np.argsort(sources, kind="stable")
        sources, targets = sources[order], targets[order]
        counts = np.bincount(sources, minlength=num_nodes)
        row_starts = np.concatenate(([0], np.cumsum(counts)))
        weight_array = None
        if weights is not None:
            weight_array = np.asarray(
                list(weights) if not isinstance(weights, np.ndarray) else weights,
                dtype=np.float64,
            )[order]
        return cls(num_nodes, row_starts, targets, weight_array)

    @classmethod
    def from_undirected_edges(
        cls,
        num_nodes: int,
        edges: Iterable[tuple[int, int]],
        weights: Iterable[float] | None = None,
    ) -> "CSRGraph":
        """Build a symmetric graph: every edge is added in both directions."""
        edge_list = list(edges)
        both = edge_list + [(b, a) for a, b in edge_list]
        weight_list = None
        if weights is not None:
            weight_list = list(weights)
            weight_list = weight_list + weight_list
        return cls.from_edges(num_nodes, both, weight_list)

    @property
    def num_edges(self) -> int:
        return len(self.column_ids)

    def neighbors(self, node: int) -> np.ndarray:
        start, end = self.row_starts[node], self.row_starts[node + 1]
        return self.column_ids[start:end]

    def out_degree(self, node: int) -> int:
        return int(self.row_starts[node + 1] - self.row_starts[node])

    def edge_range(self, node: int) -> range:
        """Edge indices out of ``node`` (index into column_ids/edge_weights)."""
        return range(int(self.row_starts[node]), int(self.row_starts[node + 1]))

    def edges(self) -> Iterator[tuple[int, int]]:
        for node in range(self.num_nodes):
            for eid in self.edge_range(node):
                yield node, int(self.column_ids[eid])
