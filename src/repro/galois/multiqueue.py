"""Bounded-relaxation MultiQueue scheduler (Alistarh et al., SPAA 2015/2018).

A MultiQueue spreads one logical priority queue over ``c`` independent
sequential heaps.  ``push`` round-robins over the heaps; ``pop`` samples two
of them and pops the head with the earlier key ("power of two choices").
Every heap serves its own minimum, so any pending item earlier than a pop
lives in one of the other ``c - 1`` heaps — with ``c = 2`` both heaps are
always sampled and every pop is an exact key-minimum; for larger ``c`` the
rank error of a pop is bounded in expectation (O(c), Alistarh et al.), not
worst-case, which is exactly why the rank-error oracle *measures* it
instead of assuming it.  Real MultiQueues trade that slack for uncontended
per-thread heaps; here the pay-off is modeled as cheaper per-queue
scheduling charges in the relaxed executor.

Sampling is deterministic: a per-instance xorshift generator seeded from a
constructor argument drives queue selection, so a run is exactly
reproducible — the property the differential oracle and the bench suite's
``sim_cycles`` gate rely on.  With ``relaxation=1`` there is a single heap,
every sample hits it, and push/pop order is bit-identical to
:class:`~repro.galois.worklist.OrderedWorklist` (the exact shared worklist),
which both the relaxed executor's exact mode and the property suite exploit.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any, Generic, TypeVar

from .priorityqueue import BinaryHeap

T = TypeVar("T")

_MASK64 = (1 << 64) - 1


class MultiQueue(Generic[T]):
    """``c`` sequential heaps behind one relaxed priority-queue interface."""

    def __init__(
        self,
        key: Callable[[T], Any],
        items: Iterable[T] = (),
        relaxation: int = 1,
        seed: int = 0x9E3779B9,
    ):
        if relaxation < 1:
            raise ValueError(f"relaxation must be >= 1 (got {relaxation})")
        self.key = key
        self.relaxation = relaxation
        self._queues: list[BinaryHeap[T]] = [
            BinaryHeap(key) for _ in range(relaxation)
        ]
        self._push_cursor = 0
        # Non-zero xorshift64 state; the seed only shapes *which* legal
        # relaxed schedule a run takes, never whether it is legal.
        self._rng_state = (seed or 0x9E3779B9) & _MASK64
        self._size = 0
        self.pushes = 0
        self.pops = 0
        for item in items:
            self.push(item)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def _rand(self) -> int:
        x = self._rng_state
        x ^= (x << 13) & _MASK64
        x ^= x >> 7
        x ^= (x << 17) & _MASK64
        self._rng_state = x
        return x

    def push(self, item: T) -> None:
        """Insert ``item`` into the next heap in round-robin order."""
        self._queues[self._push_cursor].push(item)
        self._push_cursor += 1
        if self._push_cursor == self.relaxation:
            self._push_cursor = 0
        self._size += 1
        self.pushes += 1

    def target_queue_len(self) -> int:
        """Length of the heap the *next* push lands in (charging hook)."""
        return len(self._queues[self._push_cursor])

    def _sample(self) -> BinaryHeap[T]:
        """Pick the serving heap: best-of-two among non-empty heaps."""
        if self.relaxation == 1:
            return self._queues[0]
        nonempty = [q for q in self._queues if q]
        if len(nonempty) == 1:
            return nonempty[0]
        i = self._rand() % len(nonempty)
        j = self._rand() % (len(nonempty) - 1)
        if j >= i:
            j += 1
        a, b = nonempty[i], nonempty[j]
        ka, kb = self.key(a.peek()), self.key(b.peek())
        if kb < ka:
            return b
        return a

    def pop(self) -> T:
        """Pop the earlier of two sampled heap heads (the relaxed pop)."""
        if not self._size:
            raise IndexError("pop from empty MultiQueue")
        queue = self._sample()
        self._last_queue_len = len(queue)
        self._size -= 1
        self.pops += 1
        return queue.pop()

    def last_queue_len(self) -> int:
        """Length (pre-pop) of the heap the last :meth:`pop` served from."""
        return getattr(self, "_last_queue_len", 0)

    def peek(self) -> T:
        """The globally earliest item (exact — a scan, not the relaxed pop)."""
        if not self._size:
            raise IndexError("peek from empty MultiQueue")
        best: T | None = None
        best_key: Any = None
        for queue in self._queues:
            if queue:
                head = queue.peek()
                head_key = self.key(head)
                if best is None or head_key < best_key:
                    best, best_key = head, head_key
        return best  # type: ignore[return-value]
