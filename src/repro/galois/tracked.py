"""Conflict-aware data wrappers in the style of Galois library structures.

The paper's programming model requires "concurrent data structures from the
Galois library ... which contain hooks into our runtime so that the runtime
can monitor accesses of a task to shared data" (§3.1).  These wrappers are
those hooks: they bind a store to the current task's context, so reads and
writes are *declared* (in the cautious prefix) or *checked* (in the body)
without the application peppering ``ctx.read/write/access`` calls itself.

Usage::

    values = TrackedArray("value", [0.0] * n)

    def visit_rw_sets(item, ctx):
        with values.declaring(ctx):
            values.touch(item.node)          # declares a write intent

    def apply_update(item, ctx):
        with values.accessing(ctx):
            values[item.node] += 1.0         # checked against the rw-set
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any

from ..core.context import BodyContext, RWSetContext


class TrackedArray:
    """A named array whose element accesses flow through task contexts."""

    def __init__(self, name: str, values: list[Any]):
        self.name = name
        self._values = list(values)
        self._declare_ctx: RWSetContext | None = None
        self._access_ctx: BodyContext | None = None

    def __len__(self) -> int:
        return len(self._values)

    def location(self, index: int) -> tuple[str, int]:
        """The abstract location id of one element."""
        return (self.name, index)

    # ------------------------------------------------------------------
    # Context binding
    # ------------------------------------------------------------------
    @contextmanager
    def declaring(self, ctx: RWSetContext):
        """Bind the cautious prefix: touches become declarations."""
        self._declare_ctx = ctx
        try:
            yield self
        finally:
            self._declare_ctx = None

    @contextmanager
    def accessing(self, ctx: BodyContext):
        """Bind the loop body: element accesses are checked."""
        self._access_ctx = ctx
        try:
            yield self
        finally:
            self._access_ctx = None

    # ------------------------------------------------------------------
    # Declarations (prefix)
    # ------------------------------------------------------------------
    def touch(self, index: int) -> None:
        """Declare a write intent on one element (prefix only)."""
        if self._declare_ctx is None:
            raise RuntimeError(f"{self.name}: touch() outside declaring()")
        self._declare_ctx.write(self.location(index))

    def observe(self, index: int) -> Any:
        """Declare a read intent and return the value (prefix only)."""
        if self._declare_ctx is None:
            raise RuntimeError(f"{self.name}: observe() outside declaring()")
        self._declare_ctx.read(self.location(index))
        return self._values[index]

    # ------------------------------------------------------------------
    # Checked element access (body)
    # ------------------------------------------------------------------
    def __getitem__(self, index: int) -> Any:
        if self._access_ctx is not None:
            self._access_ctx.access(self.location(index))
        return self._values[index]

    def __setitem__(self, index: int, value: Any) -> None:
        if self._access_ctx is not None:
            self._access_ctx.access(self.location(index))
        self._values[index] = value

    def raw(self) -> list[Any]:
        """The underlying storage (snapshotting; bypasses tracking)."""
        return self._values
