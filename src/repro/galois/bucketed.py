"""OBIM-style bucketed worklist.

Galois' ordered-by-integer-metric (OBIM) worklist keeps one bucket (FIFO)
per priority *level* and serves buckets in level order.  Transfers are O(1)
amortized — no heap — which is what makes level-by-level windowing cheap
for algorithms like BFS whose priorities form few discrete levels.

Items within a bucket keep insertion order; callers that need a total order
inside a level (the KDG executors do, via task keys) sort the popped level
themselves.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable, Iterable
from typing import Any, Generic, TypeVar

T = TypeVar("T")


class BucketedWorklist(Generic[T]):
    """Per-level FIFO buckets served in increasing level order."""

    def __init__(self, level_of: Callable[[T], Any], items: Iterable[T] = ()):
        self.level_of = level_of
        self._buckets: dict[Any, deque[T]] = {}
        self._level_heap: list[Any] = []
        self._size = 0
        for item in items:
            self.push(item)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push(self, item: T) -> None:
        level = self.level_of(item)
        bucket = self._buckets.get(level)
        if bucket is None:
            bucket = deque()
            self._buckets[level] = bucket
            heapq.heappush(self._level_heap, level)
        bucket.append(item)
        self._size += 1

    def _front_level(self) -> Any:
        while self._level_heap:
            level = self._level_heap[0]
            bucket = self._buckets.get(level)
            if bucket:
                return level
            heapq.heappop(self._level_heap)
            self._buckets.pop(level, None)
        raise IndexError("empty bucketed worklist")

    def current_level(self) -> Any:
        """The earliest non-empty level."""
        return self._front_level()

    def peek(self) -> T:
        return self._buckets[self._front_level()][0]

    def pop(self) -> T:
        level = self._front_level()
        item = self._buckets[level].popleft()
        self._size -= 1
        return item

    def pop_level(self) -> tuple[Any, list[T]]:
        """Remove and return the entire earliest level."""
        level = self._front_level()
        bucket = self._buckets.pop(level)
        items = list(bucket)
        self._size -= len(items)
        return level, items

    def num_levels(self) -> int:
        return sum(1 for bucket in self._buckets.values() if bucket)
