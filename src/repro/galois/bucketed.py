"""OBIM-style bucketed worklist.

Galois' ordered-by-integer-metric (OBIM) worklist keeps one bucket (FIFO)
per priority *level* and serves buckets in level order.  Transfers are O(1)
amortized — no heap — which is what makes level-by-level windowing cheap
for algorithms like BFS whose priorities form few discrete levels.

Items within a bucket keep insertion order; callers that need a total order
inside a level (the KDG executors do, via task keys) sort the popped level
themselves.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable, Iterable
from typing import Any, Generic, TypeVar

T = TypeVar("T")


class BucketedWorklist(Generic[T]):
    """Per-level FIFO buckets served in increasing level order."""

    def __init__(self, level_of: Callable[[T], Any], items: Iterable[T] = ()):
        self.level_of = level_of
        self._buckets: dict[Any, deque[T]] = {}
        self._level_heap: list[Any] = []
        self._size = 0
        for item in items:
            self.push(item)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push(self, item: T) -> None:
        level = self.level_of(item)
        bucket = self._buckets.get(level)
        if bucket is None:
            bucket = deque()
            self._buckets[level] = bucket
            heapq.heappush(self._level_heap, level)
        bucket.append(item)
        self._size += 1

    def _front_level(self) -> Any:
        while self._level_heap:
            level = self._level_heap[0]
            bucket = self._buckets.get(level)
            if bucket:
                return level
            heapq.heappop(self._level_heap)
            self._buckets.pop(level, None)
        raise IndexError("empty bucketed worklist")

    def current_level(self) -> Any:
        """The earliest non-empty level."""
        return self._front_level()

    def peek(self) -> T:
        return self._buckets[self._front_level()][0]

    def pop(self) -> T:
        level = self._front_level()
        item = self._buckets[level].popleft()
        self._size -= 1
        return item

    def pop_level(self) -> tuple[Any, list[T]]:
        """Remove and return the entire earliest level."""
        level = self._front_level()
        bucket = self._buckets.pop(level)
        items = list(bucket)
        self._size -= len(items)
        return level, items

    def decrease(self, item: T, old_level: Any) -> None:
        """Re-level ``item`` after its priority decreased.

        ``old_level`` is the level the item was pushed under (the caller
        knows it — ``level_of`` typically reads mutated state, so the old
        level cannot be recomputed here).  The item loses its FIFO position
        in the old bucket and is appended to its new bucket, exactly as a
        pop-and-repush would place it — but without disturbing the rest of
        the old level, which previously had to be popped wholesale.

        Raises :class:`KeyError` when the item is not queued at
        ``old_level``.  Removal is O(old bucket); the flat worklist
        (:class:`repro.core.flat.bucketed.FlatBucketWorklist`) defers it
        instead.
        """
        bucket = self._buckets.get(old_level)
        if bucket is None:
            raise KeyError(f"no bucket at level {old_level!r}")
        try:
            bucket.remove(item)
        except ValueError:
            raise KeyError(
                f"item {item!r} is not queued at level {old_level!r}"
            ) from None
        self._size -= 1
        self.push(item)

    def num_levels(self) -> int:
        return sum(1 for bucket in self._buckets.values() if bucket)
