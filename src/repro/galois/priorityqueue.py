"""Priority queues used by the serial baseline and the runtime worklists.

Two implementations:

* :class:`BinaryHeap` — array-backed binary min-heap with lazy deletion,
  matching the priority queue the paper's optimized serial baselines use.
* :class:`PairingHeap` — a classic pairing heap supporting O(1) amortized
  meld/insert, used where queues are merged (per-station queues in the
  manual DES executor).

Both order items by a caller-supplied key and break ties by insertion
sequence so that iteration order is fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Iterable
from typing import Any, Generic, TypeVar

T = TypeVar("T")


class BinaryHeap(Generic[T]):
    """Min-heap with a deterministic total order and lazy removal."""

    def __init__(self, key: Callable[[T], Any], items: Iterable[T] = ()):
        self._key = key
        self._counter = itertools.count()
        self._heap: list[tuple[Any, int, T]] = [
            (key(item), next(self._counter), item) for item in items
        ]
        heapq.heapify(self._heap)
        self._removed: set[int] = set()
        self._live = len(self._heap)

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, item: T) -> int:
        """Insert ``item``; returns a ticket usable with :meth:`remove`."""
        ticket = next(self._counter)
        heapq.heappush(self._heap, (self._key(item), ticket, item))
        self._live += 1
        return ticket

    def _compact(self) -> None:
        while self._heap and self._heap[0][1] in self._removed:
            _, ticket, _ = heapq.heappop(self._heap)
            self._removed.discard(ticket)

    def peek(self) -> T:
        if not self._live:
            raise IndexError("peek from empty heap")
        self._compact()
        return self._heap[0][2]

    def pop(self) -> T:
        if not self._live:
            raise IndexError("pop from empty heap")
        self._compact()
        _, _, item = heapq.heappop(self._heap)
        self._live -= 1
        return item

    def remove(self, ticket: int) -> None:
        """Lazily remove the entry created with ``ticket``."""
        self._removed.add(ticket)
        self._live -= 1

    def drain(self) -> Iterable[T]:
        """Pop everything, in priority order."""
        while self:
            yield self.pop()


class _PairingNode(Generic[T]):
    __slots__ = ("item", "key", "child", "sibling")

    def __init__(self, item: T, key: Any):
        self.item = item
        self.key = key
        self.child: _PairingNode[T] | None = None
        self.sibling: _PairingNode[T] | None = None


class PairingHeap(Generic[T]):
    """Pairing heap with O(1) amortized insert and meld.

    The tie-break counter is shared across instances so that melding two
    heaps preserves a single global insertion order among equal keys —
    a per-heap counter would make the post-meld order of ties depend on
    which heap each entry came from.
    """

    _counter = itertools.count()

    def __init__(self, key: Callable[[T], Any], items: Iterable[T] = ()):
        self._key = key
        self._root: _PairingNode[T] | None = None
        self._size = 0
        for item in items:
            self.push(item)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def _merge(
        self, a: _PairingNode[T] | None, b: _PairingNode[T] | None
    ) -> _PairingNode[T] | None:
        if a is None:
            return b
        if b is None:
            return a
        if b.key < a.key:
            a, b = b, a
        b.sibling = a.child
        a.child = b
        return a

    def push(self, item: T) -> None:
        node = _PairingNode(item, (self._key(item), next(self._counter)))
        self._root = self._merge(self._root, node)
        self._size += 1

    def peek(self) -> T:
        if self._root is None:
            raise IndexError("peek from empty heap")
        return self._root.item

    def pop(self) -> T:
        if self._root is None:
            raise IndexError("pop from empty heap")
        item = self._root.item
        self._root = self._merge_pairs(self._root.child)
        self._size -= 1
        return item

    def _merge_pairs(self, node: _PairingNode[T] | None) -> _PairingNode[T] | None:
        # Iterative two-pass pairing to avoid recursion-depth limits.
        pairs: list[_PairingNode[T]] = []
        while node is not None:
            nxt = node.sibling
            node.sibling = None
            if nxt is not None:
                nxt2 = nxt.sibling
                nxt.sibling = None
                pairs.append(self._merge(node, nxt))  # type: ignore[arg-type]
                node = nxt2
            else:
                pairs.append(node)
                node = None
        result: _PairingNode[T] | None = None
        for paired in reversed(pairs):
            result = self._merge(paired, result)
        return result

    def meld(self, other: "PairingHeap[T]") -> None:
        """Absorb ``other`` (which becomes empty) in O(1)."""
        self._root = self._merge(self._root, other._root)
        self._size += other._size
        other._root = None
        other._size = 0
