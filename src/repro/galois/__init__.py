"""Galois-style library substrate: graphs, meshes, worklists, union-find."""

from .bucketed import BucketedWorklist
from .graphs import CSRGraph
from .mesh import TriangularMesh
from .multiqueue import MultiQueue
from .priorityqueue import BinaryHeap, PairingHeap
from .tracked import TrackedArray
from .unionfind import UnionFind
from .worklist import OrderedWorklist, PerThreadWorklists

__all__ = [
    "BinaryHeap",
    "BucketedWorklist",
    "CSRGraph",
    "MultiQueue",
    "OrderedWorklist",
    "PairingHeap",
    "PerThreadWorklists",
    "TrackedArray",
    "TriangularMesh",
    "UnionFind",
]
