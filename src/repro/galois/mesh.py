"""2-D triangular meshes for the AVI application.

The paper discretizes the simulation domain into a triangle mesh; tasks are
elemental updates whose rw-sets are the element's vertices.  The mesh is
static topology (AVI never remeshes), so adjacency is precomputed.
"""

from __future__ import annotations

import numpy as np


class TriangularMesh:
    """Static triangle mesh: vertex positions plus element connectivity."""

    def __init__(self, positions: np.ndarray, triangles: np.ndarray):
        positions = np.asarray(positions, dtype=np.float64)
        triangles = np.asarray(triangles, dtype=np.int64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError("positions must be (num_vertices, 2)")
        if triangles.ndim != 2 or triangles.shape[1] != 3:
            raise ValueError("triangles must be (num_elements, 3)")
        if triangles.size and triangles.max() >= len(positions):
            raise ValueError("triangle vertex id out of range")
        self.positions = positions
        self.triangles = triangles
        self.vertex_elements: list[list[int]] = [[] for _ in range(len(positions))]
        for eid, tri in enumerate(triangles):
            for v in tri:
                self.vertex_elements[int(v)].append(eid)

    @property
    def num_vertices(self) -> int:
        return len(self.positions)

    @property
    def num_elements(self) -> int:
        return len(self.triangles)

    def vertices_of(self, elem: int) -> tuple[int, int, int]:
        a, b, c = self.triangles[elem]
        return int(a), int(b), int(c)

    def element_neighbors(self, elem: int) -> list[int]:
        """Elements sharing at least one vertex with ``elem`` (sorted, unique)."""
        seen: set[int] = set()
        for v in self.triangles[elem]:
            seen.update(self.vertex_elements[int(v)])
        seen.discard(elem)
        return sorted(seen)

    def element_area(self, elem: int) -> float:
        a, b, c = self.triangles[elem]
        pa, pb, pc = self.positions[a], self.positions[b], self.positions[c]
        return abs(
            (pb[0] - pa[0]) * (pc[1] - pa[1]) - (pc[0] - pa[0]) * (pb[1] - pa[1])
        ) / 2.0

    @classmethod
    def structured(cls, nx: int, ny: int) -> "TriangularMesh":
        """Unit-square grid of ``nx × ny`` cells, each split into 2 triangles."""
        if nx < 1 or ny < 1:
            raise ValueError("grid dimensions must be >= 1")
        xs = np.linspace(0.0, 1.0, nx + 1)
        ys = np.linspace(0.0, 1.0, ny + 1)
        positions = np.array([(x, y) for y in ys for x in xs])

        def vid(ix: int, iy: int) -> int:
            return iy * (nx + 1) + ix

        triangles = []
        for iy in range(ny):
            for ix in range(nx):
                v00, v10 = vid(ix, iy), vid(ix + 1, iy)
                v01, v11 = vid(ix, iy + 1), vid(ix + 1, iy + 1)
                # Alternate the diagonal so the mesh is not degenerate-regular.
                if (ix + iy) % 2 == 0:
                    triangles.append((v00, v10, v11))
                    triangles.append((v00, v11, v01))
                else:
                    triangles.append((v00, v10, v01))
                    triangles.append((v10, v11, v01))
        return cls(positions, np.array(triangles))
