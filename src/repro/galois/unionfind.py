"""Union-find (disjoint sets) with union by rank and path compression.

Substrate for Kruskal's MST: edge contraction is implemented as component
union, exactly as the paper's §4.2 describes.  ``find_no_compress`` exists
for the rw-set pass, which must be side-effect free (cautious tasks read
before any write — compression is a write).
"""

from __future__ import annotations


class UnionFind:
    """Disjoint-set forest over the integers ``0..n-1``."""

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("n must be >= 0")
        self.parent = list(range(n))
        self.rank = [0] * n
        self.num_components = n

    def __len__(self) -> int:
        return len(self.parent)

    def find(self, x: int) -> int:
        """Representative of ``x``'s component, with path halving."""
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def find_no_compress(self, x: int) -> int:
        """Representative of ``x``'s component without mutating the forest."""
        parent = self.parent
        while parent[x] != x:
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the components of ``a`` and ``b``; False if already joined."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.num_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def snapshot(self) -> list[int]:
        """Canonical representative of every element (comparison oracle)."""
        return [self.find(x) for x in range(len(self.parent))]
