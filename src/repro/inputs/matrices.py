"""Sparse blocked matrices for LU factorization (§4.4, BOTS ``sparselu``).

BOTS factors an ``N × N`` matrix of ``B × B`` dense blocks where some
blocks are structurally null.  We generate the same shape: a banded block
pattern plus random off-band blocks, with strongly diagonally dominant
values so LU *without pivoting* is well posed.
"""

from __future__ import annotations

import numpy as np


class BlockMatrix:
    """Dense blocks in a sparse block pattern; ``None`` marks a null block."""

    def __init__(self, num_blocks: int, block_size: int):
        self.num_blocks = num_blocks
        self.block_size = block_size
        self.blocks: list[list[np.ndarray | None]] = [
            [None] * num_blocks for _ in range(num_blocks)
        ]

    def __getitem__(self, ij: tuple[int, int]) -> np.ndarray | None:
        return self.blocks[ij[0]][ij[1]]

    def __setitem__(self, ij: tuple[int, int], value: np.ndarray | None) -> None:
        self.blocks[ij[0]][ij[1]] = value

    def nonzero_blocks(self) -> list[tuple[int, int]]:
        return [
            (i, j)
            for i in range(self.num_blocks)
            for j in range(self.num_blocks)
            if self.blocks[i][j] is not None
        ]

    def nnz_blocks(self) -> int:
        return len(self.nonzero_blocks())

    def to_dense(self) -> np.ndarray:
        n = self.num_blocks * self.block_size
        out = np.zeros((n, n))
        b = self.block_size
        for i in range(self.num_blocks):
            for j in range(self.num_blocks):
                block = self.blocks[i][j]
                if block is not None:
                    out[i * b : (i + 1) * b, j * b : (j + 1) * b] = block
        return out

    def copy(self) -> "BlockMatrix":
        dup = BlockMatrix(self.num_blocks, self.block_size)
        for i in range(self.num_blocks):
            for j in range(self.num_blocks):
                block = self.blocks[i][j]
                if block is not None:
                    dup.blocks[i][j] = block.copy()
        return dup


def sparse_blocked_matrix(
    num_blocks: int,
    block_size: int,
    bandwidth: int = 2,
    extra_density: float = 0.08,
    seed: int = 0,
) -> BlockMatrix:
    """Generate a BOTS-style sparse blocked matrix.

    The pattern is a block band of half-width ``bandwidth`` plus random
    off-band blocks with probability ``extra_density``.  Values are scaled
    so every diagonal block is strongly dominant (no-pivot LU is stable).
    """
    if num_blocks < 1 or block_size < 1:
        raise ValueError("num_blocks and block_size must be >= 1")
    rng = np.random.RandomState(seed)
    mat = BlockMatrix(num_blocks, block_size)
    for i in range(num_blocks):
        for j in range(num_blocks):
            on_band = abs(i - j) <= bandwidth
            extra = rng.rand() < extra_density
            if not (on_band or extra):
                continue
            block = rng.uniform(-1.0, 1.0, size=(block_size, block_size))
            if i == j:
                # Diagonal dominance across the whole block row.
                block += np.eye(block_size) * (
                    block_size * (2 * bandwidth + 2 + extra_density * num_blocks)
                )
            mat[i, j] = block
    return mat


def symbolic_fill(mat: BlockMatrix) -> int:
    """Symbolic factorization: allocate zero blocks for LU fill-in.

    Mirrors the paper's pre-processing pass ("simply allocates blocks for
    the fill introduced by type III updates").  Returns the number of fill
    blocks allocated.
    """
    fill = 0
    n = mat.num_blocks
    b = mat.block_size
    for k in range(n):
        for i in range(k + 1, n):
            if mat[i, k] is None:
                continue
            for j in range(k + 1, n):
                if mat[k, j] is None:
                    continue
                if mat[i, j] is None:
                    mat[i, j] = np.zeros((b, b))
                    fill += 1
    return fill
