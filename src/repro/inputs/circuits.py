"""Gate-level circuit generators for discrete-event simulation (§4.5).

The paper's DES inputs are a 12-bit tree multiplier (small) and a 64-bit
Kogge–Stone adder (large).  Both are generated here as gate netlists:

* :func:`kogge_stone_adder` — the classic parallel-prefix adder.
* :func:`tree_multiplier` — partial products reduced by an adder tree
  (ripple-carry adders arranged in a binary tree), a standard tree
  multiplier structure.

A :class:`Circuit` is a DAG of :class:`Gate` objects; primary inputs are
INPUT gates driven by stimulus events.  Every gate has a positive integer
delay so event time-stamps are strictly increasing (DES is monotonic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Boolean gate evaluation functions, by type name.
GATE_FUNCS = {
    "INPUT": lambda ins: ins[0] if ins else 0,
    "BUF": lambda ins: ins[0],
    "NOT": lambda ins: 1 - ins[0],
    "AND": lambda ins: int(all(ins)),
    "OR": lambda ins: int(any(ins)),
    "XOR": lambda ins: sum(ins) % 2,
    "NAND": lambda ins: 1 - int(all(ins)),
    "NOR": lambda ins: 1 - int(any(ins)),
}


@dataclass
class Gate:
    """One gate: its function, fan-in wiring and fan-out destinations."""

    gid: int
    kind: str
    #: Driving gates, one per input port (empty for INPUT gates).
    fanin: list[int] = field(default_factory=list)
    #: ``(target gate, target port)`` pairs this gate drives.
    fanout: list[tuple[int, int]] = field(default_factory=list)
    delay: int = 1


class Circuit:
    """An acyclic gate network with named primary inputs and outputs."""

    def __init__(self) -> None:
        self.gates: list[Gate] = []
        self.inputs: dict[str, int] = {}
        self.outputs: dict[str, int] = {}

    def add_gate(self, kind: str, fanin: list[int] | None = None, delay: int = 1) -> int:
        if kind not in GATE_FUNCS:
            raise ValueError(f"unknown gate kind {kind!r}")
        gid = len(self.gates)
        gate = Gate(gid, kind, list(fanin or []), delay=delay)
        self.gates.append(gate)
        for port, src in enumerate(gate.fanin):
            self.gates[src].fanout.append((gid, port))
        return gid

    def add_input(self, name: str) -> int:
        gid = self.add_gate("INPUT")
        self.inputs[name] = gid
        return gid

    def mark_output(self, name: str, gid: int) -> None:
        self.outputs[name] = gid

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def evaluate(self, input_values: dict[str, int]) -> dict[str, int]:
        """Zero-delay functional evaluation (oracle for DES correctness)."""
        values = [0] * len(self.gates)
        order = self._topological_order()
        for gid in order:
            gate = self.gates[gid]
            if gate.kind == "INPUT":
                name = next(n for n, g in self.inputs.items() if g == gid)
                values[gid] = int(input_values.get(name, 0))
            else:
                values[gid] = GATE_FUNCS[gate.kind]([values[s] for s in gate.fanin])
        return {name: values[gid] for name, gid in self.outputs.items()}

    def _topological_order(self) -> list[int]:
        indeg = [len(g.fanin) for g in self.gates]
        stack = [g.gid for g in self.gates if indeg[g.gid] == 0]
        order: list[int] = []
        while stack:
            gid = stack.pop()
            order.append(gid)
            for tgt, _ in self.gates[gid].fanout:
                indeg[tgt] -= 1
                if indeg[tgt] == 0:
                    stack.append(tgt)
        if len(order) != len(self.gates):
            raise ValueError("circuit contains a cycle")
        return order


def _full_adder(c: Circuit, a: int, b: int, cin: int) -> tuple[int, int]:
    """Returns ``(sum, carry)`` gate ids."""
    axb = c.add_gate("XOR", [a, b])
    s = c.add_gate("XOR", [axb, cin])
    ab = c.add_gate("AND", [a, b])
    axb_cin = c.add_gate("AND", [axb, cin])
    cout = c.add_gate("OR", [ab, axb_cin])
    return s, cout


def kogge_stone_adder(bits: int) -> Circuit:
    """An n-bit Kogge–Stone parallel-prefix adder (the paper's DES-large)."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    c = Circuit()
    a = [c.add_input(f"a{i}") for i in range(bits)]
    b = [c.add_input(f"b{i}") for i in range(bits)]
    # Generate/propagate.
    g = [c.add_gate("AND", [a[i], b[i]]) for i in range(bits)]
    p = [c.add_gate("XOR", [a[i], b[i]]) for i in range(bits)]
    # Parallel-prefix combine: (g, p) ∘ (g', p') = (g + p·g', p·p').
    gk, pk = list(g), list(p)
    dist = 1
    while dist < bits:
        ng, np_ = list(gk), list(pk)
        for i in range(dist, bits):
            t = c.add_gate("AND", [pk[i], gk[i - dist]])
            ng[i] = c.add_gate("OR", [gk[i], t])
            np_[i] = c.add_gate("AND", [pk[i], pk[i - dist]])
        gk, pk = ng, np_
        dist *= 2
    # Sum bits: s_i = p_i xor carry_{i-1}; carry_{i-1} = gk[i-1].
    c.mark_output("s0", p[0])
    for i in range(1, bits):
        c.mark_output(f"s{i}", c.add_gate("XOR", [p[i], gk[i - 1]]))
    c.mark_output(f"s{bits}", gk[bits - 1])  # carry out
    return c


def tree_multiplier(bits: int) -> Circuit:
    """An n-bit multiplier: AND partial products + binary adder tree.

    Partial product rows are summed pairwise by ripple-carry adders arranged
    as a balanced binary tree (the paper's DES-small "tree multiplier").
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    c = Circuit()
    a = [c.add_input(f"a{i}") for i in range(bits)]
    b = [c.add_input(f"b{i}") for i in range(bits)]
    zero = c.add_gate("AND", [a[0], c.add_gate("NOT", [a[0]])])  # constant 0
    width = 2 * bits
    # Partial product rows, shifted: row j = (a AND b_j) << j.
    rows: list[list[int]] = []
    for j in range(bits):
        row = [zero] * width
        for i in range(bits):
            row[i + j] = c.add_gate("AND", [a[i], b[j]])
        rows.append(row)
    # Reduce rows pairwise with ripple-carry adders (a binary tree).
    while len(rows) > 1:
        next_rows: list[list[int]] = []
        for k in range(0, len(rows) - 1, 2):
            x, y = rows[k], rows[k + 1]
            out = [zero] * width
            carry = zero
            for i in range(width):
                out[i], carry = _full_adder(c, x[i], y[i], carry)
            next_rows.append(out)
        if len(rows) % 2:
            next_rows.append(rows[-1])
        rows = next_rows
    for i in range(width):
        c.mark_output(f"p{i}", rows[0][i])
    return c
