"""Workload generators mirroring the paper's evaluation inputs (Fig. 11a)."""

from .bodies import billiard_table, plummer_bodies
from .circuits import Circuit, Gate, kogge_stone_adder, tree_multiplier
from .graphs import grid2d, random_graph
from .matrices import BlockMatrix, sparse_blocked_matrix, symbolic_fill

__all__ = [
    "BlockMatrix",
    "Circuit",
    "Gate",
    "billiard_table",
    "grid2d",
    "kogge_stone_adder",
    "plummer_bodies",
    "random_graph",
    "sparse_blocked_matrix",
    "symbolic_fill",
    "tree_multiplier",
]
