"""Graph input generators mirroring the paper's BFS/MST input families.

The paper uses a USA road network and a 2-D grid (high diameter, low
degree) and uniform random graphs (low diameter).  We generate the same
families at reduced scale:

* :func:`grid2d` — the 2-D grid used for MST-small and a road-network
  stand-in for BFS-small (thousands of BFS levels).
* :func:`random_graph` — uniform random multigraph-free graph with a target
  average degree (few BFS levels, like the paper's Random graph).

Weights are small integers, as in the paper (MST levels ≈ distinct weights).
"""

from __future__ import annotations

import numpy as np

from ..galois.graphs import CSRGraph


def grid2d(
    nx: int, ny: int, max_weight: int = 100, seed: int = 0
) -> tuple[CSRGraph, list[tuple[int, int]], np.ndarray]:
    """A 2-D grid graph with integer edge weights.

    Returns ``(csr, edge_list, weights)`` where the CSR graph is symmetric
    and the edge list holds each undirected edge once.
    """
    rng = np.random.RandomState(seed)
    num_nodes = nx * ny

    def vid(ix: int, iy: int) -> int:
        return iy * nx + ix

    edges: list[tuple[int, int]] = []
    for iy in range(ny):
        for ix in range(nx):
            if ix + 1 < nx:
                edges.append((vid(ix, iy), vid(ix + 1, iy)))
            if iy + 1 < ny:
                edges.append((vid(ix, iy), vid(ix, iy + 1)))
    weights = rng.randint(1, max_weight + 1, size=len(edges)).astype(np.float64)
    csr = CSRGraph.from_undirected_edges(num_nodes, edges, weights)
    return csr, edges, weights


def random_graph(
    num_nodes: int, avg_degree: float = 4.0, max_weight: int = 100, seed: int = 0
) -> tuple[CSRGraph, list[tuple[int, int]], np.ndarray]:
    """A uniform random graph with ~``avg_degree × n / 2`` distinct edges.

    Duplicate and self edges are filtered, so the realized degree is very
    slightly below the target.  A spanning backbone (random permutation
    chain) guarantees connectivity, as BFS/MST comparisons assume.
    """
    rng = np.random.RandomState(seed)
    num_edges = int(num_nodes * avg_degree / 2)
    perm = rng.permutation(num_nodes)
    seen: set[tuple[int, int]] = set()
    edges: list[tuple[int, int]] = []
    for i in range(num_nodes - 1):  # connectivity backbone
        a, b = int(perm[i]), int(perm[i + 1])
        edge = (min(a, b), max(a, b))
        seen.add(edge)
        edges.append(edge)
    while len(edges) < num_edges:
        remaining = num_edges - len(edges)
        pairs = rng.randint(0, num_nodes, size=(remaining + 16, 2))
        for a, b in pairs:
            if a == b:
                continue
            edge = (int(min(a, b)), int(max(a, b)))
            if edge in seen:
                continue
            seen.add(edge)
            edges.append(edge)
            if len(edges) == num_edges:
                break
    weights = rng.randint(1, max_weight + 1, size=len(edges)).astype(np.float64)
    csr = CSRGraph.from_undirected_edges(num_nodes, edges, weights)
    return csr, edges, weights
