"""Body distributions: Plummer spheres (tree traversal) and billiard tables.

The paper's tree-traversal input is bodies under a Plummer distribution
[Plummer 1911], the standard Barnes–Hut benchmark input; Billiards inputs
are ``n`` balls on an ``n × n`` table with random velocities.
"""

from __future__ import annotations

import numpy as np


def plummer_bodies(n: int, seed: int = 0, dims: int = 2) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``n`` body positions and masses from a Plummer model.

    Radius is drawn by inverting the Plummer cumulative mass profile
    ``r = (u^{-2/3} - 1)^{-1/2}``, direction uniformly on the sphere/circle.
    Returns ``(positions[n, dims], masses[n])`` with unit total mass.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.RandomState(seed)
    u = rng.uniform(1e-6, 1.0 - 1e-6, size=n)
    radius = (u ** (-2.0 / 3.0) - 1.0) ** (-0.5)
    radius = np.minimum(radius, 10.0)  # clip the far tail, as BH codes do
    if dims == 2:
        theta = rng.uniform(0, 2 * np.pi, size=n)
        positions = np.stack([radius * np.cos(theta), radius * np.sin(theta)], axis=1)
    elif dims == 3:
        z = rng.uniform(-1, 1, size=n)
        theta = rng.uniform(0, 2 * np.pi, size=n)
        s = np.sqrt(1 - z * z)
        positions = np.stack(
            [radius * s * np.cos(theta), radius * s * np.sin(theta), radius * z], axis=1
        )
    else:
        raise ValueError("dims must be 2 or 3")
    masses = np.full(n, 1.0 / n)
    return positions, masses


def billiard_table(
    n_balls: int,
    table_size: float,
    radius: float = 0.5,
    max_speed: float = 1.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Place ``n_balls`` non-overlapping balls with random velocities.

    Balls are laid out on a jittered grid (guaranteeing no initial overlap)
    with velocities uniform in ``[-max_speed, max_speed]²``.  Returns
    ``(positions[n, 2], velocities[n, 2])``.
    """
    if n_balls < 1:
        raise ValueError("n_balls must be >= 1")
    rng = np.random.RandomState(seed)
    side = int(np.ceil(np.sqrt(n_balls)))
    pitch = (table_size - 2 * radius) / side
    if pitch <= 2 * radius:
        raise ValueError("table too small for this many balls")
    jitter = (pitch - 2 * radius) / 2 * 0.8
    positions = np.empty((n_balls, 2))
    k = 0
    for iy in range(side):
        for ix in range(side):
            if k == n_balls:
                break
            cx = radius + (ix + 0.5) * pitch
            cy = radius + (iy + 0.5) * pitch
            positions[k, 0] = cx + rng.uniform(-jitter, jitter)
            positions[k, 1] = cy + rng.uniform(-jitter, jitter)
            k += 1
    velocities = rng.uniform(-max_speed, max_speed, size=(n_balls, 2))
    return positions, velocities
