"""Command-line interface: run any paper application/executor combination.

Examples::

    python -m repro run avi --impl kdg-auto --threads 16
    python -m repro run mst --impl speculation --threads 8 --size large
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys

from . import SimMachine
from .apps import APPS
from .machine import Category

EXTRA_IMPLS = ("serial", "serial-best", "kdg-rna", "ikdg", "level-by-level", "speculation")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Kinetic Dependence Graphs (ASPLOS 2015) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one application/implementation")
    run.add_argument("app", choices=sorted(APPS))
    run.add_argument("--impl", default="kdg-auto",
                     help="serial, serial-best, kdg-auto, kdg-manual, other, "
                          "kdg-rna, ikdg, level-by-level, speculation")
    run.add_argument("--threads", type=int, default=8)
    run.add_argument("--size", choices=("small", "large"), default="small")
    run.add_argument("--validate", action="store_true",
                     help="also compare against the serial execution")

    sub.add_parser("list", help="list applications and their implementations")
    return parser


def cmd_list() -> int:
    print(f"{'app':<10} {'auto executor':<10} {'manual':>7} {'other':>6}")
    for name, spec in APPS.items():
        print(
            f"{name:<10} {spec.auto_executor():<10} "
            f"{'yes' if spec.has_impl('kdg-manual') else '-':>7} "
            f"{'yes' if spec.has_impl('other') else '-':>6}"
        )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    spec = APPS[args.app]
    if not spec.has_impl(args.impl) and args.impl not in EXTRA_IMPLS:
        print(f"error: {args.app} has no implementation {args.impl!r}",
              file=sys.stderr)
        return 2
    state = spec.make_small() if args.size == "small" else spec.make_large()
    threads = 1 if args.impl in ("serial", "serial-best") else args.threads
    result = spec.run(state, args.impl, SimMachine(threads))
    spec.validate(state)

    print(f"app        : {args.app} ({args.size})")
    print(f"executor   : {result.executor} @ {threads} threads")
    print(f"tasks      : {result.executed}")
    if result.rounds:
        print(f"rounds     : {result.rounds}")
    print(f"sim time   : {result.elapsed_seconds * 1e3:.3f} ms "
          f"({result.elapsed_cycles:.0f} cycles)")
    breakdown = result.breakdown()
    total = sum(breakdown.values()) or 1.0
    print("breakdown  :")
    for category, cycles in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        if cycles:
            print(f"  {category.value:<12} {cycles:>14.0f}  ({cycles / total:6.1%} of thread time)")
    for key, value in result.metrics.items():
        print(f"metric     : {key} = {value}")

    if args.validate:
        oracle_state = spec.make_small() if args.size == "small" else spec.make_large()
        spec.run(oracle_state, "serial", SimMachine(1))
        matches = spec.snapshot(oracle_state) == spec.snapshot(state)
        print(f"serializable: {'OK — matches serial bit-for-bit' if matches else 'MISMATCH'}")
        if not matches:
            return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    return cmd_run(args)


if __name__ == "__main__":
    raise SystemExit(main())
