"""Command-line interface: run any paper application/executor combination.

Examples::

    python -m repro run avi --impl kdg-auto --threads 16
    python -m repro run mst --impl speculation --threads 8 --size large
    python -m repro oracle billiards --seeds 0 1 2 --threads 4
    python -m repro oracle --all --json
    python -m repro lint --json
    python -m repro lint lu --dynamic
    python -m repro bench --quick
    python -m repro run lu --impl ikdg --engine flat
    python -m repro bench --quick --engine flat --no-compare
    python -m repro bench --quick --compare --fail-threshold 1.25
    python -m repro list
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import SimMachine
from .apps import APPS
from .machine import Category

EXTRA_IMPLS = ("serial", "serial-best", "kdg-rna", "ikdg", "level-by-level",
               "speculation", "relaxed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Kinetic Dependence Graphs (ASPLOS 2015) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one application/implementation")
    run.add_argument("app", choices=sorted(APPS))
    run.add_argument("--impl", default="kdg-auto",
                     help="serial, serial-best, kdg-auto, kdg-manual, other, "
                          "kdg-rna, ikdg, level-by-level, speculation, relaxed")
    run.add_argument("--threads", type=int, default=8)
    run.add_argument("--size", choices=("small", "large"), default="small")
    run.add_argument("--validate", action="store_true",
                     help="also compare against the serial execution")
    run.add_argument("--sanitize", action="store_true",
                     help="enable the runtime access sanitizer (diffs each "
                          "body's accesses against its declared rw-set; "
                          "observation only)")
    run.add_argument("--engine", choices=("dict", "flat"), default=None,
                     help="rw-set index engine for the ordered-model "
                          "executors (flat = interned ids + vectorized "
                          "rounds; schedules are identical; default dict, "
                          "or flat when --backend mp)")
    run.add_argument("--backend", choices=("inline", "mp"), default="inline",
                     help="mark-phase execution backend: inline (default) "
                          "or mp = real worker processes over shared-memory "
                          "arrays (requires the flat engine; results are "
                          "bit-identical)")
    run.add_argument("--workers", type=int, default=None,
                     help="worker processes for --backend mp (default: 2; "
                          "only valid with --backend mp)")
    run.add_argument("--relaxation", type=int, default=1,
                     help="MultiQueue relaxation factor for --impl relaxed "
                          "(number of internal queues; 1 = exact order, "
                          "bit-identical to ikdg; default: 1)")
    run.add_argument("--delta", type=int, default=None,
                     help="bucket width for the delta-stepping worklist of "
                          "--impl relaxed (mutually exclusive with "
                          "--relaxation > 1)")
    run.add_argument("--properties", choices=("declared", "inferred"),
                     default="declared",
                     help="property trust model for executor selection: "
                          "'inferred' audits the declarations with the "
                          "static inference pass and refuses to run if any "
                          "is refuted (schedules are bit-identical when "
                          "declarations are sound)")

    oracle = sub.add_parser(
        "oracle",
        help="differential serializability oracle: every executor vs. serial",
    )
    oracle.add_argument("apps", nargs="*", metavar="app",
                        help=f"apps to check ({', '.join(sorted(APPS))}; "
                             f"default: all)")
    oracle.add_argument("--all", action="store_true", dest="all_apps",
                        help="check every registered app")
    oracle.add_argument("--seeds", type=int, nargs="+", default=[0, 1],
                        help="input seeds (default: 0 1)")
    oracle.add_argument("--threads", type=int, default=3)
    oracle.add_argument("--executors", nargs="+", default=None,
                        help="subset of oracle executors (default: all, "
                             "including the relaxed-mq/relaxed-delta "
                             "rank-error variants)")
    oracle.add_argument("--json", action="store_true", dest="as_json",
                        help="emit one JSON report per (app, seed) to stdout")
    oracle.add_argument("--export-dir", type=Path, default=None,
                        help="write each executor's trace as JSON under DIR")
    oracle.add_argument("--engine", choices=("dict", "flat"), default=None,
                        help="rw-set index engine for the parallel executors "
                             "(flat must produce bit-identical traces; "
                             "default dict, or flat when --backend mp)")
    oracle.add_argument("--backend", choices=("inline", "mp"), default="inline",
                        help="mark-phase backend for the parallel executors; "
                             "mp shares one worker pool across the whole "
                             "sweep and must stay bit-identical")
    oracle.add_argument("--workers", type=int, default=None,
                        help="worker processes for --backend mp (default: 2; "
                             "only valid with --backend mp)")
    oracle.add_argument("--properties", action="store_true", dest="properties",
                        help="also run the dynamic property falsifier "
                             "(core/verify.py) per app and fail on any "
                             "contradicted declaration")

    lint = sub.add_parser(
        "lint",
        help="static property linter (and optional dynamic falsifier)",
    )
    lint.add_argument("apps", nargs="*", metavar="app",
                      help=f"apps to lint ({', '.join(sorted(APPS))}; "
                           f"default: all)")
    lint.add_argument("--path", type=Path, action="append", default=None,
                      dest="paths", metavar="FILE",
                      help="lint a standalone Python file (repeatable)")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="emit one machine-readable JSON report to stdout")
    lint.add_argument("--rules", action="store_true", dest="list_rules",
                      help="list rule ids and exit")
    lint.add_argument("--dynamic", action="store_true",
                      help="also run the dynamic property falsifier on each "
                           "app's smallest input")
    lint.add_argument("--max-tasks", type=int, default=500,
                      help="task budget for --dynamic (default: 500)")

    infer = sub.add_parser(
        "infer",
        help="interprocedural property inference (prove/refute §3.2 "
             "declarations, suggest missed optimizations)",
    )
    infer.add_argument("apps", nargs="*", metavar="app",
                       help=f"apps to analyze ({', '.join(sorted(APPS))}; "
                            f"default: all)")
    infer.add_argument("--path", type=Path, action="append", default=None,
                       dest="paths", metavar="FILE",
                       help="analyze a standalone Python file (repeatable)")
    infer.add_argument("--json", action="store_true", dest="as_json",
                       help="emit one machine-readable repro-lint/v2 report")
    infer.add_argument("--fail-on", choices=("unsound", "any"),
                       default="unsound",
                       help="exit non-zero on unsound declarations only "
                            "(default) or on any finding including "
                            "missed-optimization suggestions")
    infer.add_argument("--dynamic", action="store_true",
                       help="cross-validate statically-unknown verdicts with "
                            "the dynamic property falsifier on each app's "
                            "smallest input")
    infer.add_argument("--max-tasks", type=int, default=500,
                       help="task budget for --dynamic (default: 500)")

    bench = sub.add_parser(
        "bench",
        help="wall-clock benchmark suite (hot paths + end-to-end apps)",
    )
    bench.add_argument("--quick", action="store_true",
                       help="scaled-down workloads (CI smoke)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="timing repeats per benchmark "
                            "(default: 3 quick, 5 full)")
    bench.add_argument("--filter", dest="name_filter", default=None,
                       help="only run benchmarks whose name contains this")
    bench.add_argument("--output", type=Path, default=Path("BENCH_results.json"),
                       help="results file (default: ./BENCH_results.json)")
    bench.add_argument("--baseline", type=Path, default=None,
                       help="baseline file (default: benchmarks/perf/BASELINE.json)")
    bench.add_argument("--update-baseline", action="store_true",
                       help="write this run into the baseline file instead "
                            "of comparing against it")
    bench.add_argument("--threshold", type=float, default=None,
                       help="fail when wall time exceeds THRESHOLD x baseline "
                            "(default: 1.5)")
    bench.add_argument("--min-speedup", type=float, default=None,
                       help="fail when the aggregate hot-path speedup vs. the "
                            "baseline is below this factor")
    bench.add_argument("--no-compare", action="store_true",
                       help="skip the baseline comparison")
    bench.add_argument("--compare", action="store_true", dest="require_compare",
                       help="require the baseline comparison: a missing "
                            "baseline section is an error instead of a skip "
                            "(for CI perf gates)")
    bench.add_argument("--fail-threshold", type=float, default=None,
                       dest="fail_threshold",
                       help="alias of --threshold for CI perf gates: fail "
                            "when wall time exceeds this multiple of the "
                            "baseline (e.g. 1.25 = fail on >25%% regression)")
    bench.add_argument("--engine", choices=("dict", "flat"), default=None,
                       help="rw-set index engine benchmarks run under; the "
                            "results document records it and comparisons "
                            "refuse baselines recorded with the other engine "
                            "(default dict, or flat when --backend mp)")
    bench.add_argument("--backend", choices=("inline", "mp"), default="inline",
                       help="mark-phase backend benchmarks run under; the "
                            "results document records it and comparisons "
                            "refuse baselines recorded with the other backend")
    bench.add_argument("--workers", type=int, default=None,
                       help="worker processes for --backend mp (default: 2; "
                            "only valid with --backend mp)")
    bench.add_argument("--list", action="store_true", dest="list_benches",
                       help="list benchmark names and exit")

    stream = sub.add_parser(
        "stream",
        help="replay a mutation trace through a KineticSession "
             "(incremental repair vs. cold rebuild)",
    )
    stream.add_argument("trace", nargs="?", type=Path,
                        help="trace file (schema repro.stream.trace/v1); "
                             "omit and pass --app to generate one")
    stream.add_argument("--app", default=None,
                        help="generate a trace for this app instead of "
                             "reading one (kcore, bfs, des)")
    stream.add_argument("--seed", type=int, default=0,
                        help="input/trace seed for --app (default: 0)")
    stream.add_argument("--schedule", default="mixed",
                        help="batch-size schedule for --app "
                             "(singles, bursts, mixed; default: mixed)")
    stream.add_argument("--engine", choices=("dict", "flat"), default="dict",
                        help="rw-set index engine the session runs under")
    stream.add_argument("--threads", type=int, default=3)
    stream.add_argument("--no-check", action="store_true",
                        help="skip the per-batch bit-identity comparison "
                             "against a cold rebuild (timing only)")
    stream.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the full report as JSON to stdout")
    stream.add_argument("--save", type=Path, default=None,
                        help="write the (generated or loaded) trace to FILE")

    sub.add_parser("list", help="list applications and their implementations")
    return parser


def _resolve_workers(args: argparse.Namespace) -> int | None:
    """Worker count for ``--backend mp`` (default 2); None = usage error.

    ``--workers`` used to be silently ignored without ``--backend mp``
    (the flag parsed on every subcommand but only the mp branch read it);
    now it is rejected so a typo'd invocation can't masquerade as a
    parallel run.
    """
    if args.workers is not None and args.backend != "mp":
        print("error: --workers requires --backend mp", file=sys.stderr)
        return None
    return 2 if args.workers is None else args.workers


def cmd_list() -> int:
    print(f"{'app':<10} {'auto executor':<10} {'manual':>7} {'other':>6}")
    for name, spec in APPS.items():
        print(
            f"{name:<10} {spec.auto_executor():<10} "
            f"{'yes' if spec.has_impl('kdg-manual') else '-':>7} "
            f"{'yes' if spec.has_impl('other') else '-':>6}"
        )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    spec = APPS[args.app]
    if not spec.has_impl(args.impl) and args.impl not in EXTRA_IMPLS:
        print(f"error: {args.app} has no implementation {args.impl!r}",
              file=sys.stderr)
        return 2
    workers = _resolve_workers(args)
    if workers is None:
        return 2
    options: dict = {}
    # Only the ordered-model executors accept these options; hand-specialized
    # codes (kdg-manual, other, app extras) bypass execute_body entirely.
    ordered_impl = args.impl in ("serial", "kdg-auto", "kdg-rna", "ikdg",
                                 "level-by-level", "speculation", "relaxed") or (
        args.impl == "serial-best" and spec.run_serial_best is None
    )
    if args.relaxation != 1 or args.delta is not None:
        if args.impl != "relaxed":
            print("error: --relaxation/--delta are relaxed-executor knobs; "
                  f"--impl {args.impl} runs in exact priority order "
                  "(use --impl relaxed)", file=sys.stderr)
            return 2
    if args.impl == "relaxed":
        if args.relaxation != 1:
            options["relaxation"] = args.relaxation
        if args.delta is not None:
            options["delta"] = args.delta
    if args.sanitize:
        if not ordered_impl:
            print(f"error: --sanitize is not supported for --impl {args.impl}",
                  file=sys.stderr)
            return 2
        options["sanitize"] = True
    engine = args.engine
    if engine is None:
        engine = "flat" if args.backend == "mp" else "dict"
    if engine != "dict":
        if not ordered_impl:
            print(f"error: --engine {engine} is not supported for "
                  f"--impl {args.impl}", file=sys.stderr)
            return 2
        options["engine"] = engine
    if args.backend == "mp":
        if args.impl not in ("kdg-auto", "kdg-rna", "ikdg", "level-by-level"):
            print(f"error: --backend mp is not supported for --impl "
                  f"{args.impl}", file=sys.stderr)
            return 2
        if engine != "flat":
            print("error: --backend mp requires --engine flat",
                  file=sys.stderr)
            return 2
        options["backend"] = "mp"
        options["workers"] = workers
    if args.properties != "declared":
        if not ordered_impl:
            print(f"error: --properties {args.properties} is not supported "
                  f"for --impl {args.impl}", file=sys.stderr)
            return 2
        options["properties"] = args.properties
    state = spec.make_small() if args.size == "small" else spec.make_large()
    threads = 1 if args.impl in ("serial", "serial-best") else args.threads
    if ordered_impl:
        from .runtime.base import RunConfig

        try:
            result = spec.run(state, args.impl, SimMachine(threads),
                              config=RunConfig(**options))
        except ValueError as exc:
            # Config/algorithm rejections (e.g. relaxation knobs on a
            # non-relaxable algorithm) are usage errors, not crashes.
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        result = spec.run(state, args.impl, SimMachine(threads), **options)
    spec.validate(state)

    print(f"app        : {args.app} ({args.size})")
    print(f"executor   : {result.executor} @ {threads} threads")
    if result.config is not None:
        # Resolved straight from the run, not echoed CLI flags.
        desc = result.config.describe()
        line = f"config     : engine={desc['engine']} backend={desc['backend']}"
        if desc["workers"]:
            line += f" workers={desc['workers']}"
        if desc["sanitize"]:
            line += " sanitize"
        print(line)
    print(f"tasks      : {result.executed}")
    if result.rounds:
        print(f"rounds     : {result.rounds}")
    print(f"sim time   : {result.elapsed_seconds * 1e3:.3f} ms "
          f"({result.elapsed_cycles:.0f} cycles)")
    breakdown = result.breakdown()
    total = sum(breakdown.values()) or 1.0
    print("breakdown  :")
    for category, cycles in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        if cycles:
            print(f"  {category.value:<12} {cycles:>14.0f}  ({cycles / total:6.1%} of thread time)")
    mp_summary = result.metrics.get("mp")
    for key, value in result.metrics.items():
        if key == "mp":
            continue
        print(f"metric     : {key} = {value}")
    if mp_summary is not None:
        utils = ", ".join(
            f"{w['utilization']:.0%}" for w in mp_summary["per_worker"]
        )
        print(f"mp backend : {mp_summary['workers']} worker(s), "
              f"{mp_summary['mp_rounds']} mp round(s) "
              f"(+{mp_summary['fallback_rounds']} inline), "
              f"utilization [{utils}]")
    if args.sanitize:
        # The sanitizer raises RWSetViolation on the first undeclared
        # access, so reaching this line means the run was clean.
        print("sanitizer  : ok — every access matched the declared rw-set")

    if args.validate:
        oracle_state = spec.make_small() if args.size == "small" else spec.make_large()
        spec.run(oracle_state, "serial", SimMachine(1))
        matches = spec.snapshot(oracle_state) == spec.snapshot(state)
        print(f"serializable: {'OK — matches serial bit-for-bit' if matches else 'MISMATCH'}")
        if not matches:
            return 1
    return 0


def _dynamic_report(app: str, max_tasks: int = 500) -> dict:
    """Run the dynamic property falsifier on an app's smallest input."""
    from .core.verify import verify_properties

    spec = APPS[app]
    algorithm = spec.algorithm(spec.make_tiny())
    return verify_properties(algorithm, max_tasks=max_tasks).to_json()


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import RULES, lint_app, lint_file

    if args.list_rules:
        width = max(len(rule) for rule in RULES)
        for rule, description in RULES.items():
            print(f"{rule:<{width}}  {description}")
        return 0

    apps = args.apps or sorted(APPS)
    unknown = [a for a in apps if a not in APPS]
    if unknown:
        print(f"error: unknown app(s) {', '.join(unknown)}", file=sys.stderr)
        return 2
    paths = args.paths or []
    missing = [p for p in paths if not p.is_file()]
    if missing:
        print(f"error: no such file(s) {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2
    if args.apps or not paths:
        targets = [(app, lambda a=app: lint_app(a)) for app in apps]
    else:
        targets = []  # --path only: don't drag every app in implicitly
    targets += [(str(p), lambda p=p: lint_file(p)) for p in paths]

    total = 0
    report: dict = {"schema": "repro-lint/v1", "targets": {}}
    for name, lint in targets:
        findings = lint()
        total += len(findings)
        entry: dict = {"findings": [f.to_dict() for f in findings]}
        if args.dynamic and name in APPS:
            dynamic = _dynamic_report(name, max_tasks=args.max_tasks)
            entry["dynamic"] = dynamic
            total += len(dynamic["findings"])
        report["targets"][name] = entry
        if not args.as_json:
            for finding in findings:
                print(finding)
            for df in entry.get("dynamic", {}).get("findings", []):
                print(f"{name}: {df['rule']}: {df['message']}")
    report["ok"] = total == 0
    if args.as_json:
        print(json.dumps(report))
    elif total == 0:
        checked = ", ".join(name for name, _ in targets)
        print(f"lint: no findings ({checked})")
    else:
        print(f"lint: {total} finding(s)", file=sys.stderr)
    return 0 if total == 0 else 1


def _infer_dynamic(app: str, results, max_tasks: int) -> dict:
    """Cross-validate statically-``unknown`` verdicts on an app dynamically.

    Probes every unknown flag (in addition to the declared ones) through
    :func:`repro.core.verify.verify_properties` and reports, per flag,
    whether the sampled execution refuted it.
    """
    import dataclasses

    from .core.properties import AlgorithmProperties
    from .core.verify import verify_properties

    spec = APPS[app]
    algorithm = spec.algorithm(spec.make_tiny())
    declared = dataclasses.asdict(algorithm.properties)
    unknown = sorted(
        {
            flag
            for r in results
            for flag, v in r.verdicts.items()
            if v.status == "unknown"
        }
    )
    probe = dict(declared)
    for flag in unknown:
        probe[flag] = True
    report = verify_properties(
        algorithm, max_tasks=max_tasks, properties=AlgorithmProperties(**probe)
    )
    violations = {
        flag: msgs[:3] for flag, msgs in report.violations().items()
    }
    return {
        "probed_unknown": unknown,
        "consistent": report.consistent,
        "violations": violations,
        "refuted_unknown": sorted(set(unknown) & set(violations)),
        "refuted_declared": sorted(
            flag for flag in violations if declared.get(flag)
        ),
    }


def cmd_infer(args: argparse.Namespace) -> int:
    from .analysis.infer import infer_app, infer_path, report_to_json

    apps = args.apps or sorted(APPS)
    unknown_apps = [a for a in apps if a not in APPS]
    if unknown_apps:
        print(f"error: unknown app(s) {', '.join(unknown_apps)}", file=sys.stderr)
        return 2
    paths = args.paths or []
    missing = [p for p in paths if not p.is_file()]
    if missing:
        print(f"error: no such file(s) {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2
    if args.apps or not paths:
        targets = [(app, lambda a=app: infer_app(a)) for app in apps]
    else:
        targets = []  # --path only: don't drag every app in implicitly
    targets += [(str(p), lambda p=p: infer_path(p)) for p in paths]

    all_results = {}
    errors = suggestions = 0
    dynamic: dict[str, dict] = {}
    for name, run in targets:
        results = run()
        all_results[name] = results
        for r in results:
            errors += sum(1 for f in r.findings if f.severity == "error")
            suggestions += sum(1 for f in r.findings if f.severity == "suggestion")
        if args.dynamic and name in APPS:
            dynamic[name] = _infer_dynamic(name, results, args.max_tasks)
            # A declared flag refuted on a sampled run is as unsound as a
            # statically refuted one.
            errors += len(dynamic[name]["refuted_declared"])

    if args.as_json:
        report = report_to_json(all_results)
        for name, entry in dynamic.items():
            report["targets"][name]["dynamic"] = entry
        report["errors"] = errors
        report["suggestions"] = suggestions
        report["ok"] = not (errors or (args.fail_on == "any" and suggestions))
        print(json.dumps(report))
    else:
        for name, results in all_results.items():
            dyn = dynamic.get(name, {})
            for r in results:
                print(f"=== {r.unit.name} ({r.unit.file}:{r.unit.call_line})")
                for flag, v in r.verdicts.items():
                    declared = bool(r.unit.effective.get(flag))
                    anchor = f" @{v.line}" if v.line else ""
                    note = ""
                    if flag in dyn.get("refuted_unknown", []) or (
                        flag in dyn.get("refuted_declared", [])
                    ):
                        note = "  [dynamic: refuted]"
                    elif flag in dyn.get("probed_unknown", []):
                        note = "  [dynamic: consistent]"
                    print(f"  {flag:<26} declared={str(declared):<5} "
                          f"{v.status}{anchor}{note}")
                for f in r.findings:
                    print(f"  {f}")
        print(f"infer: {errors} error(s), {suggestions} suggestion(s) "
              f"across {len(targets)} target(s)")
    failing = errors or (args.fail_on == "any" and suggestions)
    return 1 if failing else 0


def cmd_oracle(args: argparse.Namespace) -> int:
    from .oracle import ORACLE_EXECUTORS, diff_executors

    workers = _resolve_workers(args)
    if workers is None:
        return 2
    apps = args.apps or sorted(APPS)
    if args.all_apps:
        apps = sorted(APPS)
    unknown = [a for a in apps if a not in APPS]
    if unknown:
        print(f"error: unknown app(s) {', '.join(unknown)}", file=sys.stderr)
        return 2
    executors = None if args.executors is None else tuple(args.executors)
    if executors is not None:
        bad = [e for e in executors if e not in ORACLE_EXECUTORS]
        if bad:
            print(f"error: unknown executor(s) {', '.join(bad)} "
                  f"(choose from {', '.join(ORACLE_EXECUTORS)})",
                  file=sys.stderr)
            return 2
    export_dir: Path | None = args.export_dir
    if export_dir is not None:
        export_dir.mkdir(parents=True, exist_ok=True)
    engine = args.engine
    if engine is None:
        engine = "flat" if args.backend == "mp" else "dict"
    backend = None
    if args.backend == "mp":
        if engine != "flat":
            print("error: --backend mp requires --engine flat", file=sys.stderr)
            return 2
        from .runtime.mp_backend import MPMarkBackend

        # One pool for the whole sweep (worker startup amortized);
        # threshold=0 dispatches every pooled round to the workers so even
        # tiny oracle inputs exercise the mp protocol.
        backend = MPMarkBackend(workers=workers, threshold=0)

    failures = 0
    try:
        for app in apps:
            if args.properties:
                # Shared findings schema with `repro lint --dynamic`.
                dynamic = _dynamic_report(app)
                if args.as_json:
                    print(json.dumps({"app": app, **dynamic}))
                else:
                    mark = "ok  " if dynamic["consistent"] else "FAIL"
                    print(f"{mark} {app:<10} properties "
                          f"({len(dynamic['findings'])} finding(s))")
                    for finding in dynamic["findings"]:
                        print(f"     [{finding['rule']}] {finding['message']}")
                if not dynamic["consistent"]:
                    failures += 1
            for seed in args.seeds:
                report = diff_executors(
                    app, seed=seed, threads=args.threads, executors=executors,
                    keep_traces=export_dir is not None, engine=engine,
                    backend=backend, workers=workers,
                )
                if export_dir is not None:
                    for verdict in report.verdicts:
                        if verdict.trace is None:
                            continue
                        path = export_dir / f"{app}-s{seed}-{verdict.executor}.json"
                        path.write_text(verdict.trace.to_json())
                if args.as_json:
                    print(json.dumps(report.to_dict(), default=repr))
                else:
                    for verdict in report.verdicts:
                        mark = {"ok": "ok  ", "skip": "skip", "fail": "FAIL"}[verdict.status]
                        line = (f"{mark} {app:<10} seed={seed} "
                                f"{verdict.executor:<15} tasks={verdict.executed}")
                        if verdict.status == "skip":
                            line += f"  ({verdict.reason})"
                        if verdict.rank_error is not None:
                            re_ = verdict.rank_error
                            line += (f"  rank<= {re_['max_rank_error']} "
                                     f"mean {re_['mean_rank_error']}")
                            if "excess_commits" in re_:
                                line += f" waste +{re_['excess_commits']}"
                        first = verdict.first_violation()
                        if first is not None:
                            line += f"\n     [{first.kind}] {first.message}"
                        print(line)
                if not report.ok:
                    failures += 1
    finally:
        if backend is not None:
            backend.close()
    if failures:
        print(f"oracle: {failures} (app, seed) combination(s) diverged",
              file=sys.stderr)
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        BENCHES,
        DEFAULT_BASELINE,
        DEFAULT_THRESHOLD,
        compare,
        load_baseline_section,
        run_suite,
        update_baseline_file,
        write_results,
    )

    if args.list_benches:
        for name, b in sorted(BENCHES.items()):
            print(f"{name:<30} [{b.group}]")
        return 0

    if args.no_compare and args.require_compare:
        print("error: --compare and --no-compare are mutually exclusive",
              file=sys.stderr)
        return 2
    workers = _resolve_workers(args)
    if workers is None:
        return 2
    engine = args.engine
    if engine is None:
        engine = "flat" if args.backend == "mp" else "dict"
    mode = "quick" if args.quick else "full"
    print(f"running wall-clock suite ({mode}, engine={engine}, "
          f"backend={args.backend}) ...")
    try:
        results = run_suite(
            quick=args.quick, repeats=args.repeats,
            name_filter=args.name_filter, engine=engine,
            backend=args.backend, workers=workers,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = args.baseline if args.baseline is not None else DEFAULT_BASELINE
    if args.update_baseline:
        update_baseline_file(baseline_path, results)
        write_results(args.output, results)
        print(f"baseline updated: {baseline_path}")
        print(f"results written : {args.output}")
        return 0

    exit_code = 0
    if not args.no_compare:
        section = load_baseline_section(baseline_path, args.quick)
        if section is None:
            if args.require_compare:
                print(f"error: --compare requires a {mode} baseline at "
                      f"{baseline_path}", file=sys.stderr)
                return 2
            print(f"no {mode} baseline at {baseline_path}; comparison skipped "
                  f"(run `repro bench {'--quick ' if args.quick else ''}"
                  f"--update-baseline` to create one)")
        else:
            threshold = args.fail_threshold
            if threshold is None:
                threshold = args.threshold
            if threshold is None:
                threshold = DEFAULT_THRESHOLD
            try:
                cmp = compare(results, section, threshold=threshold)
            except ValueError as exc:  # engine mismatch — never compare
                print(f"error: {exc}", file=sys.stderr)
                return 2
            results["comparison"] = cmp
            for label, key in (("hot-path", "aggregate_speedup_hotpath"),
                               ("end-to-end", "aggregate_speedup_e2e"),
                               ("overall", "aggregate_speedup_all")):
                value = cmp[key]
                if value is not None:
                    print(f"aggregate {label:<10} speedup vs baseline: {value:.2f}x")
            if cmp["schedule_changes"]:
                print("SCHEDULE CHANGED (simulated cycles differ from baseline):",
                      file=sys.stderr)
                for name in cmp["schedule_changes"]:
                    print(f"  {name}", file=sys.stderr)
                exit_code = 1
            if cmp["regressions"]:
                print(f"REGRESSIONS (wall > {threshold:.2f}x baseline):",
                      file=sys.stderr)
                for name in cmp["regressions"]:
                    entry = cmp["per_benchmark"][name]
                    print(f"  {name}: {entry['speedup']:.2f}x "
                          f"(baseline {entry['baseline_wall'] * 1e3:.2f} ms)",
                          file=sys.stderr)
                exit_code = 1
            hotpath = cmp["aggregate_speedup_hotpath"]
            if (args.min_speedup is not None and hotpath is not None
                    and hotpath < args.min_speedup):
                print(f"hot-path speedup {hotpath:.2f}x below required "
                      f"{args.min_speedup:.2f}x", file=sys.stderr)
                exit_code = 1
    write_results(args.output, results)
    print(f"results written : {args.output}")
    return exit_code


def cmd_stream(args: argparse.Namespace) -> int:
    from .oracle.stream import SCHEDULES, generate_trace, load_trace, replay_trace

    if args.trace is not None and args.app is not None:
        print("error: pass a trace file or --app, not both", file=sys.stderr)
        return 2
    if args.trace is None and args.app is None:
        print("error: pass a trace file or --app to generate one",
              file=sys.stderr)
        return 2
    try:
        if args.app is not None:
            if args.schedule not in SCHEDULES:
                print(f"error: unknown schedule {args.schedule!r} "
                      f"(have {', '.join(sorted(SCHEDULES))})", file=sys.stderr)
                return 2
            trace = generate_trace(args.app, seed=args.seed,
                                   schedule=args.schedule)
        else:
            trace = load_trace(args.trace)
        if args.save is not None:
            args.save.write_text(json.dumps(trace, indent=2) + "\n")
        report = replay_trace(trace, engine=args.engine, threads=args.threads,
                              check=not args.no_check)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0 if report.ok else 1

    print(f"app        : {report.app} (seed {report.seed})")
    print(f"session    : engine={report.engine} threads={report.threads}"
          + (f" schedule={report.schedule}" if report.schedule else ""))
    print(f"bootstrap  : {report.bootstrap_cycles:,.0f} simulated cycles")
    print(f"{'batch':>5} {'size':>4} {'rerun':>5} {'rounds':>6} "
          f"{'repair':>12} {'rebuild':>12} {'ratio':>7}  state")
    for b in report.batches:
        ratio = ("-" if not b.rebuild_cycles
                 else f"{b.repair_cycles / b.rebuild_cycles:.4f}")
        state = {True: "match", False: "DIVERGED", None: "-"}[b.match]
        rebuild = "-" if b.rebuild_cycles is None else f"{b.rebuild_cycles:,.0f}"
        print(f"{b.index:>5} {b.size:>4} {b.tasks_rerun:>5} {b.rounds:>6} "
              f"{b.repair_cycles:>12,.0f} {rebuild:>12} {ratio:>7}  {state}")
    ratio = report.cycle_ratio
    if ratio is not None:
        print(f"total      : repair {report.repair_cycles:,.0f} vs rebuild "
              f"{report.rebuild_cycles:,.0f} cycles "
              f"(ratio {ratio:.4f}, {1 / ratio:.1f}x faster)"
              if ratio > 0 else
              f"total      : repair {report.repair_cycles:,.0f} cycles")
    if not report.ok:
        print("stream: session state DIVERGED from cold rebuild",
              file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "oracle":
        return cmd_oracle(args)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "infer":
        return cmd_infer(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "stream":
        return cmd_stream(args)
    return cmd_run(args)


if __name__ == "__main__":
    raise SystemExit(main())
