"""Rank-error analysis: how far a relaxed schedule strays from priority order.

Relaxed schedulers trade strict priority order for parallelism; the
literature bounds how far (a MultiQueue pop's *rank error* — the number of
strictly earlier pending tasks it jumped — is under ``c`` per pop), but
neither Alistarh et al. 2018 nor PriorityGraph ever *measured* schedules
against a serializable reference.  Our executors record full commit traces,
so the measurement is a replay: walk the trace in commit order while
maintaining the pending-task set (initial tasks plus children, added at
their parent's commit, exactly when the executor could first have scheduled
them), and for each commit count the pending tasks whose total-order key
``(priority, tid)`` is strictly earlier.  For an exact executor the count
is 0 at every commit; for the relaxed modes its maximum and mean quantify
the disorder the speedup bought.

*Wasted work* is the flip side: a relaxation that jumps ahead may relax a
node with a stale label and have to do it again.  Two counters capture it:
``re_relaxations`` (commits minus distinct written locations — for
label-correcting algorithms, exactly the re-writes) and, when a reference
trace is supplied, ``excess_commits`` over the exact schedule's count.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Any

from .trace import ExecutionTrace

__all__ = ["RankErrorReport", "rank_error_report"]


@dataclass
class RankErrorReport:
    """Disorder and wasted-work metrics for one executed trace."""

    algorithm: str
    executor: str
    commits: int
    #: Largest number of strictly-earlier pending tasks jumped by a commit.
    max_rank_error: int
    #: Mean rank error over all commits.
    mean_rank_error: float
    #: Commits with a non-zero rank error (out-of-order commits).
    inversions: int
    #: Commits that re-targeted an already-written location.  Duplicate
    #: pushes make this non-zero even under exact order (a stale task still
    #: commits as a no-op); relaxation grows it — the delta-stepping
    #: literature's re-relaxation count.
    re_relaxations: int
    #: Commits beyond the reference executor's count (None without a
    #: reference trace).
    excess_commits: int | None = None

    @property
    def ordered(self) -> bool:
        """True iff the schedule never jumped priority order."""
        return self.inversions == 0

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "algorithm": self.algorithm,
            "executor": self.executor,
            "commits": self.commits,
            "max_rank_error": self.max_rank_error,
            "mean_rank_error": round(self.mean_rank_error, 4),
            "inversions": self.inversions,
            "re_relaxations": self.re_relaxations,
        }
        if self.excess_commits is not None:
            out["excess_commits"] = self.excess_commits
        return out


def rank_error_report(
    trace: ExecutionTrace, reference: ExecutionTrace | None = None
) -> RankErrorReport:
    """Replay ``trace`` and measure its deviation from priority order.

    ``reference`` — the exact executor's trace for the same input — adds
    the ``excess_commits`` wasted-work count.  The replay is exact, not
    sampled: every commit is ranked against the full pending set at its
    commit point.  Children pushed by a commit enter the pending set at
    that commit (the earliest any executor could schedule them); a pushed
    tid with no commit event of its own (possible only in truncated
    traces) is ignored.
    """
    key_of = {e.tid: (e.priority, e.tid) for e in trace.events}
    pushed_tids = {tid for e in trace.events for tid in e.pushed}
    pending: list[tuple[Any, int]] = sorted(
        key for tid, key in key_of.items() if tid not in pushed_tids
    )

    max_rank = 0
    total_rank = 0
    inversions = 0
    for event in trace.events:
        key = key_of[event.tid]
        index = bisect_left(pending, key)
        # All pending keys before ``index`` are strictly earlier: keys are
        # unique (tid tie-break), so bisect_left is exactly the rank.
        if index:
            inversions += 1
            total_rank += index
            if index > max_rank:
                max_rank = index
        if index >= len(pending) or pending[index] != key:
            raise ValueError(
                f"trace replay lost task {event.tid} (priority "
                f"{event.priority!r}): committed while not pending"
            )
        pending.pop(index)
        for child in event.pushed:
            child_key = key_of.get(child)
            if child_key is not None:
                insort(pending, child_key)

    written: set[Any] = set()
    re_relaxations = 0
    for event in trace.events:
        for loc in event.write_set:
            if loc in written:
                re_relaxations += 1
            else:
                written.add(loc)

    commits = len(trace.events)
    return RankErrorReport(
        algorithm=trace.algorithm,
        executor=trace.executor,
        commits=commits,
        max_rank_error=max_rank,
        mean_rank_error=total_rank / commits if commits else 0.0,
        inversions=inversions,
        re_relaxations=re_relaxations,
        excess_commits=(
            commits - len(reference.events) if reference is not None else None
        ),
    )
