"""Execution traces: what a KDG executor actually committed, in what order.

The paper's correctness argument (§2, §4) is that every executor's schedule
is *equivalent to the serial priority-order execution*.  The repo's apps can
only witness that through final-state snapshots; this module records the
schedule itself.  A :class:`TraceRecorder` is threaded through every
executor (an optional ``recorder=`` keyword) and receives one event per
*committed* task: its priority, commit round, simulated thread, rw-set and
the children it pushed.  The resulting :class:`ExecutionTrace` is what the
serializability checker (:mod:`repro.oracle.check`) and the differential
harness (:mod:`repro.oracle.diff`) consume, and it exports to JSON for
offline inspection (``repro oracle --export-dir``).

Recording is passive: a recorder never changes task creation order, rw-set
computation, or cycle charging, so a traced run is bit-for-bit the same
execution as an untraced one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..core.task import Task

#: Sentinel thread id for commits whose thread is patched in after the
#: simulated phase assigns items to threads (see ``set_thread``).
UNASSIGNED = -1


@dataclass
class TraceEvent:
    """One committed task, in commit order."""

    seq: int                      # position in the global commit order
    tid: int                      # task creation id (the ≺ tie-breaker)
    priority: Any                 # the orderedby value
    round: int                    # executor round / sub-round (0 = no rounds)
    thread: int                   # simulated thread that retired the task
    rw_set: tuple[Any, ...]       # declared locations (empty if never computed)
    write_set: frozenset          # subset of rw_set declared for writing
    pushed: list[int] = field(default_factory=list)  # tids of pushed children

    @property
    def key(self) -> tuple[Any, int]:
        """The total order ``≺``: priority first, creation id tie-break."""
        return (self.priority, self.tid)

    def writes(self, location: Any) -> bool:
        return location in self.write_set


@dataclass
class ExecutionTrace:
    """A full committed schedule for one (algorithm, executor) run."""

    algorithm: str
    executor: str
    threads: int
    events: list[TraceEvent]
    #: Whether recorded rw-sets are stable location identities (Definition 4,
    #: ``structure_based_rw_sets``).  Kinetic rw-sets — Kruskal's union-find
    #: component ids — are snapshots of a *moving* conflict structure, so
    #: commit-time rw-sets of two tasks taken at different times cannot be
    #: compared; conflict-order and last-writer checks are skipped for them.
    rw_stable: bool = True

    def __len__(self) -> int:
        return len(self.events)

    def creation_seqs(self) -> dict[int, int]:
        """Task tid -> commit seq of the task that pushed it (-1 = initial).

        A task exists (is pending) from its creation seq to its own commit;
        the safe-source check only considers windows where both tasks of a
        conflicting pair were alive.
        """
        created: dict[int, int] = {}
        for event in self.events:
            for child in event.pushed:
                created[child] = event.seq
        return {e.tid: created.get(e.tid, -1) for e in self.events}

    @property
    def has_rw_info(self) -> bool:
        """Whether any event carries a non-empty rw-set.

        Conventional-task-graph runs (§4.7 ``dependences`` hint) disable
        rw-set computation entirely; their traces can only be checked on
        final-state digests, not conflict order.
        """
        return any(event.rw_set for event in self.events)

    def last_writers(self) -> dict[Any, TraceEvent]:
        """Per-location, the event that committed the last write (by commit
        order) — the trace-level final-state digest."""
        writers: dict[Any, TraceEvent] = {}
        for event in self.events:
            for loc in event.write_set:
                writers[loc] = event
        return writers

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (see EXPERIMENTS.md for the schema)."""
        return {
            "schema": "repro.oracle.trace/v1",
            "algorithm": self.algorithm,
            "executor": self.executor,
            "threads": self.threads,
            "rw_stable": self.rw_stable,
            "executed": len(self.events),
            "events": [
                {
                    "seq": e.seq,
                    "tid": e.tid,
                    "priority": _jsonable(e.priority),
                    "round": e.round,
                    "thread": e.thread,
                    "rw_set": [_jsonable(loc) for loc in e.rw_set],
                    "write_set": sorted(
                        (_jsonable(loc) for loc in e.write_set), key=repr
                    ),
                    "pushed": list(e.pushed),
                }
                for e in self.events
            ],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def _jsonable(value: Any) -> Any:
    """Map a priority/location onto JSON types, falling back to ``repr``."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    if isinstance(value, frozenset):
        return sorted((_jsonable(v) for v in value), key=repr)
    try:  # numpy scalars and friends
        return value.item()
    except AttributeError:
        return repr(value)


class TraceRecorder:
    """Collects commit events from an executor run.

    Executors call, in this order per task:

    * :meth:`commit` when the task's update is applied and it leaves the
      pending set (the commit point);
    * :meth:`push` for every child task it creates;
    * :meth:`set_thread` once the bulk-synchronous phase has assigned the
      task's execution to a simulated thread (round-based executors only —
      event-driven executors know the thread at commit time).

    ``begin_round`` advances the round counter used for subsequent commits.
    """

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._by_tid: dict[int, TraceEvent] = {}
        self.round_no = 0

    def begin_round(self) -> None:
        self.round_no += 1

    def commit(
        self,
        task: Task,
        thread: int = UNASSIGNED,
        round_no: int | None = None,
    ) -> TraceEvent:
        """Record that ``task`` committed (in call order)."""
        return self.commit_raw(
            tid=task.tid,
            priority=task.priority,
            rw_set=tuple(task.rw_set),
            write_set=task.write_set,
            thread=thread,
            round_no=round_no,
        )

    def commit_raw(
        self,
        *,
        tid: int,
        priority: Any,
        rw_set: tuple[Any, ...],
        write_set: frozenset,
        thread: int = UNASSIGNED,
        round_no: int | None = None,
    ) -> TraceEvent:
        """Record a commit from explicit fields (for trace-replay executors
        that no longer hold :class:`Task` objects, e.g. speculation)."""
        if tid in self._by_tid:
            raise ValueError(f"task {tid} committed twice")
        event = TraceEvent(
            seq=len(self.events),
            tid=tid,
            priority=priority,
            round=self.round_no if round_no is None else round_no,
            thread=thread,
            rw_set=rw_set,
            write_set=frozenset(write_set),
        )
        self.events.append(event)
        self._by_tid[tid] = event
        return event

    def push(self, parent: Task, child: Task) -> None:
        """Record that ``parent`` pushed ``child`` (parent must have
        committed already — children appear at their parent's commit)."""
        self.push_tid(parent.tid, child.tid)

    def push_tid(self, parent_tid: int, child_tid: int) -> None:
        event = self._by_tid.get(parent_tid)
        if event is None:
            raise ValueError(f"push from uncommitted task {parent_tid}")
        event.pushed.append(child_tid)

    def set_thread(self, tid: int, thread: int) -> None:
        """Patch the committing thread once a phase assignment is known."""
        self._by_tid[tid].thread = thread

    def trace(
        self,
        algorithm: str,
        executor: str,
        threads: int,
        rw_stable: bool = True,
    ) -> ExecutionTrace:
        """Finalize into an :class:`ExecutionTrace`."""
        return ExecutionTrace(
            algorithm=algorithm,
            executor=executor,
            threads=threads,
            events=self.events,
            rw_stable=rw_stable,
        )
