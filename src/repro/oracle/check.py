"""Serializability checking over recorded execution traces.

Given an :class:`~repro.oracle.trace.ExecutionTrace`, :func:`check_trace`
rebuilds the conflict structure from the recorded rw-sets and verifies that
the commit order is **conflict-serializable in priority order**: for every
pair of conflicting tasks (they share a location at least one writes) that
were *pending simultaneously*, the task earlier under the total order
``≺ = (priority, tid)`` must commit first.  This is the paper's safe-source
property seen from the schedule side — a task may only commit while no
conflicting earlier-priority task is pending — and since every pending task
eventually commits, a violation always surfaces as such a pair committing
out of ``≺`` order.  Two refinements make the check exact rather than
over-strict:

* **Creation gating** — a task pushed *after* a later-priority task
  committed never overlapped it in time; such pairs are not violations
  (the trace records each child at its parent's commit, so lifetimes are
  reconstructible).
* **Kinetic rw-sets** — when the algorithm's rw-sets are not
  structure-based (Definition 4), location identities are state-dependent
  snapshots (Kruskal's union-find component ids), so commit-time rw-sets
  of two tasks are not comparable; the conflict-order and last-writer
  checks are skipped (``trace.rw_stable``) and correctness rests on the
  task-set and final-state digests.

:func:`diff_traces` compares an executor's trace against the serial
reference: the multiset of committed priorities must match (same logical
tasks executed — task creation *ids* legitimately differ between executors,
so ids are not compared) and the per-location last-writer digests must
agree (same final state, location by location).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from .trace import ExecutionTrace, TraceEvent


@dataclass
class Violation:
    """One detected inconsistency, with the events that witness it."""

    kind: str                 # "conflict-order" | "round-order" | "task-set" | "digest"
    message: str
    events: list[TraceEvent] = field(default_factory=list)

    def excerpt(self) -> list[dict[str, Any]]:
        """Minimized trace excerpt: just the witnessing events, as dicts."""
        return [
            {
                "seq": e.seq,
                "tid": e.tid,
                "priority": repr(e.priority),
                "round": e.round,
                "thread": e.thread,
                "rw_set": [repr(loc) for loc in e.rw_set],
                "writes": sorted(repr(loc) for loc in e.write_set),
            }
            for e in self.events
        ]


@dataclass
class CheckReport:
    """Outcome of checking one trace (optionally against a reference)."""

    algorithm: str
    executor: str
    violations: list[Violation] = field(default_factory=list)
    checked_conflicts: bool = True

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            note = "" if self.checked_conflicts else " (no rw info; digests only)"
            return f"{self.algorithm}/{self.executor}: serializable{note}"
        first = self.violations[0]
        return (
            f"{self.algorithm}/{self.executor}: {len(self.violations)} "
            f"violation(s); first: [{first.kind}] {first.message}"
        )


def check_trace(trace: ExecutionTrace, max_violations: int = 10) -> CheckReport:
    """Verify the commit order is conflict-serializable and priority-consistent.

    One pass in commit order keeps, per location, the already-committed
    touchers and writers.  A newly committed event conflicts with a prior
    committed event on a location when at least one of the two writes it; a
    conflicting prior with a *later* ``≺`` key that committed while the new
    event was already alive (creation gating) is a safe-source violation —
    the earlier-priority task was pending when the later one committed.
    """
    report = CheckReport(trace.algorithm, trace.executor)
    report.checked_conflicts = trace.has_rw_info and trace.rw_stable
    created = trace.creation_seqs()
    # Per location, committed events so far (all touchers / writers only).
    touchers: dict[Any, list[TraceEvent]] = {}
    writers: dict[Any, list[TraceEvent]] = {}
    last_round = 0
    for event in trace.events:
        if event.round < last_round:
            report.violations.append(
                Violation(
                    "round-order",
                    f"commit in round {event.round} after round {last_round}",
                    [event],
                )
            )
        last_round = max(last_round, event.round)
        if not report.checked_conflicts:
            continue
        born = created[event.tid]
        for loc in event.rw_set:
            priors = touchers.get(loc, ()) if event.writes(loc) else writers.get(loc, ())
            for prior in priors:
                if prior.key > event.key and prior.seq > born:
                    report.violations.append(
                        Violation(
                            "conflict-order",
                            f"task {event.tid} (priority {event.priority!r}) "
                            f"committed at seq {event.seq} after conflicting "
                            f"later-priority task {prior.tid} "
                            f"(priority {prior.priority!r}, seq {prior.seq}) "
                            f"committed while it was pending, "
                            f"on location {loc!r}",
                            [prior, event],
                        )
                    )
                    if len(report.violations) >= max_violations:
                        return report
            touchers.setdefault(loc, []).append(event)
            if event.writes(loc):
                writers.setdefault(loc, []).append(event)
    return report


def diff_traces(
    reference: ExecutionTrace,
    trace: ExecutionTrace,
    max_violations: int = 10,
    compare_tasks: bool = True,
    task_key: Any = None,
) -> CheckReport:
    """Diff an executor's trace against the serial reference trace.

    ``compare_tasks=False`` skips the committed-task multiset and
    last-writer comparisons for apps whose task set is legitimately
    schedule-dependent (billiards: the *number* of void re-predictions
    varies between serializable schedules while the physics does not).
    Such apps are still held to the final-state snapshot and the
    per-trace serializability check.

    ``task_key`` canonicalizes priorities before comparison for apps
    whose priorities embed a schedule-dependent creation counter as a
    tie-break (DES event ids); ``None`` compares priorities verbatim.
    """
    report = CheckReport(trace.algorithm, trace.executor)
    if not compare_tasks:
        report.checked_conflicts = False
        return report
    keyed = (lambda p: p) if task_key is None else task_key
    ref_tasks = Counter(_hashable(keyed(e.priority)) for e in reference.events)
    got_tasks = Counter(_hashable(keyed(e.priority)) for e in trace.events)
    if ref_tasks != got_tasks:
        missing = ref_tasks - got_tasks
        extra = got_tasks - ref_tasks
        report.violations.append(
            Violation(
                "task-set",
                f"committed-task multiset differs from serial: "
                f"{sum(missing.values())} missing "
                f"(e.g. {list(missing)[:3]!r}), "
                f"{sum(extra.values())} extra (e.g. {list(extra)[:3]!r})",
            )
        )
    if (
        reference.has_rw_info
        and trace.has_rw_info
        and reference.rw_stable
        and trace.rw_stable
    ):
        ref_writers = reference.last_writers()
        got_writers = trace.last_writers()
        for loc in ref_writers.keys() | got_writers.keys():
            ref_event = ref_writers.get(loc)
            got_event = got_writers.get(loc)
            ref_pri = None if ref_event is None else keyed(ref_event.priority)
            got_pri = None if got_event is None else keyed(got_event.priority)
            if _hashable(ref_pri) != _hashable(got_pri):
                report.violations.append(
                    Violation(
                        "digest",
                        f"last writer of {loc!r} differs: serial wrote it "
                        f"last at priority {ref_pri!r}, {trace.executor} "
                        f"at {got_pri!r}",
                        [e for e in (ref_event, got_event) if e is not None],
                    )
                )
                if len(report.violations) >= max_violations:
                    break
    else:
        report.checked_conflicts = False
    return report


def _hashable(value: Any) -> Any:
    """Priorities are usually hashable tuples/numbers; fall back to repr."""
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)
