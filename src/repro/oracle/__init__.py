"""Execution-trace oracle: serializability checking and differential tests.

The correctness backbone for every executor: record the committed schedule
(:mod:`~repro.oracle.trace`), verify it is conflict-serializable in
priority order (:mod:`~repro.oracle.check`), and differentially test all
executors against the serial reference on seeded inputs
(:mod:`~repro.oracle.diff`).  Exposed on the command line as
``python -m repro oracle``.
"""

from .check import CheckReport, Violation, check_trace, diff_traces
from .diff import (
    ORACLE_EXECUTORS,
    RELAXED_ORACLE_EXECUTORS,
    DiffReport,
    ExecutorVerdict,
    diff_executors,
    run_traced,
)
from .rank_error import RankErrorReport, rank_error_report
from .trace import ExecutionTrace, TraceEvent, TraceRecorder
from .workloads import ORACLE_STATES, make_oracle_state

__all__ = [
    "CheckReport",
    "DiffReport",
    "ExecutionTrace",
    "ExecutorVerdict",
    "ORACLE_EXECUTORS",
    "ORACLE_STATES",
    "RELAXED_ORACLE_EXECUTORS",
    "RankErrorReport",
    "TraceEvent",
    "TraceRecorder",
    "Violation",
    "check_trace",
    "diff_executors",
    "diff_traces",
    "make_oracle_state",
    "rank_error_report",
    "run_traced",
]
