"""Seeded tiny workloads for the differential oracle.

Each builder returns a fresh application state small enough to run the full
executor matrix in milliseconds, deterministically derived from ``seed`` —
the differential harness sweeps seeds to vary meshes, graphs, matrices and
event mixes.  These live in the package (not under ``tests/``) so the
``repro oracle`` CLI, CI smoke jobs and the test suite all draw from the
same inputs.
"""

from __future__ import annotations

from typing import Any

from ..apps import astar, avi, bfs, billiards, des, kcore, lu, mst, sssp, treesum

#: ``app -> seed -> fresh state``; sizes chosen so one (app, executor, seed)
#: run is a few milliseconds of Python.
ORACLE_STATES = {
    "avi": lambda seed: avi.make_state(5, 5, end_time=0.25, seed=seed),
    "mst": lambda seed: mst.make_grid_state(9, 9, seed=seed),
    "billiards": lambda seed: billiards.make_state(18, end_time=8.0, seed=seed),
    "lu": lambda seed: lu.make_state(7, 5, seed=seed),
    "des": lambda seed: des.make_adder_state(7, vectors=3, seed=seed),
    "bfs": lambda seed: bfs.make_grid_state(12, 12, seed=seed),
    "treesum": lambda seed: treesum.make_state(500, leaf_size=8, seed=seed),
    "kcore": lambda seed: kcore.make_tiny_state(seed=seed),
    "sssp": lambda seed: sssp.make_grid_state(10, 10, seed=seed),
    "astar": lambda seed: astar.make_grid_state(12, 12, seed=seed),
}


def make_oracle_state(app: str, seed: int) -> Any:
    """A fresh seeded tiny state for ``app``."""
    try:
        builder = ORACLE_STATES[app]
    except KeyError:
        raise ValueError(
            f"unknown app {app!r}; choose from {sorted(ORACLE_STATES)}"
        ) from None
    return builder(seed)
