"""Differential harness for streaming sessions (the correctness bar).

After every batch a :class:`~repro.runtime.session.KineticSession` commits,
its live app state must be **bit-identical** to a cold one-shot run over
the mutated input (``adapter.fork_cold()``).  This module generates
deterministic mutation traces (app × seed × batch schedule), replays them
through a session, performs that comparison per batch, and reports the
repair-vs-rebuild cycle ratio alongside — the ``repro stream`` CLI and the
CI ``stream-smoke`` job both drive it.

Trace files are JSON (schema ``repro.stream.trace/v1``)::

    {"schema": "repro.stream.trace/v1", "app": "kcore", "seed": 3,
     "batches": [[{"op": "add_edge", "u": 3, "v": 9}], ...]}

so interesting mutation histories can be committed as fixtures and
replayed under any engine.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..core.mutations import (
    AddEdge,
    InjectEvent,
    RemoveEdge,
    mutation_from_dict,
    mutation_to_dict,
)
from ..machine import SimMachine
from ..runtime.base import RunConfig
from ..runtime.session import _SESSION_EXECUTORS, KineticSession

TRACE_SCHEMA = "repro.stream.trace/v1"

#: Batch-size plans the harness sweeps (the acceptance matrix needs >= 3).
SCHEDULES: dict[str, list[int]] = {
    "singles": [1] * 6,
    "bursts": [4] * 3,
    "mixed": [1, 3, 2, 5],
}


def _stream_state(app: str, seed: int) -> Any:
    """A streaming-ready tiny state (DES needs its flush deferred)."""
    from ..apps import bfs, des, kcore

    builders = {
        "kcore": lambda: kcore.make_small_state(seed=seed),
        "bfs": lambda: bfs.make_random_state(200, avg_degree=3.0, seed=seed),
        "des": lambda: des.make_stream_multiplier_state(6, vectors=3, seed=seed),
    }
    try:
        return builders[app]()
    except KeyError:
        raise ValueError(
            f"no streaming workload for {app!r} (have {sorted(builders)})"
        ) from None


STREAM_APPS = ("kcore", "bfs", "des")


def _next_mutations(app: str, session: KineticSession, rng, count: int) -> list[Any]:
    """``count`` valid mutations against the session's *current* state."""
    muts: list[Any] = []
    if app == "kcore":
        state = session.state
        n = state.num_nodes
        while len(muts) < count:
            if rng.random() < 0.35:
                edges = state.edges()
                if not edges:
                    continue
                u, v = edges[int(rng.integers(len(edges)))]
                muts.append(RemoveEdge(int(u), int(v)))
            else:
                u, v = int(rng.integers(n)), int(rng.integers(n))
                if u == v:
                    continue
                muts.append(AddEdge(u, v))
    elif app == "bfs":
        n = session.state.graph.num_nodes
        while len(muts) < count:
            u, v = int(rng.integers(n)), int(rng.integers(n))
            if u == v:
                continue
            muts.append(AddEdge(u, v))
    elif app == "des":
        names = sorted(session.state.circuit.inputs)
        time = float(int(session.watermark[0]) + 1)
        for j in range(count):
            time += 40.0 + float(rng.integers(20))
            vector = {name: int(rng.integers(2)) for name in names}
            muts.append(InjectEvent(time, vector))
    else:
        raise ValueError(f"no mutation generator for {app!r}")
    return muts


def generate_trace(app: str, seed: int = 0, schedule: str = "singles") -> dict:
    """A deterministic mutation trace for ``app``.

    Batches are generated against the live session state (removals pick
    existing edges, injections respect the watermark), so the trace is
    valid by construction and replayable from scratch.
    """
    import numpy as np

    sizes = SCHEDULES[schedule]
    rng = np.random.default_rng([seed, len(sizes), sum(sizes)])
    session = KineticSession(_spec(app), _stream_state(app, seed))
    batches: list[list[dict]] = []
    try:
        for size in sizes:
            muts = _next_mutations(app, session, rng, size)
            session.apply(muts)
            batches.append([mutation_to_dict(m) for m in muts])
    finally:
        session.close()
    return {
        "schema": TRACE_SCHEMA,
        "app": app,
        "seed": seed,
        "schedule": schedule,
        "batches": batches,
    }


def _spec(app: str):
    from ..apps import APPS

    spec = APPS[app]
    if spec.stream_adapter is None:
        raise ValueError(f"{app}: app has no streaming adapter")
    return spec


@dataclass
class BatchVerdict:
    """One batch: did the session state match a cold rebuild, at what cost."""

    index: int
    size: int
    tasks_rerun: int
    locations_touched: int
    rounds: int
    repair_cycles: float
    rebuild_cycles: float | None
    match: bool | None  # None = comparison skipped

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class StreamReport:
    """A replayed trace: per-batch verdicts plus aggregate cycle ratios."""

    app: str
    seed: int
    engine: str
    threads: int
    schedule: str | None
    bootstrap_cycles: float
    batches: list[BatchVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(b.match is not False for b in self.batches)

    @property
    def repair_cycles(self) -> float:
        return sum(b.repair_cycles for b in self.batches)

    @property
    def rebuild_cycles(self) -> float | None:
        measured = [b.rebuild_cycles for b in self.batches]
        if any(m is None for m in measured):
            return None
        return sum(measured)

    @property
    def cycle_ratio(self) -> float | None:
        """Total repair cycles over total rebuild cycles (< 1 = repair won)."""
        rebuild = self.rebuild_cycles
        if rebuild is None or rebuild <= 0:
            return None
        return self.repair_cycles / rebuild

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro.stream.report/v1",
            "app": self.app,
            "seed": self.seed,
            "engine": self.engine,
            "threads": self.threads,
            "schedule": self.schedule,
            "ok": self.ok,
            "bootstrap_cycles": self.bootstrap_cycles,
            "repair_cycles": self.repair_cycles,
            "rebuild_cycles": self.rebuild_cycles,
            "cycle_ratio": self.cycle_ratio,
            "batches": [b.to_dict() for b in self.batches],
        }


def _cold_snapshot(session: KineticSession) -> Any:
    """What a cold run over the session's mutated input computes."""
    cold = session.adapter.fork_cold()
    algorithm = session.adapter.make_algorithm(state=cold)
    run = _SESSION_EXECUTORS[session.adapter.executor]
    run(
        algorithm,
        SimMachine(session.machine.num_threads),
        dataclasses.replace(session.config, recorder=None),
    )
    return session.spec.snapshot(cold)


def replay_trace(
    trace: dict,
    engine: str = "dict",
    threads: int = 3,
    check: bool = True,
    measure_rebuild: bool = True,
) -> StreamReport:
    """Replay a mutation trace through a fresh session.

    ``check=True`` compares the live state against a cold rebuild after
    *every* batch (the bit-identity bar); ``measure_rebuild`` also prices
    the cold run so the report carries repair-vs-rebuild cycle ratios.
    """
    if trace.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"not a stream trace (schema={trace.get('schema')!r}, "
            f"expected {TRACE_SCHEMA!r})"
        )
    app = trace["app"]
    seed = int(trace.get("seed", 0))
    session = KineticSession(
        _spec(app),
        _stream_state(app, seed),
        config=RunConfig(engine=engine),
        threads=threads,
    )
    report = StreamReport(
        app=app,
        seed=seed,
        engine=engine,
        threads=threads,
        schedule=trace.get("schedule"),
        bootstrap_cycles=session.bootstrap_cycles,
    )
    try:
        for index, batch in enumerate(trace["batches"]):
            muts = [mutation_from_dict(m) for m in batch]
            result = session.apply(muts, measure_rebuild=measure_rebuild)
            match = None
            if check:
                match = session.snapshot() == _cold_snapshot(session)
            report.batches.append(
                BatchVerdict(
                    index=index,
                    size=result.batch_size,
                    tasks_rerun=result.tasks_rerun,
                    locations_touched=result.locations_touched,
                    rounds=result.rounds,
                    repair_cycles=result.repair_cycles,
                    rebuild_cycles=result.rebuild_cycles,
                    match=match,
                )
            )
        # Domain invariants only make sense on a state that already
        # matched the cold rebuilds — a diverged report is the finding,
        # and should surface as such, not as an assertion crash.
        if check and report.ok:
            session.validate()
    finally:
        session.close()
    return report


def check_session(
    app: str,
    seed: int = 0,
    schedule: str = "singles",
    engine: str = "dict",
    threads: int = 3,
) -> StreamReport:
    """Generate + replay + verify one (app, seed, schedule, engine) cell."""
    return replay_trace(
        generate_trace(app, seed=seed, schedule=schedule),
        engine=engine,
        threads=threads,
    )


def load_trace(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())
