"""Differential testing harness: every executor vs. the serial oracle.

For one app and one seeded tiny input (:mod:`repro.oracle.workloads`), the
harness runs the serial reference and each parallel executor on fresh
copies of the same state, each with a :class:`~repro.oracle.trace.TraceRecorder`
attached, and checks three things per executor:

1. the recorded schedule is conflict-serializable in priority order
   (:func:`repro.oracle.check.check_trace`);
2. the trace matches the serial reference — same committed-task multiset,
   same per-location last-writer digests
   (:func:`repro.oracle.check.diff_traces`); skipped for apps that declare
   ``deterministic_task_set=False`` (billiards, whose void re-prediction
   count is schedule-dependent);
3. the final application state snapshot equals the serial snapshot
   bit-for-bit, and the app's domain invariants hold.

Executor/property mismatches (e.g. the asynchronous KDG on an algorithm
without structure-based rw-sets) are reported as *skipped*, not failures.
The report carries the first divergence with a minimized trace excerpt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..apps import APPS
from ..machine import SimMachine
from ..runtime import (
    run_ikdg,
    run_kdg_rna,
    run_level_by_level,
    run_relaxed,
    run_serial,
    run_speculation,
)
from ..runtime.base import RunConfig
from .check import CheckReport, Violation, check_trace, diff_traces
from .rank_error import rank_error_report
from .trace import ExecutionTrace, TraceRecorder
from .workloads import make_oracle_state

#: The executors the oracle compares (§3.4–§3.6, the two study executors,
#: and the relaxed family).  ``kdg-rna`` is forced round-based;
#: ``kdg-rna-async`` is the barrier-free §3.6.3 variant, skipped where
#: properties disallow it.  ``relaxed`` is the relaxed executor with
#: relaxation *disabled* — its schedule must stay bit-identical to the
#: exact executors; ``relaxed-mq`` (MultiQueue, c = 4) and
#: ``relaxed-delta`` (fused buckets at the app's declared width) reorder
#: commits, so they are held to convergence checks (final state, domain
#: invariants) plus *measured* rank-error/wasted-work bounds instead of
#: serializability, and skip on apps that are not relaxable.
ORACLE_EXECUTORS = (
    "serial",
    "kdg-rna",
    "kdg-rna-async",
    "ikdg",
    "level-by-level",
    "speculation",
    "relaxed",
    "relaxed-mq",
    "relaxed-delta",
)

#: The ORACLE_EXECUTORS entries that intentionally commit out of priority
#: order (their traces are *not* conflict-serializable in priority order).
RELAXED_ORACLE_EXECUTORS = frozenset({"relaxed-mq", "relaxed-delta"})

#: MultiQueue width used by the ``relaxed-mq`` oracle variant.
ORACLE_MQ_RELAXATION = 4


def run_traced(
    app: str,
    executor: str,
    state: Any,
    threads: int = 3,
    checked: bool = False,
    sanitize: bool = False,
    engine: str = "dict",
    backend=None,
    workers: int = 2,
) -> tuple[Any, ExecutionTrace]:
    """Run ``executor`` over ``state`` with a trace recorder attached.

    Returns ``(LoopResult, ExecutionTrace)``.  Raises ``ValueError`` when
    the app's declared properties rule the executor out (callers treat that
    as a skip).  ``sanitize=True`` enables the runtime access sanitizer on
    the underlying run (observation only; traces stay bit-identical).
    ``engine`` selects the rw-set index implementation on the round-based
    executors (``"flat"`` is schedule-invariant, so oracle traces are
    identical either way).  ``backend`` — ``"mp"`` or a shared
    :class:`~repro.runtime.mp_backend.MPMarkBackend` — runs the flat
    engine's mark rounds on real worker processes; traces stay
    bit-identical there too (executors that cannot honor it raise
    ``ValueError``, which sweeps report as a skip).
    """
    spec = APPS[app]
    algorithm = spec.algorithm(state)
    recorder = TraceRecorder()
    base = dict(
        checked=checked, recorder=recorder, sanitize=sanitize,
        engine=engine, backend=backend, workers=workers,
    )
    if executor == "serial":
        machine = SimMachine(1)
        result = run_serial(
            algorithm, machine,
            RunConfig(baseline=spec.serial_baseline, **base),
        )
    elif executor == "kdg-rna":
        machine = SimMachine(threads)
        result = run_kdg_rna(
            algorithm, machine, RunConfig(asynchronous=False, **base)
        )
    elif executor == "kdg-rna-async":
        machine = SimMachine(threads)
        result = run_kdg_rna(
            algorithm, machine, RunConfig(asynchronous=True, **base)
        )
    elif executor == "ikdg":
        machine = SimMachine(threads)
        result = run_ikdg(algorithm, machine, RunConfig(**base))
    elif executor == "level-by-level":
        machine = SimMachine(threads)
        result = run_level_by_level(algorithm, machine, RunConfig(**base))
    elif executor == "speculation":
        machine = SimMachine(threads)
        result = run_speculation(algorithm, machine, RunConfig(**base))
    elif executor == "relaxed":
        machine = SimMachine(threads)
        result = run_relaxed(algorithm, machine, RunConfig(**base))
    elif executor == "relaxed-mq":
        machine = SimMachine(threads)
        result = run_relaxed(
            algorithm, machine,
            RunConfig(relaxation=ORACLE_MQ_RELAXATION, **base),
        )
    elif executor == "relaxed-delta":
        machine = SimMachine(threads)
        if spec.relaxed_delta is None:
            raise ValueError(
                f"{app}: no relaxed_delta declared (delta bucketing needs "
                "integer priority levels)"
            )
        result = run_relaxed(
            algorithm, machine, RunConfig(delta=spec.relaxed_delta, **base)
        )
    else:
        raise ValueError(f"unknown oracle executor {executor!r}")
    trace = recorder.trace(
        algorithm.name,
        result.executor,
        machine.num_threads,
        rw_stable=algorithm.properties.structure_based_rw_sets,
    )
    return result, trace


@dataclass
class ExecutorVerdict:
    """One executor's outcome against the serial oracle."""

    app: str
    executor: str
    seed: int
    threads: int
    status: str = "ok"            # "ok" | "fail" | "skip"
    reason: str = ""
    executed: int = 0
    violations: list[Violation] = field(default_factory=list)
    snapshot_matches: bool | None = None
    trace: ExecutionTrace | None = None
    #: Resolved run configuration (``RunConfig.describe()``), straight from
    #: the executor's ``LoopResult`` — not reconstructed from CLI flags.
    config: dict[str, Any] | None = None
    #: Rank-error/wasted-work measurement
    #: (:meth:`~repro.oracle.rank_error.RankErrorReport.to_dict`), attached
    #: to the relaxed executor family's verdicts.
    rank_error: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def first_violation(self) -> Violation | None:
        return self.violations[0] if self.violations else None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "app": self.app,
            "executor": self.executor,
            "seed": self.seed,
            "threads": self.threads,
            "status": self.status,
            "executed": self.executed,
            "snapshot_matches": self.snapshot_matches,
        }
        if self.config is not None:
            out["config"] = self.config
        if self.rank_error is not None:
            out["rank_error"] = self.rank_error
        if self.reason:
            out["reason"] = self.reason
        first = self.first_violation()
        if first is not None:
            out["first_divergence"] = {
                "kind": first.kind,
                "message": first.message,
                "trace_excerpt": first.excerpt(),
            }
            out["total_violations"] = len(self.violations)
        return out


@dataclass
class DiffReport:
    """All executors' verdicts for one (app, seed, threads)."""

    app: str
    seed: int
    threads: int
    verdicts: list[ExecutorVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(v.status != "fail" for v in self.verdicts)

    def first_divergence(self) -> ExecutorVerdict | None:
        for verdict in self.verdicts:
            if verdict.status == "fail":
                return verdict
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "app": self.app,
            "seed": self.seed,
            "threads": self.threads,
            "ok": self.ok,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


def diff_executors(
    app: str,
    seed: int = 0,
    threads: int = 3,
    executors: tuple[str, ...] | None = None,
    checked: bool = False,
    keep_traces: bool = False,
    engine: str = "dict",
    backend=None,
    workers: int = 2,
) -> DiffReport:
    """Run ``app`` under every oracle executor on one seeded input and diff.

    ``keep_traces=True`` attaches each executor's :class:`ExecutionTrace`
    to its verdict (for JSON export); otherwise traces are dropped after
    checking to keep memory flat across sweeps.  ``engine`` selects the
    rw-set index implementation on the parallel executors (the serial
    reference has no index either way).  ``backend`` is threaded to the
    parallel executors; pass a shared
    :class:`~repro.runtime.mp_backend.MPMarkBackend` to amortize worker
    startup across a sweep.
    """
    spec = APPS[app]
    executors = ORACLE_EXECUTORS if executors is None else executors
    report = DiffReport(app=app, seed=seed, threads=threads)

    # Serial reference: trace + snapshot every executor is diffed against.
    ref_state = make_oracle_state(app, seed)
    ref_result, ref_trace = run_traced(app, "serial", ref_state, checked=checked)
    spec.validate(ref_state)
    ref_snapshot = spec.snapshot(ref_state)
    ref_verdict = ExecutorVerdict(
        app, "serial", seed, 1, executed=ref_result.executed,
        snapshot_matches=True, trace=ref_trace if keep_traces else None,
        config=ref_result.config.describe() if ref_result.config else None,
    )
    ref_check = check_trace(ref_trace)
    if not ref_check.ok:
        ref_verdict.status = "fail"
        ref_verdict.violations = ref_check.violations
    report.verdicts.append(ref_verdict)

    for executor in executors:
        if executor == "serial":
            continue
        verdict = ExecutorVerdict(app, executor, seed, threads)
        report.verdicts.append(verdict)
        state = make_oracle_state(app, seed)
        try:
            result, trace = run_traced(
                app, executor, state, threads, checked=checked, engine=engine,
                backend=backend, workers=workers,
            )
        except ValueError as exc:
            # Properties rule this executor out for this app (e.g. the
            # asynchronous KDG without structure-based rw-sets).
            verdict.status = "skip"
            verdict.reason = str(exc)
            continue
        verdict.executed = result.executed
        verdict.config = result.config.describe() if result.config else None
        if keep_traces:
            verdict.trace = trace
        try:
            spec.validate(state)
        except AssertionError as exc:
            verdict.violations.append(
                Violation("digest", f"domain invariant violated: {exc}")
            )
        snapshot = spec.snapshot(state)
        verdict.snapshot_matches = snapshot == ref_snapshot
        if not verdict.snapshot_matches:
            verdict.violations.append(
                Violation(
                    "digest",
                    f"final-state snapshot differs from the serial execution "
                    f"({app}/{executor}@{threads} threads, seed {seed})",
                )
            )
        if executor in RELAXED_ORACLE_EXECUTORS:
            # Intentionally out-of-order: held to convergence (snapshot +
            # domain invariants above), with the disorder *measured*, not
            # forbidden — serializability and task-multiset checks would
            # fail by design.
            verdict.rank_error = rank_error_report(
                trace, reference=ref_trace
            ).to_dict()
        else:
            if executor == "relaxed":
                # Relaxation disabled: the schedule must not only be
                # serializable but stay exactly in priority order.
                verdict.rank_error = rank_error_report(
                    trace, reference=ref_trace
                ).to_dict()
            verdict.violations.extend(check_trace(trace).violations)
            verdict.violations.extend(
                diff_traces(
                    ref_trace,
                    trace,
                    compare_tasks=spec.deterministic_task_set,
                    task_key=spec.oracle_task_key,
                ).violations
            )
        if verdict.violations:
            verdict.status = "fail"
    return report


def check_reports(report: DiffReport) -> list[CheckReport]:
    """Convenience: re-package verdicts as per-executor check reports."""
    out = []
    for verdict in report.verdicts:
        cr = CheckReport(report.app, verdict.executor, list(verdict.violations))
        out.append(cr)
    return out
