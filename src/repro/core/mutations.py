"""Typed input mutations and the per-app adapters that interpret them.

A :class:`~repro.runtime.session.KineticSession` accepts *batches* of the
mutation types below and maps them — through an app-specific
:class:`MutationAdapter` — into repair seeds: the ordered tasks whose
re-execution restores the app state to what a cold run on the mutated
input would compute.  This is the paper's update rule U (§3.4) lifted to
the input level: instead of rebuilding the kinetic dependence graph per
run, a mutation invalidates only the locations it touches and the session
re-executes the affected frontier.

Mutation types (one per input domain):

* :class:`AddEdge` / :class:`RemoveEdge` — graph workloads (k-core, BFS).
* :class:`InjectEvent` — event-driven workloads (DES: a new input vector
  arriving at a simulation time).
* :class:`UpdateCell` — dense numeric workloads (reserved for matrix
  updates; no bundled adapter yet).

Adapters declare a ``watermark_policy``:

* ``"fixpoint"`` — the app state is the unique fixpoint of a monotone
  repair operator (k-core's H-operator, BFS relaxation), so repair tasks
  may be seeded at *any* priority; batches can arrive in any order.
* ``"ordered"`` — committed priorities are irrevocable (DES: simulated
  time already drained cannot be re-entered), so a mutation below the
  session's committed-priority watermark raises :class:`WatermarkError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "AddEdge",
    "InjectEvent",
    "MutationAdapter",
    "MutationError",
    "RemoveEdge",
    "UnsupportedMutationError",
    "UpdateCell",
    "WatermarkError",
    "mutation_from_dict",
    "mutation_to_dict",
]


@dataclass(frozen=True)
class AddEdge:
    """Insert edge ``(u, v)`` (graphs are undirected unless the app says
    otherwise); ``weight`` is ignored by unweighted apps."""

    u: int
    v: int
    weight: float = 1.0


@dataclass(frozen=True)
class RemoveEdge:
    """Delete edge ``(u, v)``; a no-op if the edge is absent."""

    u: int
    v: int


@dataclass(frozen=True)
class InjectEvent:
    """Inject an input stimulus at simulation time ``time``.

    For DES, ``payload`` is an input vector (tuple of 0/1 levels, one per
    circuit input) applied to the primary inputs at ``time``.
    """

    time: float
    payload: Any


@dataclass(frozen=True)
class UpdateCell:
    """Overwrite one cell of a dense input (``matrix[i, j] = value``)."""

    i: int
    j: int
    value: float


#: ``op`` tag <-> mutation class, for trace files (``repro stream``).
_MUTATION_OPS = {
    "add_edge": AddEdge,
    "remove_edge": RemoveEdge,
    "inject": InjectEvent,
    "update_cell": UpdateCell,
}
_OP_NAMES = {cls: op for op, cls in _MUTATION_OPS.items()}


def mutation_to_dict(mutation: Any) -> dict[str, Any]:
    """JSON-ready form of a mutation (see ``repro stream`` trace files)."""
    try:
        op = _OP_NAMES[type(mutation)]
    except KeyError:
        raise ValueError(
            f"not a mutation: {type(mutation).__name__}"
        ) from None
    fields = {
        key: value
        for key, value in vars(mutation).items()
    }
    return {"op": op, **fields}


def mutation_from_dict(data: dict[str, Any]) -> Any:
    """Inverse of :func:`mutation_to_dict`."""
    payload = dict(data)
    op = payload.pop("op", None)
    try:
        cls = _MUTATION_OPS[op]
    except KeyError:
        raise ValueError(
            f"unknown mutation op {op!r} (expected one of "
            f"{sorted(_MUTATION_OPS)})"
        ) from None
    return cls(**payload)


class MutationError(Exception):
    """Base class for mutation-application failures."""


class UnsupportedMutationError(MutationError):
    """The adapter does not understand this mutation type."""

    def __init__(self, adapter: str, mutation: Any):
        self.adapter = adapter
        self.mutation = mutation
        super().__init__(
            f"{adapter}: unsupported mutation {type(mutation).__name__}"
        )


class WatermarkError(MutationError):
    """A mutation arrived below the session's committed-priority watermark.

    Raised by ordered-watermark adapters (DES): once the session has
    committed tasks up to ``watermark``, injecting work at an earlier
    priority would require rolling back state the executor already
    finalized.  Carries the offending mutation, its would-be priority and
    the watermark for structured handling.
    """

    def __init__(self, mutation: Any, priority: Any, watermark: Any):
        self.mutation = mutation
        self.priority = priority
        self.watermark = watermark
        super().__init__(
            f"mutation {mutation!r} at priority {priority!r} is below the "
            f"session's committed-priority watermark {watermark!r}"
        )


class MutationAdapter:
    """Maps typed mutations onto one app's state and repair seeds.

    Subclasses set :attr:`supported` to the mutation types they accept and
    :attr:`watermark_policy` to ``"fixpoint"`` or ``"ordered"`` (see module
    docstring), and implement :meth:`apply`.  The session calls, per
    mutation: ``flush_before`` (may demand the pending frontier be drained
    first), then ``apply`` — which mutates the app state *input* (graph,
    pending events, matrix) and returns the seed items whose re-execution
    repairs the derived state.
    """

    #: Mutation classes this adapter accepts.
    supported: tuple[type, ...] = ()
    #: ``"fixpoint"`` (any-order batches) or ``"ordered"`` (watermarked).
    watermark_policy: str = "fixpoint"
    #: Executor the session should run repairs under (``"ikdg"`` or
    #: ``"level-by-level"``).
    executor: str = "ikdg"
    #: Whether repair runs use IKDG's level windowing (§3.6.1).
    level_windows: bool = False

    def __init__(self, state: Any):
        self.state = state

    def make_algorithm(self, seed_items: list[Any] | None = None, state: Any = None):
        """(Re)build the ordered algorithm over ``state`` (default: live).

        ``seed_items`` restricts the initial tasks to the repair frontier;
        ``None`` means a cold (full) run.  Rebuilt per executor invocation
        because app closures may capture input structures (e.g. a CSR
        graph) that mutations replace.
        """
        raise NotImplementedError

    def fork_cold(self) -> Any:
        """A fresh state representing the current (mutated) input, as a
        cold run would construct it — the differential harness and the
        rebuild-cost measurement run the one-shot algorithm over it."""
        raise NotImplementedError

    def flush_before(self, mutation: Any) -> bool:
        """Whether pending repair seeds must drain before this mutation.

        Structural mutations whose seed computation reads *converged*
        derived state (k-core's subcore rule) return True; purely additive
        mutations return False.
        """
        return False

    def check(self, mutation: Any) -> None:
        """Type-check ``mutation``; raise :class:`UnsupportedMutationError`."""
        if not isinstance(mutation, self.supported):
            raise UnsupportedMutationError(type(self).__name__, mutation)

    def check_watermark(self, mutation: Any, watermark: Any) -> None:
        """Reject mutations below the committed-priority ``watermark``.

        Only called under ``watermark_policy == "ordered"`` (and only once
        the session has committed work); implementations raise
        :class:`WatermarkError`.  Fixpoint adapters never see this call.
        """

    def apply(self, mutation: Any) -> list[Any]:
        """Mutate the input state; return repair seed *items* (not tasks)."""
        raise NotImplementedError
