"""The ordered-algorithm specification bound to the ordered foreach loop.

An :class:`OrderedAlgorithm` is everything the paper's
``Runtime::for_each_ordered`` call carries (Figure 7): the initial items, a
priority function (the ``orderedby`` clause), the rw-set visitor prefix, the
loop body, declared algorithm properties, and — for unstable-source
algorithms — a safe-source test.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from .context import (
    BodyContext,
    InterningRWSetContext,
    RecordingBodyContext,
    RWSetContext,
)
from .properties import AlgorithmProperties
from .task import Task, TaskFactory


@dataclass
class SourceView:
    """Runtime information handed to a safe-source test ``P(G, σ, w)``.

    ``sources`` are the current sources of the (possibly windowed) KDG and
    ``min_priority`` is the earliest priority among *all* pending tasks.
    Application state σ is reached through the test's closure, as in the
    paper's C++ programs.
    """

    sources: list[Task]
    min_priority: Any


#: ``P(task, view) -> bool``: may the source execute now?
SafeSourceTest = Callable[[Task, SourceView], bool]


@dataclass
class OrderedAlgorithm:
    """A program in the ordered programming model (§3.1)."""

    name: str
    initial_items: Sequence[Any]
    priority: Callable[[Any], Any]
    visit_rw_sets: Callable[[Any, RWSetContext], None]
    apply_update: Callable[[Any, BodyContext], None]
    properties: AlgorithmProperties = field(default_factory=AlgorithmProperties)
    safe_source_test: SafeSourceTest | None = None
    #: Extra cycles one safe-source test costs (on top of the model's base).
    safe_test_work: float = 0.0
    #: Memory-bound share of task execution (0 = compute-bound, 1 = pure
    #: pointer chasing).  Inflates EXECUTE cycles with thread count on the
    #: simulated machine (shared bandwidth; the paper's §5.2 observation).
    memory_bound_fraction: float = 0.0
    #: Priority *level* of an item (Fig. 14 grouping; e.g. the BFS distance
    #: or the AVI time-stamp, without the tie-break).  Defaults to the full
    #: priority.
    level_of: Callable[[Any], Any] | None = None
    #: Optional §4.7-style hint for conventional task graphs: a function
    #: mapping an item to the items it depends on.  When set (and the
    #: algorithm creates no new tasks), the explicit KDG is wired directly
    #: from these edges and rw-set computation is disabled entirely ("we
    #: disable the computation of rw-sets", tree traversal).
    dependences: Callable[[Any], list[Any]] | None = None
    #: Declares that out-of-priority-order execution still converges to the
    #: serializable fixpoint (label-correcting algorithms: BFS, SSSP, A*).
    #: Bodies of relaxable algorithms must be monotonic and idempotent on
    #: stale inputs — a task observing an already-improved state does no
    #: harm (it re-checks and pushes nothing).  Only relaxable algorithms
    #: may run under the relaxed executor's ``relaxation > 1`` / ``delta``
    #: modes; priority order then bounds *wasted work*, not correctness.
    relaxable: bool = False

    def __post_init__(self) -> None:
        if not self.properties.stable_source and self.safe_source_test is None:
            raise ValueError(
                f"{self.name}: unstable-source algorithms require a "
                "safe_source_test (Liveness would be unverifiable)"
            )

    def task_factory(self) -> TaskFactory:
        return TaskFactory(self.priority)

    def level(self, task: Task) -> Any:
        """The priority level a task belongs to (level-by-level grouping)."""
        if self.level_of is None:
            return task.priority
        return self.level_of(task.item)

    def compute_rw_set(self, task: Task) -> tuple[Any, ...]:
        """Run the cautious read-only prefix; binds and returns the rw-set.

        Sets ``task.rw_set`` (all locations) and ``task.write_set`` (write
        intents) as a side effect, since every caller needs both.

        For ``structure_based_rw_sets`` algorithms (Definition 4) the rw-set
        is data-independent, so the visitor result is memoized on the task:
        round-based executors re-mark carried-over window tasks every round
        and would otherwise re-run the visitor each time.  Kinetic
        algorithms (rw-sets that move under execution) never take the cache;
        code that re-registers a task after neighbors ran must call
        :meth:`invalidate_rw_set` first (subrule **N** does).
        """
        if task.rw_valid and self.properties.structure_based_rw_sets:
            return task.rw_set
        ctx = RWSetContext()
        self.visit_rw_sets(task.item, ctx)
        task.rw_set = ctx.rw_set
        task.write_set = ctx.write_set
        task.rw_valid = True
        return ctx.rw_set

    def invalidate_rw_set(self, task: Task) -> None:
        """Drop a task's memoized rw-set (kinetic refresh, subrule **N**)."""
        task.rw_valid = False

    def compute_rw_lists(self, task: Task, interner):
        """Flat-engine twin of :meth:`compute_rw_set`: also returns dense ids.

        Returns the task's flat-cache entry ``(interner, rw_set, loc_ids,
        write_bits, writer_ids, reader_ids)`` — the dense-id lists the flat
        index and marking kernels consume (see ``Task.flat_cache``).  The
        visitor runs with :class:`~repro.core.context.InterningRWSetContext`,
        which interns each location at the declaration boundary and emits
        the cache entry from the same pass — no second walk over the bound
        rw-set.  Memoization semantics match :meth:`compute_rw_set`
        exactly: the entry is keyed by interner and rw-set tuple identity,
        so carried-over window tasks hit the cache every round while
        kinetic refreshes miss it.
        """
        if task.rw_valid and self.properties.structure_based_rw_sets:
            cache = task.flat_cache
            if cache is not None and cache[0] is interner and cache[1] is task.rw_set:
                return cache
            # rw-set already bound (e.g. by compute_rw_set, or under another
            # interner): one tight interning pass over the bound tuple.
            interner.task_lists(task)
            return task.flat_cache
        ctx = InterningRWSetContext(interner)
        self.visit_rw_sets(task.item, ctx)
        ctx.finalize(task)
        return task.flat_cache

    def execute_body(
        self, task: Task, checked: bool = False, record: bool = False
    ) -> BodyContext:
        """Run the loop body; returns the context holding pushes and work.

        ``record=True`` hands the body a :class:`RecordingBodyContext` so the
        access sanitizer can diff actual accesses against the declared rw-set
        at the commit point (see :mod:`repro.analysis.sanitizer`).
        """
        if record:
            ctx: BodyContext = RecordingBodyContext(
                declared=task.rw_set, checked=checked
            )
        else:
            ctx = BodyContext(declared=task.rw_set, checked=checked)
        self.apply_update(task.item, ctx)
        return ctx

    def is_safe(self, task: Task, view: SourceView) -> bool:
        """Apply ``P``; stable-source algorithms accept every source."""
        if self.safe_source_test is None:
            return True
        return self.safe_source_test(task, view)
