"""The task (dependence) graph ``G`` of the explicit KDG (Definition 5).

Nodes are :class:`~repro.core.task.Task` objects; an edge ``w1 → w2`` means
``w1`` must commit before ``w2``.  Sources (no in-edges) are maintained
incrementally.  Adjacency uses insertion-ordered dicts so iteration — and
therefore the whole runtime — is deterministic.

Mutators return the number of structural operations performed so executors
can charge the cost model for graph maintenance (SCHEDULE cycles).
"""

from __future__ import annotations

from collections.abc import Iterator

from .task import Task


class TaskGraph:
    """Directed acyclic dependence graph with incremental source tracking."""

    def __init__(self) -> None:
        self._in: dict[Task, dict[Task, None]] = {}
        self._out: dict[Task, dict[Task, None]] = {}
        self._sources: dict[Task, None] = {}

    def __len__(self) -> int:
        return len(self._in)

    def __contains__(self, task: Task) -> bool:
        return task in self._in

    def notEmpty(self) -> bool:  # noqa: N802 - paper's spelling (Fig. 6)
        return bool(self._in)

    def add_node(self, task: Task) -> int:
        if task in self._in:
            raise ValueError(f"task already in graph: {task!r}")
        self._in[task] = {}
        self._out[task] = {}
        self._sources[task] = None
        return 1

    def add_edge(self, src: Task, dst: Task) -> int:
        """Add ``src → dst``; idempotent. Returns ops performed (0 or 1).

        Both endpoints must already be nodes; an unknown task raises
        ``ValueError`` naming it (matching :meth:`add_node`'s style) so
        executor bugs surface with a diagnosable message instead of a bare
        ``KeyError``.
        """
        if src is dst:
            raise ValueError("self-dependence is not allowed")
        try:
            out_src = self._out[src]
        except KeyError:
            raise ValueError(f"source task not in graph: {src!r}") from None
        if dst in out_src:
            return 0
        try:
            in_dst = self._in[dst]
        except KeyError:
            raise ValueError(f"destination task not in graph: {dst!r}") from None
        out_src[dst] = None
        in_dst[src] = None
        self._sources.pop(dst, None)
        return 1

    def wire_edges(self, task: Task, preds: list[Task], succs: list[Task]) -> int:
        """Bulk :meth:`add_edge` around one task: ``pred → task → succ``.

        Semantically identical to calling ``add_edge(pred, task)`` /
        ``add_edge(task, succ)`` edge by edge (idempotent, same
        ``ValueError`` on unknown endpoints) but with one call for the whole
        batch — ``KDG.add_task`` wires every conflict edge of a new task
        through here, and the per-edge call overhead dominated its profile.
        """
        _in, _out = self._in, self._out
        in_task = _in.get(task)
        if in_task is None:
            name = "destination" if preds else "source"
            raise ValueError(f"{name} task not in graph: {task!r}")
        out_task = _out[task]
        sources = self._sources
        ops = 0
        for src in preds:
            if src is task:
                raise ValueError("self-dependence is not allowed")
            out_src = _out.get(src)
            if out_src is None:
                raise ValueError(f"source task not in graph: {src!r}")
            if task not in out_src:
                out_src[task] = None
                in_task[src] = None
                ops += 1
        if in_task:
            sources.pop(task, None)
        for dst in succs:
            if dst is task:
                raise ValueError("self-dependence is not allowed")
            in_dst = _in.get(dst)
            if in_dst is None:
                raise ValueError(f"destination task not in graph: {dst!r}")
            if dst not in out_task:
                out_task[dst] = None
                in_dst[task] = None
                sources.pop(dst, None)
                ops += 1
        return ops

    def remove_node(self, task: Task) -> tuple[list[Task], int]:
        """Remove ``task`` and incident edges (subrule **R**).

        Returns ``(neighbors, ops)`` where neighbors are the tasks that were
        adjacent (in either direction), in deterministic order.
        """
        _in, _out = self._in, self._out
        preds = _in.pop(task)
        succs = _out.pop(task)
        ops = 1 + len(preds) + len(succs)
        # KDG edges follow the total order, so preds and succs are disjoint
        # and concatenation suffices; the O(1) membership check only guards
        # the 2-cycles the generic graph type tolerates for diagnostics.
        neighbors: list[Task] = list(preds)
        for pred in preds:
            del _out[pred][task]
        sources = self._sources
        for succ in succs:
            in_succ = _in[succ]
            del in_succ[task]
            if not in_succ:
                sources[succ] = None
            if succ not in preds:
                neighbors.append(succ)
        sources.pop(task, None)
        return neighbors, ops

    def in_degree(self, task: Task) -> int:
        preds = self._in.get(task)
        if preds is None:
            raise ValueError(f"task not in graph: {task!r}")
        return len(preds)

    def is_source(self, task: Task) -> bool:
        return task in self._sources

    def sources(self) -> list[Task]:
        """Tasks with no predecessors, in insertion order."""
        return list(self._sources)

    def neighbors(self, task: Task) -> list[Task]:
        """All adjacent tasks (union of predecessors and successors)."""
        preds = self._in.get(task)
        if preds is None:
            raise ValueError(f"task not in graph: {task!r}")
        out = list(preds)
        out.extend(self._out[task])
        return out

    def successors(self, task: Task) -> list[Task]:
        return list(self._out[task])

    def predecessors(self, task: Task) -> list[Task]:
        return list(self._in[task])

    def nodes(self) -> Iterator[Task]:
        return iter(self._in)

    def check_acyclic(self) -> bool:
        """Kahn's algorithm over a copy; True iff the graph is a DAG.

        Diagnostic used by tests and debug mode — the runtime never needs it
        because edges always point from earlier to later total-order keys.
        """
        indeg = {t: len(preds) for t, preds in self._in.items()}
        stack = [t for t, d in indeg.items() if d == 0]
        visited = 0
        while stack:
            t = stack.pop()
            visited += 1
            for succ in self._out[t]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    stack.append(succ)
        return visited == len(self._in)
