"""The task (dependence) graph ``G`` of the explicit KDG (Definition 5).

Nodes are :class:`~repro.core.task.Task` objects; an edge ``w1 → w2`` means
``w1`` must commit before ``w2``.  Sources (no in-edges) are maintained
incrementally.  Adjacency uses insertion-ordered dicts so iteration — and
therefore the whole runtime — is deterministic.

Mutators return the number of structural operations performed so executors
can charge the cost model for graph maintenance (SCHEDULE cycles).
"""

from __future__ import annotations

from collections.abc import Iterator

from .task import Task


class TaskGraph:
    """Directed acyclic dependence graph with incremental source tracking."""

    def __init__(self) -> None:
        self._in: dict[Task, dict[Task, None]] = {}
        self._out: dict[Task, dict[Task, None]] = {}
        self._sources: dict[Task, None] = {}

    def __len__(self) -> int:
        return len(self._in)

    def __contains__(self, task: Task) -> bool:
        return task in self._in

    def notEmpty(self) -> bool:  # noqa: N802 - paper's spelling (Fig. 6)
        return bool(self._in)

    def add_node(self, task: Task) -> int:
        if task in self._in:
            raise ValueError(f"task already in graph: {task!r}")
        self._in[task] = {}
        self._out[task] = {}
        self._sources[task] = None
        return 1

    def add_edge(self, src: Task, dst: Task) -> int:
        """Add ``src → dst``; idempotent. Returns ops performed (0 or 1)."""
        if src is dst:
            raise ValueError("self-dependence is not allowed")
        if dst in self._out[src]:
            return 0
        self._out[src][dst] = None
        self._in[dst][src] = None
        self._sources.pop(dst, None)
        return 1

    def remove_node(self, task: Task) -> tuple[list[Task], int]:
        """Remove ``task`` and incident edges (subrule **R**).

        Returns ``(neighbors, ops)`` where neighbors are the tasks that were
        adjacent (in either direction), in deterministic order.
        """
        ops = 1
        neighbors: dict[Task, None] = {}
        for pred in self._in.pop(task):
            del self._out[pred][task]
            neighbors[pred] = None
            ops += 1
        for succ in self._out.pop(task):
            del self._in[succ][task]
            neighbors[succ] = None
            if not self._in[succ]:
                self._sources[succ] = None
            ops += 1
        self._sources.pop(task, None)
        return list(neighbors), ops

    def in_degree(self, task: Task) -> int:
        return len(self._in[task])

    def is_source(self, task: Task) -> bool:
        return task in self._sources

    def sources(self) -> list[Task]:
        """Tasks with no predecessors, in insertion order."""
        return list(self._sources)

    def neighbors(self, task: Task) -> list[Task]:
        """All adjacent tasks (union of predecessors and successors)."""
        seen: dict[Task, None] = {}
        for pred in self._in[task]:
            seen[pred] = None
        for succ in self._out[task]:
            seen[succ] = None
        return list(seen)

    def successors(self, task: Task) -> list[Task]:
        return list(self._out[task])

    def predecessors(self, task: Task) -> list[Task]:
        return list(self._in[task])

    def nodes(self) -> Iterator[Task]:
        return iter(self._in)

    def check_acyclic(self) -> bool:
        """Kahn's algorithm over a copy; True iff the graph is a DAG.

        Diagnostic used by tests and debug mode — the runtime never needs it
        because edges always point from earlier to later total-order keys.
        """
        indeg = {t: len(preds) for t, preds in self._in.items()}
        stack = [t for t, d in indeg.items() if d == 0]
        visited = 0
        while stack:
            t = stack.pop()
            visited += 1
            for succ in self._out[t]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    stack.append(succ)
        return visited == len(self._in)
