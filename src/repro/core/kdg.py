"""The Kinetic Dependence Graph: ⟨G, P, U⟩ (Definition 6).

This module materializes the *explicit* KDG: the task graph ``G``
(:class:`~repro.core.taskgraph.TaskGraph`) plus the rw-set index ``B``
(:class:`~repro.core.rwsets.RWSetIndex`), with the generic ``AddTask`` /
``RemoveTask`` procedures of Figure 6.  The safe-source test ``P`` and the
update rule ``U`` live in the executors; this class supplies the mechanics
they share and, optionally, *checks the Safety property at runtime*: while a
task is marked as an executing safe source, any new in-edge to it raises
:class:`SafetyViolation`.

Mutators return :class:`OpCounts` so executors can charge graph maintenance
to the cost model.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

from .rwsets import RWSetIndex
from .task import Task
from .taskgraph import TaskGraph


class SafetyViolation(RuntimeError):
    """The update rule created an incoming edge to an executing safe source."""


class LivenessViolation(RuntimeError):
    """No earliest-priority task passed the safe-source test."""


@dataclass
class OpCounts:
    """Structural operations performed by a KDG mutation (for cost charging)."""

    node_ops: int = 0
    edge_ops: int = 0
    rw_ops: int = 0

    def __iadd__(self, other: "OpCounts") -> "OpCounts":
        self.node_ops += other.node_ops
        self.edge_ops += other.edge_ops
        self.rw_ops += other.rw_ops
        return self


class KDG:
    """Explicit KDG state: task graph ``G`` + rw-set index ``B``."""

    def __init__(self, check_safety: bool = False):
        self.graph = TaskGraph()
        self.rwsets = RWSetIndex()
        self.check_safety = check_safety
        self._protected: set[Task] = set()

    def __len__(self) -> int:
        return len(self.graph)

    def not_empty(self) -> bool:
        return self.graph.notEmpty()

    # ------------------------------------------------------------------
    # Figure 6: AddTask / RemoveTask
    # ------------------------------------------------------------------
    def add_task(
        self,
        task: Task,
        rw_set: Iterable[Any],
        writes: frozenset | None = None,
    ) -> OpCounts:
        """Insert ``task`` with ``rw_set``, wiring dependence edges by the
        total order on ``(priority, tid)`` (the paper's ``t`` and ``≺``).

        Two tasks sharing a location depend on each other only if at least
        one *writes* it.  ``writes=None`` treats every location as written
        (the conservative single-set model of the paper's Figure 6).
        """
        ops = OpCounts()
        locations = rw_set if type(rw_set) is tuple else tuple(rw_set)
        task.rw_set = locations
        write_set = frozenset(locations) if writes is None else writes
        task.write_set = write_set
        ops.node_ops += self.graph.add_node(task)
        ops.rw_ops += self.rwsets.add(task, locations)
        key = task.sort_key
        conflicts: dict[Task, None] = {}
        tasks_at_view = self.rwsets.tasks_at_view
        for loc in locations:
            bucket = tasks_at_view(loc)
            if len(bucket) < 2:  # only this task touches the location
                continue
            i_write = loc in write_set
            for other in bucket:
                if other is task or other in conflicts:
                    continue
                if i_write or loc in other.write_set:
                    conflicts[other] = None
        preds: list[Task] = []
        succs: list[Task] = []
        for other in conflicts:
            if other.sort_key < key:
                preds.append(other)
            else:
                if self.check_safety and other in self._protected:
                    raise SafetyViolation(
                        f"in-edge added to executing safe source {other!r} "
                        f"by {task!r}"
                    )
                succs.append(other)
        ops.edge_ops += self.graph.wire_edges(task, preds, succs)
        return ops

    def remove_task(self, task: Task) -> tuple[list[Task], OpCounts]:
        """Remove ``task`` (subrule **R**); returns its former neighbors."""
        ops = OpCounts()
        neighbors, graph_ops = self.graph.remove_node(task)
        ops.node_ops += 1
        ops.edge_ops += graph_ops - 1
        if task in self.rwsets:
            ops.rw_ops += self.rwsets.remove(task)
        return neighbors, ops

    def refresh_task(self, task: Task, rw_set: Iterable[Any]) -> OpCounts:
        """Subrule **N** for one neighbor: re-register with a new rw-set.

        The caller must have re-run the cautious prefix (so ``task.write_set``
        is current) before calling this.
        """
        writes = task.write_set
        _, removed = self.remove_task(task)
        added = self.add_task(task, rw_set, writes)
        removed += added
        return removed

    # ------------------------------------------------------------------
    # Queries and safety instrumentation
    # ------------------------------------------------------------------
    def sources(self) -> list[Task]:
        return self.graph.sources()

    def protect(self, task: Task) -> None:
        """Mark ``task`` as an executing safe source (Safety check)."""
        self._protected.add(task)

    def unprotect(self, task: Task) -> None:
        self._protected.discard(task)

    def earliest(self) -> Task | None:
        """The minimal task under the total order (None when empty)."""
        best: Task | None = None
        for task in self.graph.nodes():
            if best is None or task.sort_key < best.sort_key:
                best = task
        return best

    def assert_liveness(self, safe: Iterable[Task]) -> None:
        """Liveness: some earliest-*priority* task must be safe (§3.3)."""
        safe_set = set(safe)
        if not self.graph.notEmpty():
            return
        min_priority = min(task.priority for task in self.graph.nodes())
        earliest_priority = [
            task for task in self.graph.nodes() if task.priority == min_priority
        ]
        if not any(task in safe_set for task in earliest_priority):
            raise LivenessViolation(
                f"none of the {len(earliest_priority)} earliest-priority tasks "
                "passed the safe-source test"
            )
