"""The Kinetic Dependence Graph: ⟨G, P, U⟩ (Definition 6).

This module materializes the *explicit* KDG: the task graph ``G``
(:class:`~repro.core.taskgraph.TaskGraph`) plus the rw-set index ``B``, with
the generic ``AddTask`` / ``RemoveTask`` procedures of Figure 6.  The
safe-source test ``P`` and the update rule ``U`` live in the executors; this
class supplies the mechanics they share and, optionally, *checks the Safety
property at runtime*: while a task is marked as an executing safe source,
any new in-edge to it raises :class:`SafetyViolation`.

``B`` comes in two interchangeable representations selected at
construction: the dict-based :class:`~repro.core.rwsets.RWSetIndex`
(default), or — when a :class:`~repro.core.flat.LocationInterner` is
supplied — the flat :class:`~repro.core.flat.FlatRWIndex` over dense
location ids, whose conflict discovery compares plain ints and whose
:meth:`KDG.add_tasks` inserts a whole round's new tasks in one pass.  Both
representations discover the *same* conflict sets and return the same
:class:`OpCounts`, so simulated schedules are identical.

The KDG also tracks its minimum-key task internally (a lazy-deletion heap):
:meth:`earliest` and the liveness check used to re-scan every node, which
made the per-round safe-source plumbing O(n).

Mutators return :class:`OpCounts` so executors can charge graph maintenance
to the cost model.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

from .rwsets import RWSetIndex
from .task import Task
from .taskgraph import TaskGraph
from .tracker import MinTracker


class SafetyViolation(RuntimeError):
    """The update rule created an incoming edge to an executing safe source."""


class LivenessViolation(RuntimeError):
    """No earliest-priority task passed the safe-source test."""


@dataclass
class OpCounts:
    """Structural operations performed by a KDG mutation (for cost charging)."""

    node_ops: int = 0
    edge_ops: int = 0
    rw_ops: int = 0

    def __iadd__(self, other: "OpCounts") -> "OpCounts":
        self.node_ops += other.node_ops
        self.edge_ops += other.edge_ops
        self.rw_ops += other.rw_ops
        return self


class KDG:
    """Explicit KDG state: task graph ``G`` + rw-set index ``B``.

    ``interner=None`` selects the dict engine (``self.rwsets``);  passing a
    :class:`~repro.core.flat.LocationInterner` selects the flat engine
    (``self.flat_index``).  ``G`` is shared: its incremental source tracking
    is already O(|sources|) per round, so only ``B`` and conflict discovery
    change representation.
    """

    def __init__(self, check_safety: bool = False, interner=None):
        self.graph = TaskGraph()
        self.check_safety = check_safety
        self.tracker = MinTracker()
        self.interner = interner
        self._protected: set[Task] = set()
        if interner is None:
            self.rwsets: RWSetIndex | None = RWSetIndex()
            self.flat_index = None
            self.ranks = None
        else:
            from .flat.index import FlatRWIndex
            from .flat.ranks import RankEncoder

            self.rwsets = None
            self.flat_index = FlatRWIndex()
            #: Priority rank encoder for the batched build: int64 rank
            #: compares replace (possibly deeply nested) tuple compares in
            #: the predecessor/successor classification, order-identically.
            self.ranks = RankEncoder()

    def __len__(self) -> int:
        return len(self.graph)

    def not_empty(self) -> bool:
        return self.graph.notEmpty()

    # ------------------------------------------------------------------
    # Figure 6: AddTask / RemoveTask
    # ------------------------------------------------------------------
    def add_task(
        self,
        task: Task,
        rw_set: Iterable[Any],
        writes: frozenset | None = None,
    ) -> OpCounts:
        """Insert ``task`` with ``rw_set``, wiring dependence edges by the
        total order on ``(priority, tid)`` (the paper's ``t`` and ``≺``).

        Two tasks sharing a location depend on each other only if at least
        one *writes* it.  ``writes=None`` treats every location as written
        (the conservative single-set model of the paper's Figure 6).
        """
        ops = self._insert(task, rw_set, writes)
        self.tracker.add(task)
        return ops

    def add_tasks(self, tasks: list[Task]) -> list[OpCounts]:
        """Batched ``AddTask`` for one round's new tasks (subrule **A**).

        Precondition: every task's ``rw_set``/``write_set`` are already
        bound (the executor ran the cautious prefix).  Returns one
        :class:`OpCounts` per task, in order, identical to what sequential
        :meth:`add_task` calls would have returned — each conflict pair is
        charged to its later-inserted endpoint, exactly the task whose
        sequential ``AddTask`` would have found it.
        """
        if self.interner is None:
            out = []
            for task in tasks:
                out.append(self.add_task(task, task.rw_set, task.write_set))
            return out
        return self._flat_add_batch(tasks)

    def remove_task(self, task: Task) -> tuple[list[Task], OpCounts]:
        """Remove ``task`` (subrule **R**); returns its former neighbors."""
        neighbors, ops = self._extract(task)
        self.tracker.remove(task)
        return neighbors, ops

    def refresh_task(self, task: Task, rw_set: Iterable[Any]) -> OpCounts:
        """Subrule **N** for one neighbor: re-register with a new rw-set.

        The caller must have re-run the cautious prefix (so ``task.write_set``
        is current) before calling this.  The min-tracker is left untouched:
        priorities are immutable, so a refresh cannot move the minimum.
        """
        writes = task.write_set
        _, removed = self._extract(task)
        removed += self._insert(task, rw_set, writes)
        return removed

    # ------------------------------------------------------------------
    # Engine-specific insert / extract
    # ------------------------------------------------------------------
    def _insert(
        self, task: Task, rw_set: Iterable[Any], writes: frozenset | None
    ) -> OpCounts:
        ops = OpCounts()
        locations = rw_set if type(rw_set) is tuple else tuple(rw_set)
        task.rw_set = locations
        write_set = frozenset(locations) if writes is None else writes
        task.write_set = write_set
        ops.node_ops += self.graph.add_node(task)
        key = task.sort_key
        preds: list[Task] = []
        succs: list[Task] = []
        if self.interner is None:
            ops.rw_ops += self.rwsets.add(task, locations)
            conflicts: dict[Task, None] = {}
            tasks_at_view = self.rwsets.tasks_at_view
            for loc in locations:
                bucket = tasks_at_view(loc)
                if len(bucket) < 2:  # only this task touches the location
                    continue
                i_write = loc in write_set
                for other in bucket:
                    if other is task or other in conflicts:
                        continue
                    if i_write or loc in other.write_set:
                        conflicts[other] = None
            others: Iterable[Task] = conflicts
        else:
            index = self.flat_index
            id_list, w_list = self.interner.task_lists(task)
            ops.rw_ops += index.add(task, id_list, w_list)
            others = self._flat_conflicts_single(index, task, id_list, w_list)
        for other in others:
            if other.sort_key < key:
                preds.append(other)
            else:
                if self.check_safety and other in self._protected:
                    raise SafetyViolation(
                        f"in-edge added to executing safe source {other!r} "
                        f"by {task!r}"
                    )
                succs.append(other)
        ops.edge_ops += self.graph.wire_edges(task, preds, succs)
        return ops

    def _extract(self, task: Task) -> tuple[list[Task], OpCounts]:
        ops = OpCounts()
        neighbors, graph_ops = self.graph.remove_node(task)
        ops.node_ops += 1
        ops.edge_ops += graph_ops - 1
        if self.interner is None:
            if task in self.rwsets:
                ops.rw_ops += self.rwsets.remove(task)
        elif task in self.flat_index:
            ops.rw_ops += self.flat_index.remove(task)
        return neighbors, ops

    @staticmethod
    def _flat_conflicts_single(index, task, id_list, w_list) -> list[Task]:
        """Conflicting tasks for a just-inserted task (it is last in every
        bucket, so every other member was inserted before it)."""
        conflicts: dict[int, None] = {}
        buckets = index._buckets
        for loc, i_write in zip(id_list, w_list):
            members = buckets[loc]
            if len(members) < 2:  # only this task touches the location
                continue
            if i_write:
                for s in members:
                    conflicts[s] = None
            else:
                for s, wbit in members.items():
                    if wbit:
                        conflicts[s] = None
        if not conflicts:
            return []
        # The task's own slot was swept up with the rest (it writes, or it
        # reads a location it also writes — either way its own buckets list
        # it); drop it without disturbing the discovery order of the others.
        conflicts.pop(index._slot_of[task], None)
        task_of = index._task_of
        return [task_of[s] for s in conflicts]

    def _flat_add_batch(self, tasks: list[Task]) -> list[OpCounts]:
        # Virgin index (nothing registered, no recycled slots): the whole
        # batch can be built in one sort-and-sweep over (loc, slot) pairs.
        # Incremental rounds fall through to insertion-interleaved
        # discovery: each task is inserted, then its conflicts are read off
        # the buckets while it is still the last member everywhere.  Both
        # are exactly sequential ``AddTask`` order, so each pair is charged
        # to its later-inserted endpoint by construction.  (An earlier
        # all-buckets-at-the-end sweep for the incremental case needed an
        # in-batch membership probe per bucket member plus a slot→partners
        # dict-of-dicts, and measured slower than this loop in CPython.)
        index = self.flat_index
        if len(tasks) >= 16 and not index._slot_of and not index._free:
            return self._flat_build_initial(tasks)
        task_lists = self.interner.task_lists
        graph = self.graph
        add_node = graph.add_node
        wire_edges = graph.wire_edges
        tracker_add = self.tracker.add
        index_add = index.add
        conflicts_single = self._flat_conflicts_single
        check_safety = self.check_safety
        protected = self._protected
        out: list[OpCounts] = []
        for task in tasks:
            id_list, w_list = task_lists(task)
            add_node(task)
            tracker_add(task)
            n_rw = index_add(task, id_list, w_list)
            others = conflicts_single(index, task, id_list, w_list)
            edge_ops = 0
            if others:
                key = task.sort_key
                preds: list[Task] = []
                succs: list[Task] = []
                for other in others:
                    if other.sort_key < key:
                        preds.append(other)
                    else:
                        if check_safety and other in protected:
                            raise SafetyViolation(
                                f"in-edge added to executing safe source "
                                f"{other!r} by {task!r}"
                            )
                        succs.append(other)
                edge_ops = wire_edges(task, preds, succs)
            out.append(OpCounts(node_ops=1, edge_ops=edge_ops, rw_ops=n_rw))
        return out

    def _flat_build_initial(self, tasks: list[Task]) -> list[OpCounts]:
        """One-shot batched build of an empty index (General-BuildTaskGraph).

        Slots are assigned in batch order, every bucket is filled in one
        pass, and conflict pairs are discovered by a single stable sort of
        all (location, slot) incidences: entries are emitted slot-major, so
        within each location group the stable sort leaves members in
        insertion order, and each pair ``(earlier, later)`` is attributed
        to its *later* slot — the task whose sequential ``AddTask`` would
        have found it.  Re-sorting pairs by (later slot, rw-set position,
        bucket position) then reproduces the sequential loop's discovery
        order exactly, so wired edge order, op counts, and the Safety check
        are bit-identical to one-at-a-time insertion.
        """
        import numpy as np
        from itertools import chain

        index = self.flat_index
        task_lists = self.interner.task_lists
        n = len(tasks)
        caches = [task_lists(task) for task in tasks]
        id_lists = [cache[0] for cache in caches]
        # Rank-encode the batch's priorities so the classification loop
        # below compares (int64 rank, tid) pairs instead of arbitrary
        # (often nested-tuple) sort keys.  Order-identical by the
        # encoder's contract; any rejected priority falls back to the
        # plain sort keys for the whole batch.
        ranks = self.ranks
        ranks.prime(tasks)
        keys: list[tuple] = []
        for task in tasks:
            kid = task.rank_cache[1]
            if kid is None:
                keys = [t.sort_key for t in tasks]
                break
            keys.append((ranks.rank(kid), task.tid))
        slot_of = {task: slot for slot, task in enumerate(tasks)}
        if len(slot_of) != n:
            raise ValueError("duplicate task in initial batch")
        index._slot_of = slot_of
        index._task_of = list(tasks)
        index._ids_of = list(id_lists)
        lens = [len(ids) for ids in id_lists]
        total = sum(lens)
        partners: dict[int, dict[int, None]] = {}
        if total:
            lens_arr = np.fromiter(lens, dtype=np.intp, count=n)
            loc = np.fromiter(
                chain.from_iterable(id_lists), dtype=np.intp, count=total
            )
            wbit = np.fromiter(
                chain.from_iterable(cache[1] for cache in caches),
                dtype=np.bool_,
                count=total,
            )
            slot_arr = np.repeat(np.arange(n, dtype=np.intp), lens_arr)
            starts = np.cumsum(lens_arr) - lens_arr
            pos = np.arange(total, dtype=np.intp) - np.repeat(starts, lens_arr)
            order = np.argsort(loc, kind="stable")
            sloc = loc[order]
            # Fill the buckets (grown once to the max id) in slot order.
            buckets = index._buckets
            for _ in range(int(sloc[-1]) + 1 - len(buckets)):
                buckets.append({})
            for slot, cache in enumerate(caches):
                for loc_id, w in zip(cache[0], cache[1]):
                    buckets[loc_id][slot] = w
            cut = np.flatnonzero(sloc[1:] != sloc[:-1]) + 1
            bounds = np.concatenate(
                (np.zeros(1, dtype=np.intp), cut, np.full(1, total, dtype=np.intp))
            )
            sizes = np.diff(bounds)
            # reduceat on bool yields int64 *counts*, so compare > 0 (a raw
            # bitwise & with the size predicate would drop even counts).
            writers = np.add.reduceat(wbit[order], bounds[:-1])
            groups = np.flatnonzero((sizes >= 2) & (writers > 0))
            if len(groups):
                sslot = slot_arr[order]
                swbit = wbit[order]
                spos = pos[order]
                pairs: list[tuple[int, int, int, int]] = []
                record = pairs.append
                for g in groups.tolist():
                    lo = int(bounds[g])
                    hi = int(bounds[g + 1])
                    members = sslot[lo:hi].tolist()
                    wflags = swbit[lo:hi].tolist()
                    positions = spos[lo:hi].tolist()
                    for j in range(1, hi - lo):
                        later = members[j]
                        p = positions[j]
                        if wflags[j]:
                            for q in range(j):
                                record((later, p, q, members[q]))
                        else:
                            for q in range(j):
                                if wflags[q]:
                                    record((later, p, q, members[q]))
                pairs.sort()
                for later, _p, _q, earlier in pairs:
                    found = partners.get(later)
                    if found is None:
                        partners[later] = {earlier: None}
                    else:
                        found[earlier] = None  # dup keeps first-seen order
        graph = self.graph
        add_node = graph.add_node
        wire_edges = graph.wire_edges
        tracker_add = self.tracker.add
        check_safety = self.check_safety
        protected = self._protected
        task_of = index._task_of
        out: list[OpCounts] = []
        for slot, task in enumerate(tasks):
            add_node(task)
            tracker_add(task)
            edge_ops = 0
            found = partners.get(slot)
            if found:
                key = keys[slot]
                preds: list[Task] = []
                succs: list[Task] = []
                for earlier in found:
                    other = task_of[earlier]
                    if keys[earlier] < key:
                        preds.append(other)
                    else:
                        if check_safety and other in protected:
                            raise SafetyViolation(
                                f"in-edge added to executing safe source "
                                f"{other!r} by {task!r}"
                            )
                        succs.append(other)
                edge_ops = wire_edges(task, preds, succs)
            out.append(
                OpCounts(node_ops=1, edge_ops=edge_ops, rw_ops=1 + lens[slot])
            )
        return out

    # ------------------------------------------------------------------
    # Queries and safety instrumentation
    # ------------------------------------------------------------------
    def sources(self) -> list[Task]:
        return self.graph.sources()

    def protect(self, task: Task) -> None:
        """Mark ``task`` as an executing safe source (Safety check)."""
        self._protected.add(task)

    def unprotect(self, task: Task) -> None:
        self._protected.discard(task)

    def earliest(self) -> Task | None:
        """The minimal task under the total order (None when empty).

        O(log n) amortized via the internal min-tracker — this used to scan
        every node.
        """
        return self.tracker.min_task()

    def assert_liveness(self, safe: Iterable[Task]) -> None:
        """Liveness: some earliest-*priority* task must be safe (§3.3).

        The success path costs one tracker peek plus a scan of ``safe``;
        only the failure path (about to raise) scans the graph, to count the
        earliest-priority tasks for the error message.
        """
        if not self.graph.notEmpty():
            return
        min_task = self.tracker.min_task()
        if min_task is not None:
            min_priority = min_task.priority
        else:  # graph populated behind the KDG's back (diagnostic use)
            min_priority = min(task.priority for task in self.graph.nodes())
        if any(task.priority == min_priority for task in safe):
            return
        earliest_priority = sum(
            1 for task in self.graph.nodes() if task.priority == min_priority
        )
        raise LivenessViolation(
            f"none of the {earliest_priority} earliest-priority tasks "
            "passed the safe-source test"
        )
