"""``for_each_ordered``: the ordered set iterator (§3.1, Figure 7).

The public entry point of the programming model.  The caller supplies the
initial work items, the ``orderedby`` priority function, the rw-set visitor
prefix, the loop body, declared algorithm properties and (for
unstable-source algorithms) a safe-source test; the runtime builds the KDG
and executes the loop on the requested simulated machine.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from .algorithm import OrderedAlgorithm, SafeSourceTest
from .context import BodyContext, RWSetContext
from .properties import AlgorithmProperties


def for_each_ordered(
    initial_items: Sequence[Any],
    priority: Callable[[Any], Any],
    visit_rw_sets: Callable[[Any, RWSetContext], None],
    apply_update: Callable[[Any, BodyContext], None],
    properties: AlgorithmProperties | None = None,
    safe_source_test: SafeSourceTest | None = None,
    safe_test_work: float = 0.0,
    name: str = "ordered-loop",
    executor: str = "auto",
    machine=None,
    **executor_options: Any,
):
    """Run an ordered loop; returns a :class:`~repro.runtime.LoopResult`.

    ``executor`` is ``"auto"`` (property-driven selection, §3.6) or one of
    ``"serial"``, ``"kdg-rna"``, ``"ikdg"``, ``"level-by-level"``,
    ``"speculation"``.  Remaining keyword arguments are passed through to
    the chosen executor (e.g. ``checked=True`` for rw-set enforcement,
    ``window_policy=...`` for IKDG).
    """
    from ..runtime import EXECUTORS, choose_executor  # runtime imports core

    algorithm = OrderedAlgorithm(
        name=name,
        initial_items=initial_items,
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=properties if properties is not None else AlgorithmProperties(),
        safe_source_test=safe_source_test,
        safe_test_work=safe_test_work,
    )
    if executor == "auto":
        executor = choose_executor(algorithm.properties)
    try:
        run = EXECUTORS[executor]
    except KeyError:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {sorted(EXECUTORS)}"
        ) from None
    return run(algorithm, machine=machine, **executor_options)
