"""Minimum-priority tracking over live tasks (lazy-deletion heap).

Lives in ``core`` so the :class:`~repro.core.kdg.KDG` can maintain the
minimum internally (its ``earliest`` / ``assert_liveness`` queries used to
re-scan every node); executors import it from here (or via the historical
``repro.runtime.base`` re-export) to supply ``SourceView.min_priority``.
"""

from __future__ import annotations

import heapq
from typing import Any

from .task import Task


class MinTracker:
    """Lazy-deletion heap tracking the minimum key among live tasks.

    ``add``/``remove`` are O(log n) amortized; stale heap entries are
    discarded when they surface at the top.  Keys are ``sort_key`` with the
    tid tie-break, so the minimum is unique.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[Any, int]] = []
        self._live: dict[int, Task] = {}
        self._seq = 0

    def add(self, task: Task) -> None:
        self._live[task.tid] = task
        heapq.heappush(self._heap, (task.sort_key, task.tid))

    def remove(self, task: Task) -> None:
        self._live.pop(task.tid, None)

    def min_task(self) -> Task | None:
        while self._heap:
            _, tid = self._heap[0]
            task = self._live.get(tid)
            if task is None:
                heapq.heappop(self._heap)
            else:
                return task
        return None

    def min_priority(self) -> Any:
        task = self.min_task()
        return None if task is None else task.priority

    def __len__(self) -> int:
        return len(self._live)
