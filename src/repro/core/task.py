"""Tasks and priority ordering for the ordered programming model.

A task is one iteration of the ordered foreach loop (§3.1).  Its priority is
the value of the ``orderedby`` clause; ties are broken by a deterministic
creation id, which implements the paper's arbitrary total order ``≺``.
Applications whose final state depends on the order of same-priority
overlapping tasks must fold their own tie-breaker into the priority itself
(all bundled apps do), so every executor serializes identically.
"""

from __future__ import annotations

import operator
from typing import Any


class Task:
    """One ordered-loop iteration: a work item plus its priority."""

    __slots__ = (
        "item",
        "priority",
        "tid",
        "sort_key",
        "rw_set",
        "write_set",
        "rw_valid",
        "flat_cache",
        "rank_cache",
    )

    def __init__(self, item: Any, priority: Any, tid: int):
        self.item = item
        self.priority = priority
        self.tid = tid
        #: The total-order key ``(priority, tid)``, computed once: priority
        #: and tid are immutable after construction, and ``key()`` is the
        #: single hottest call in every executor's inner loop.
        self.sort_key: tuple[Any, int] = (priority, tid)
        #: Declared rw-set (tuple of hashable locations); filled by executors.
        self.rw_set: tuple[Any, ...] = ()
        #: The subset of ``rw_set`` declared for writing.
        self.write_set: frozenset = frozenset()
        #: Whether ``rw_set``/``write_set`` hold a cached visitor result
        #: (set by :meth:`OrderedAlgorithm.compute_rw_set`, cleared by its
        #: ``invalidate_rw_set``).  Only trusted for structure-based
        #: algorithms, whose rw-sets cannot change under execution.
        self.rw_valid: bool = False
        #: Flat-engine scratch: ``(interner, rw_set, loc_ids, write_bits,
        #: writer_ids, reader_ids)`` — dense-id lists cached by the
        #: interner; keyed by the identity of the first two so it can never
        #: leak across runs or refreshes.
        self.flat_cache = None
        #: Rank-encoder scratch: ``(encoder, key_id)`` memoizing this
        #: task's priority key in one :class:`~repro.core.flat.ranks.
        #: RankEncoder` (``key_id`` is None when the priority was
        #: rejected).  Same identity-keyed idiom as ``flat_cache``:
        #: priorities are immutable, so only the encoder can go stale.
        self.rank_cache = None

    def writes(self, location: Any) -> bool:
        return location in self.write_set

    def key(self) -> tuple[Any, int]:
        """Total order: priority first, creation id as tie-breaker (``≺``)."""
        return self.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task(item={self.item!r}, priority={self.priority!r}, tid={self.tid})"


#: C-level key extractor for sorts/heaps over tasks — avoids a Python
#: method call per comparison element.
SORT_KEY = operator.attrgetter("sort_key")


class TaskFactory:
    """Creates tasks with monotonically increasing creation ids."""

    def __init__(self, priority_fn):
        self._priority_fn = priority_fn
        self._next_tid = 0

    def make(self, item: Any) -> Task:
        task = Task(item, self._priority_fn(item), self._next_tid)
        self._next_tid += 1
        return task

    def make_all(self, items) -> list[Task]:
        return [self.make(item) for item in items]

    @property
    def created(self) -> int:
        return self._next_tid
