"""Algorithm properties (§3.2) that drive KDG executor optimization.

Programmers declare these flags on the ordered loop (the paper's
``Runtime::is_stable_source`` etc.); the runtime uses them to drop subrules,
phases and barriers (§3.6).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AlgorithmProperties:
    """Declared properties of an ordered algorithm.

    Attributes mirror the paper's Definitions 1-4 plus the §3.6 hints:

    * ``stable_source`` — every source of the KDG is a safe source
      (Definition 1); removes the safe-source test and its phase.
    * ``monotonic`` — child priority ≥ parent priority (Definition 2);
      level-by-level windowing is only sound for monotonic algorithms.
    * ``non_increasing_rw_sets`` — execution never adds locations to other
      tasks' rw-sets (Definition 3); removes subrule **N**.
    * ``structure_based_rw_sets`` — rw-sets are data-independent or inherited
      from the parent (Definition 4); removes the execute/update barrier,
      enabling the asynchronous executor.
    * ``no_new_tasks`` — tasks never create tasks ("No-Adds", §3.6.2);
      removes subrule **A**.
    * ``local_safe_source_test`` — the safe-source test reads only state in
      the task's own rw-set (§3.6.3); lets the test fuse with execution.
    """

    stable_source: bool = False
    monotonic: bool = False
    non_increasing_rw_sets: bool = False
    structure_based_rw_sets: bool = False
    no_new_tasks: bool = False
    local_safe_source_test: bool = False

    def __post_init__(self) -> None:
        if self.structure_based_rw_sets and not self.non_increasing_rw_sets:
            # Definition 4 is a strengthening of Definition 3.
            object.__setattr__(self, "non_increasing_rw_sets", True)

    @property
    def conventional_task_graph(self) -> bool:
        """No-adds + non-increasing: the KDG degenerates to a classic DAG."""
        return self.no_new_tasks and self.non_increasing_rw_sets

    @property
    def supports_asynchronous(self) -> bool:
        """Stable-source + structure-based (or a local safe test) runs with
        no rounds and no barriers (§3.6.3)."""
        if not self.structure_based_rw_sets:
            return False
        return self.stable_source or self.local_safe_source_test
