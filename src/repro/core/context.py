"""Execution contexts: rw-set declaration and the cautious loop body.

The programming model splits each loop body into a read-only prefix that
declares the rw-set (``visitRWsets`` in Figure 7) and a suffix that performs
the update.  :class:`RWSetContext` records the prefix's declarations;
:class:`BodyContext` gives the suffix a worklist handle, a work meter for
the cost model, and — in checked mode — enforcement that every shared
access was declared (the paper's cautiousness requirement made executable).
"""

from __future__ import annotations

from typing import Any


class RWSetViolation(RuntimeError):
    """A task touched a shared location outside its declared rw-set.

    Beyond the message, the exception carries structured context so
    sanitizer failures are actionable: the offending ``location``, the
    ``declared`` rw-set it was missing from, and — when the raising layer
    knows them — the ``task``, its ``priority`` and the executor ``phase``
    the access happened in.  Fields are ``None`` when unavailable.
    """

    def __init__(
        self,
        message: str,
        *,
        location: Any = None,
        declared: Any = None,
        task: Any = None,
        priority: Any = None,
        phase: str | None = None,
    ):
        super().__init__(message)
        self.location = location
        self.declared = tuple(declared) if declared is not None else None
        self.task = task
        self.priority = priority
        self.phase = phase


class RWSetContext:
    """Collects the locations a task declares it will read or write.

    Read and write intents are tracked separately (the paper's
    ``Runtime::read`` / ``Runtime::write``): two tasks conflict on a
    location only if at least one of them *writes* it, which is what lets
    e.g. many Kruskal tasks share a large component read-only.
    """

    __slots__ = ("_locations", "_seen", "_writes")

    def __init__(self) -> None:
        self._locations: list[Any] = []
        self._seen: set[Any] = set()
        self._writes: set[Any] = set()

    def read(self, location: Any) -> None:
        """Declare intent to read ``location`` (any hashable id)."""
        if location not in self._seen:
            self._seen.add(location)
            self._locations.append(location)

    def write(self, location: Any) -> None:
        """Declare intent to write ``location`` (upgrades a prior read)."""
        self.read(location)
        self._writes.add(location)

    @property
    def rw_set(self) -> tuple[Any, ...]:
        """All declared locations, in first-declaration order."""
        return tuple(self._locations)

    @property
    def write_set(self) -> frozenset:
        """The subset of locations declared for writing."""
        return frozenset(self._writes)


class BodyContext:
    """Handle passed to the loop body (the paper's worklist handle ``W&``)."""

    __slots__ = ("_pushed", "_work", "_declared", "checked")

    def __init__(self, declared: tuple[Any, ...] = (), checked: bool = False):
        self._pushed: list[Any] = []
        self._work = 0.0
        self._declared = frozenset(declared) if checked else frozenset()
        self.checked = checked

    def push(self, item: Any) -> None:
        """Create a new task for ``item`` (the ordered loop's ``wlHandle.push``)."""
        self._pushed.append(item)

    def work(self, ops: float) -> None:
        """Meter ``ops`` units of application work for the cost model."""
        if ops < 0:
            raise ValueError("work must be non-negative")
        self._work += ops

    def access(self, location: Any) -> None:
        """Touch a shared location; in checked mode it must be declared."""
        if self.checked and location not in self._declared:
            raise RWSetViolation(
                f"access to undeclared location {location!r}; declared set has "
                f"{len(self._declared)} locations",
                location=location,
                declared=self._declared,
            )

    @property
    def pushed(self) -> list[Any]:
        return self._pushed

    @property
    def work_done(self) -> float:
        return self._work

    @property
    def accessed(self) -> tuple[Any, ...]:
        """Locations actually touched; only recorded by the sanitizer."""
        return ()


class RecordingBodyContext(BodyContext):
    """A :class:`BodyContext` that records every ``access`` for diffing.

    The access sanitizer (:class:`repro.analysis.AccessSanitizer`) hands this
    to the loop body instead of the plain context, then diffs the recorded
    accesses against the task's declared rw-set at commit time.  Unlike
    ``checked`` mode it never raises mid-body — the diff at the commit point
    knows the task and executor phase, so the eventual
    :class:`RWSetViolation` is fully attributed.  Recording never changes
    pushes, metered work, or scheduling.
    """

    __slots__ = ("_accessed",)

    def __init__(self, declared: tuple[Any, ...] = (), checked: bool = False):
        super().__init__(declared=declared, checked=checked)
        self._accessed: list[Any] = []

    def access(self, location: Any) -> None:
        self._accessed.append(location)
        super().access(location)

    @property
    def accessed(self) -> tuple[Any, ...]:
        return tuple(self._accessed)
