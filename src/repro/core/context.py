"""Execution contexts: rw-set declaration and the cautious loop body.

The programming model splits each loop body into a read-only prefix that
declares the rw-set (``visitRWsets`` in Figure 7) and a suffix that performs
the update.  :class:`RWSetContext` records the prefix's declarations;
:class:`BodyContext` gives the suffix a worklist handle, a work meter for
the cost model, and — in checked mode — enforcement that every shared
access was declared (the paper's cautiousness requirement made executable).
"""

from __future__ import annotations

from typing import Any


class RWSetViolation(RuntimeError):
    """A task touched a shared location outside its declared rw-set.

    Beyond the message, the exception carries structured context so
    sanitizer failures are actionable: the offending ``location``, the
    ``declared`` rw-set it was missing from, and — when the raising layer
    knows them — the ``task``, its ``priority`` and the executor ``phase``
    the access happened in.  Fields are ``None`` when unavailable.
    """

    def __init__(
        self,
        message: str,
        *,
        location: Any = None,
        declared: Any = None,
        task: Any = None,
        priority: Any = None,
        phase: str | None = None,
    ):
        super().__init__(message)
        self.location = location
        self.declared = tuple(declared) if declared is not None else None
        self.task = task
        self.priority = priority
        self.phase = phase


class RWSetContext:
    """Collects the locations a task declares it will read or write.

    Read and write intents are tracked separately (the paper's
    ``Runtime::read`` / ``Runtime::write``): two tasks conflict on a
    location only if at least one of them *writes* it, which is what lets
    e.g. many Kruskal tasks share a large component read-only.
    """

    __slots__ = ("_locations", "_seen", "_writes")

    def __init__(self) -> None:
        self._locations: list[Any] = []
        self._seen: set[Any] = set()
        self._writes: set[Any] = set()

    def read(self, location: Any) -> None:
        """Declare intent to read ``location`` (any hashable id)."""
        if location not in self._seen:
            self._seen.add(location)
            self._locations.append(location)

    def write(self, location: Any) -> None:
        """Declare intent to write ``location`` (upgrades a prior read)."""
        self.read(location)
        self._writes.add(location)

    @property
    def rw_set(self) -> tuple[Any, ...]:
        """All declared locations, in first-declaration order."""
        return tuple(self._locations)

    @property
    def write_set(self) -> frozenset:
        """The subset of locations declared for writing."""
        return frozenset(self._writes)


class InterningRWSetContext:
    """Flat-engine visitor context: record declarations, intern in bulk.

    Drop-in for :class:`RWSetContext` under ``engine="flat"`` — same
    ``read``/``write`` protocol, same bound ``rw_set`` tuple and
    ``write_set`` — built for visitor throughput: ``read``/``write`` are
    two list appends (the raw declaration stream), and *all* interning,
    dedup, and split-list construction happens once per task in
    :meth:`finalize`'s tight loop, where the interner probe, the tables,
    and every sink are locals instead of per-call attribute chases.  Each
    location is hashed exactly once (the interner's ``dict.setdefault`` is
    also the dedup probe); per-task bookkeeping runs on dense int ids,
    which hash to themselves.
    """

    __slots__ = ("_interner", "_raw", "_flags")

    def __init__(self, interner) -> None:
        self._interner = interner
        self._raw: list[Any] = []
        self._flags: list[bool] = []

    def read(self, location: Any) -> None:
        """Declare intent to read ``location`` (any hashable id)."""
        self._raw.append(location)
        self._flags.append(False)

    def write(self, location: Any) -> None:
        """Declare intent to write ``location`` (upgrades a prior read)."""
        self._raw.append(location)
        self._flags.append(True)

    def finalize(self, task) -> None:
        """Bind ``rw_set``/``write_set`` and the flat-cache entry to ``task``.

        Produces bit-identical bindings to the dict-engine visitor: the same
        first-declaration-order ``rw_set`` tuple, an equal ``write_set``,
        and the same cache lists a post-hoc interning pass would build.
        """
        interner = self._interner
        known = interner._locations
        known_append = known.append
        intern = interner._ids.setdefault
        locations: list[Any] = []
        ids: list[int] = []
        w_list: list[bool] = []
        wids: list[int] = []
        rids: list[int] = []
        w_locs: list[Any] = []
        seen: set[int] = set()
        write_ids: set[int] = set()
        loc_append = locations.append
        id_append = ids.append
        wl_append = w_list.append
        seen_add = seen.add
        upgraded = False
        for loc, w in zip(self._raw, self._flags):
            nxt = len(known)
            dense = intern(loc, nxt)
            if dense == nxt:
                known_append(loc)
            if dense not in seen:
                seen_add(dense)
                loc_append(loc)
                id_append(dense)
                wl_append(w)
                if w:
                    wids.append(dense)
                    write_ids.add(dense)
                    w_locs.append(loc)
                else:
                    rids.append(dense)
            elif w and dense not in write_ids:
                # Read upgraded to write: refilter the split views below.
                write_ids.add(dense)
                w_locs.append(loc)
                upgraded = True
        if upgraded:
            w_list = [i in write_ids for i in ids]
            wids = [i for i in ids if i in write_ids]
            rids = [i for i in ids if i not in write_ids]
        rw = tuple(locations)
        task.rw_set = rw
        task.write_set = frozenset(w_locs)
        task.rw_valid = True
        task.flat_cache = (interner, rw, ids, w_list, wids, rids)

    @property
    def rw_set(self) -> tuple[Any, ...]:
        """All declared locations, in first-declaration order."""
        seen: set[Any] = set()
        out: list[Any] = []
        for loc in self._raw:
            if loc not in seen:
                seen.add(loc)
                out.append(loc)
        return tuple(out)

    @property
    def write_set(self) -> frozenset:
        """The subset of locations declared for writing."""
        return frozenset(
            loc for loc, w in zip(self._raw, self._flags) if w
        )


class BodyContext:
    """Handle passed to the loop body (the paper's worklist handle ``W&``)."""

    __slots__ = ("_pushed", "_work", "_declared", "checked")

    def __init__(self, declared: tuple[Any, ...] = (), checked: bool = False):
        self._pushed: list[Any] = []
        self._work = 0.0
        self._declared = frozenset(declared) if checked else frozenset()
        self.checked = checked

    def push(self, item: Any) -> None:
        """Create a new task for ``item`` (the ordered loop's ``wlHandle.push``)."""
        self._pushed.append(item)

    def work(self, ops: float) -> None:
        """Meter ``ops`` units of application work for the cost model."""
        if ops < 0:
            raise ValueError("work must be non-negative")
        self._work += ops

    def access(self, location: Any) -> None:
        """Touch a shared location; in checked mode it must be declared."""
        if self.checked and location not in self._declared:
            raise RWSetViolation(
                f"access to undeclared location {location!r}; declared set has "
                f"{len(self._declared)} locations",
                location=location,
                declared=self._declared,
            )

    @property
    def pushed(self) -> list[Any]:
        return self._pushed

    @property
    def work_done(self) -> float:
        return self._work

    @property
    def accessed(self) -> tuple[Any, ...]:
        """Locations actually touched; only recorded by the sanitizer."""
        return ()


class RecordingBodyContext(BodyContext):
    """A :class:`BodyContext` that records every ``access`` for diffing.

    The access sanitizer (:class:`repro.analysis.AccessSanitizer`) hands this
    to the loop body instead of the plain context, then diffs the recorded
    accesses against the task's declared rw-set at commit time.  Unlike
    ``checked`` mode it never raises mid-body — the diff at the commit point
    knows the task and executor phase, so the eventual
    :class:`RWSetViolation` is fully attributed.  Recording never changes
    pushes, metered work, or scheduling.
    """

    __slots__ = ("_accessed",)

    def __init__(self, declared: tuple[Any, ...] = (), checked: bool = False):
        super().__init__(declared=declared, checked=checked)
        self._accessed: list[Any] = []

    def access(self, location: Any) -> None:
        self._accessed.append(location)
        super().access(location)

    @property
    def accessed(self) -> tuple[Any, ...]:
        return tuple(self._accessed)
