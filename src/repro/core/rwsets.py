"""The bipartite task ↔ location graph ``B`` of the explicit KDG (§3.4).

``B`` associates every pending task with the abstract locations in its
rw-set; the tasks sharing a location are exactly the candidates for
dependence edges in ``G``.  Location ids are arbitrary hashables chosen by
the application (e.g. ``("vertex", 17)``).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from .task import Task


class RWSetIndex:
    """Bipartite graph between pending tasks and abstract locations."""

    def __init__(self) -> None:
        self._tasks_at: dict[Any, dict[Task, None]] = {}
        self._locs_of: dict[Task, tuple[Any, ...]] = {}

    def __len__(self) -> int:
        return len(self._locs_of)

    def __contains__(self, task: Task) -> bool:
        return task in self._locs_of

    def add(self, task: Task, locations: Iterable[Any]) -> int:
        """Register ``task`` with its rw-set; returns edge ops performed."""
        if task in self._locs_of:
            raise ValueError(f"task already registered: {task!r}")
        # Callers overwhelmingly pass the task's already-tupled rw-set;
        # re-tupling it was measurable churn on the AddTask hot path.
        locs = locations if type(locations) is tuple else tuple(locations)
        self._locs_of[task] = locs
        tasks_at = self._tasks_at
        for loc in locs:
            bucket = tasks_at.get(loc)
            if bucket is None:
                tasks_at[loc] = {task: None}
            else:
                bucket[task] = None
        return 1 + len(locs)

    def remove(self, task: Task) -> int:
        """Unregister ``task``; returns edge ops performed."""
        locs = self._locs_of.pop(task)
        tasks_at = self._tasks_at
        for loc in locs:
            bucket = tasks_at[loc]
            del bucket[task]
            if not bucket:
                del tasks_at[loc]
        return 1 + len(locs)

    def rw_set(self, task: Task) -> tuple[Any, ...]:
        return self._locs_of[task]

    def tasks_at(self, location: Any) -> list[Task]:
        """Pending tasks whose rw-set contains ``location``."""
        return list(self._tasks_at.get(location, ()))

    def tasks_at_view(self, location: Any):
        """Zero-copy view of the tasks at ``location`` (insertion-ordered).

        Returns the internal bucket mapping (or an empty tuple); callers
        must treat it as read-only and not hold it across mutations.  The
        conflict scan in ``KDG.add_task`` runs once per location per task —
        the list copy :meth:`tasks_at` makes was pure allocation churn.
        """
        return self._tasks_at.get(location, ())

    def tasks_sharing(self, locations: Iterable[Any]) -> list[Task]:
        """Distinct tasks sharing any of ``locations`` (deterministic order)."""
        # Single-location rw-sets dominate the pointer-chasing apps (tree
        # accumulation, BFS); with one bucket there is nothing to
        # deduplicate, so skip the seen-dict entirely.
        if type(locations) is tuple and len(locations) == 1:
            return list(self._tasks_at.get(locations[0], ()))
        seen: dict[Task, None] = {}
        for loc in locations:
            for task in self._tasks_at.get(loc, ()):
                seen[task] = None
        return list(seen)
