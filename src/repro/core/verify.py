"""Empirical verification of declared algorithm properties.

The paper notes that "compiler analysis of the application code can
determine some of these algorithmic properties" (§3.6); lacking a compiler,
this module *tests* the declarations dynamically: it runs a bounded prefix
of the algorithm serially, observing task creation and rw-set evolution,
and reports which declared properties the observed execution contradicts.

This is a falsifier, not a prover — a clean report means the properties
held on the sampled prefix, not in general.  It is cheap enough to run in
CI against every application (see ``tests/test_core_verify.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..galois.priorityqueue import BinaryHeap
from .algorithm import OrderedAlgorithm, SourceView
from .properties import AlgorithmProperties
from .task import Task


@dataclass
class PropertyReport:
    """Observed violations of each declared property (empty = consistent)."""

    monotonic: list[str] = field(default_factory=list)
    structure_based_rw_sets: list[str] = field(default_factory=list)
    non_increasing_rw_sets: list[str] = field(default_factory=list)
    no_new_tasks: list[str] = field(default_factory=list)
    stable_source: list[str] = field(default_factory=list)
    local_safe_source_test: list[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not (
            self.monotonic
            or self.structure_based_rw_sets
            or self.non_increasing_rw_sets
            or self.no_new_tasks
            or self.stable_source
            or self.local_safe_source_test
        )

    def violations(self) -> dict[str, list[str]]:
        return {
            name: msgs
            for name, msgs in vars(self).items()
            if msgs
        }

    def to_json(self) -> dict:
        """The shared findings schema used by ``repro lint --dynamic`` and
        the oracle CLI: each observed contradiction becomes one finding
        whose rule id is the property name under a ``dynamic-`` prefix."""
        return {
            "schema": "repro-findings/v1",
            "consistent": self.consistent,
            "findings": [
                {"rule": f"dynamic-{name.replace('_', '-')}", "message": message}
                for name, messages in self.violations().items()
                for message in messages
            ],
        }


def verify_properties(
    algorithm: OrderedAlgorithm,
    max_tasks: int = 500,
    properties: AlgorithmProperties | None = None,
) -> PropertyReport:
    """Execute up to ``max_tasks`` tasks serially, checking declarations.

    Mutates the algorithm's application state (run it on a throwaway state).
    By default only declared properties are checked; pass ``properties`` to
    override which flags are probed — ``repro infer --dynamic`` uses this to
    cross-validate statically ``unknown`` verdicts on flags the app never
    declared.
    """
    props = properties if properties is not None else algorithm.properties
    report = PropertyReport()
    factory = algorithm.task_factory()
    initial = factory.make_all(algorithm.initial_items)
    heap = BinaryHeap(Task.key, initial)
    pending: dict[int, Task] = {t.tid: t for t in initial}

    def fresh_rw(t: Task) -> set:
        # The falsifier must observe what the visitor reports *now*; the
        # runtime memoizes rw-sets for declared structure-based algorithms,
        # which would mask exactly the violations we are probing for.
        algorithm.invalidate_rw_set(t)
        return set(algorithm.compute_rw_set(t))

    # Definition 4, clause (i): a task whose rw-set is not covered by its
    # parent's must have a *state-independent* rw-set — record it at
    # creation and re-check at execution time.
    recorded_rw: dict[int, set] = {}
    if props.structure_based_rw_sets:
        for task in initial:
            recorded_rw[task.tid] = fresh_rw(task)

    # stable_source (Definition 1): a committed task must never turn out to
    # have been unsafe — i.e. no later-created task may both precede it and
    # conflict with it.  Keep a bounded history of executed tasks to check
    # each pushed child against.
    history: list[tuple[object, object, set]] = []

    executed = 0
    while heap and executed < max_tasks:
        task = heap.pop()
        del pending[task.tid]
        parent_rw = fresh_rw(task)

        # local_safe_source_test (§3.6.3): the test's answer for a task must
        # not depend on the global SourceView.  Probe the latest pending
        # task (the one most likely to consult min_priority/sources) with
        # the real view versus a view reduced to the task itself.
        if (
            props.local_safe_source_test
            and algorithm.safe_source_test is not None
            and pending
            and len(pending) <= 64
        ):
            cand = max(pending.values(), key=Task.key)
            real_view = SourceView(list(pending.values()), task.priority)
            task_view = SourceView([cand], cand.priority)
            try:
                real = bool(algorithm.safe_source_test(cand, real_view))
                local = bool(algorithm.safe_source_test(cand, task_view))
            except Exception as exc:  # noqa: BLE001 - any crash is evidence
                report.local_safe_source_test.append(
                    f"safe_source_test raised {exc!r} on a task-local view: "
                    "it requires global source information"
                )
            else:
                if real != local:
                    report.local_safe_source_test.append(
                        f"safe_source_test({cand.item!r}) answers {real} with "
                        f"the global view but {local} with a task-local view"
                    )
        if props.structure_based_rw_sets and task.tid in recorded_rw:
            if parent_rw != recorded_rw.pop(task.tid):
                report.structure_based_rw_sets.append(
                    f"rw-set of {task.item!r} changed between creation and "
                    "execution (neither clause of Definition 4 holds)"
                )

        # non-increasing: snapshot other pending tasks' rw-sets before...
        watch: dict[int, set] = {}
        if props.non_increasing_rw_sets and len(pending) <= 64:
            for other in pending.values():
                watch[other.tid] = fresh_rw(other)

        ctx = algorithm.execute_body(task)
        executed += 1

        if ctx.pushed and props.no_new_tasks:
            report.no_new_tasks.append(
                f"task {task.item!r} created {len(ctx.pushed)} new task(s)"
            )
        for item in ctx.pushed:
            child = factory.make(item)
            heap.push(child)
            pending[child.tid] = child
            if props.monotonic and child.priority < task.priority:
                report.monotonic.append(
                    f"child {item!r} (priority {child.priority!r}) precedes "
                    f"parent {task.item!r} ({task.priority!r})"
                )
            if props.stable_source:
                child_rw = fresh_rw(child)
                for executed_item, executed_prio, executed_rw in history:
                    if child.priority < executed_prio and child_rw & executed_rw:
                        report.stable_source.append(
                            f"{executed_item!r} was executed as a source, but "
                            f"later-created {item!r} precedes and conflicts "
                            "with it (the source was never safe)"
                        )
                        break
            if props.structure_based_rw_sets:
                child_rw = fresh_rw(child)
                if not child_rw <= parent_rw:
                    # Fall back to clause (i): re-check at execution time.
                    recorded_rw[child.tid] = child_rw

        # ...and after: did this execution add locations to them?
        for tid, before in watch.items():
            other = pending.get(tid)
            if other is None:
                continue
            after = fresh_rw(other)
            if not after <= before:
                report.non_increasing_rw_sets.append(
                    f"executing {task.item!r} grew the rw-set of "
                    f"{other.item!r} by {sorted(map(repr, after - before))[:3]}"
                )

        if props.stable_source:
            history.append((task.item, task.priority, parent_rw))
            if len(history) > 128:
                del history[0]
    return report
