"""Core KDG abstraction: tasks, dependence graphs, the ordered loop."""

from .algorithm import OrderedAlgorithm, SourceView
from .context import BodyContext, RWSetContext, RWSetViolation
from .kdg import KDG, LivenessViolation, OpCounts, SafetyViolation
from .ordered_loop import for_each_ordered
from .properties import AlgorithmProperties
from .rwsets import RWSetIndex
from .task import Task, TaskFactory
from .verify import PropertyReport, verify_properties
from .taskgraph import TaskGraph

__all__ = [
    "AlgorithmProperties",
    "BodyContext",
    "KDG",
    "LivenessViolation",
    "OpCounts",
    "OrderedAlgorithm",
    "RWSetContext",
    "RWSetIndex",
    "RWSetViolation",
    "SafetyViolation",
    "SourceView",
    "Task",
    "TaskFactory",
    "TaskGraph",
    "PropertyReport",
    "for_each_ordered",
    "verify_properties",
]
