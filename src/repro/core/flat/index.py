"""The bipartite task ↔ location graph ``B`` over dense ids.

Flat-engine replacement for :class:`repro.core.rwsets.RWSetIndex`: tasks
get recycled integer *slots* (freelist), locations are the dense ids of a
:class:`~repro.core.flat.interner.LocationInterner`, and each location's
bucket maps member slots to a writer-bit — so conflict discovery compares
plain ints instead of hashing ``Task`` keys and probing ``frozenset``
write-sets (tuple location ids don't cache their hashes, so every
dict-engine probe re-hashes; int keys hash to themselves).

Buckets are int-keyed insertion-ordered dicts rather than parallel lists
or numpy arrays deliberately: removal from a list bucket is an
``index()`` + shift-delete — O(members) per location, which loses badly
on high-sharing workloads where buckets hold dozens of tasks — while dict
deletion is O(1) and preserves the order of the remaining keys.  The
batched kernels that do win with numpy
(:func:`~repro.core.flat.kernels.mark_round`) work from the per-task id
arrays the interner caches, not from buckets.

Bucket membership is kept in insertion order, so "before mine in the
bucket" is exactly "inserted before me" — the property batched conflict
sweeps use to attribute each conflict pair to its later-inserted
endpoint, the task whose ``AddTask`` would have discovered the pair under
one-at-a-time insertion.
"""

from __future__ import annotations

from ..task import Task

_EMPTY: dict = {}


class FlatRWIndex:
    """Bipartite index between task slots and dense location ids."""

    __slots__ = (
        "_task_of",
        "_slot_of",
        "_ids_of",
        "_free",
        "_buckets",
    )

    def __init__(self) -> None:
        self._task_of: list[Task | None] = []
        self._slot_of: dict[Task, int] = {}
        self._ids_of: list[list[int] | None] = []
        self._free: list[int] = []
        self._buckets: list[dict[int, bool]] = []

    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, task: Task) -> bool:
        return task in self._slot_of

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, task: Task, ids, wmask) -> int:
        """Register ``task`` under dense ``ids``; returns edge ops performed.

        ``ids``/``wmask`` are the interner's cached per-task lists (other
        int/bool sequences are converted).  ``ids`` is aliased, not copied —
        the engine's cached lists are never mutated, and aliasing means a
        kinetic refresh that replaces ``task.flat_cache`` cannot disturb
        what :meth:`remove` will walk.  The op count matches
        ``RWSetIndex.add`` (1 + locations) so the cost model charges both
        engines identically.
        """
        if task in self._slot_of:
            raise ValueError(f"task already registered: {task!r}")
        if type(ids) is list:
            id_list = ids
        else:
            id_list = ids.tolist() if hasattr(ids, "tolist") else list(ids)
        if type(wmask) is list:
            w_list = wmask
        else:
            w_list = wmask.tolist() if hasattr(wmask, "tolist") else list(wmask)
        free = self._free
        if free:
            slot = free.pop()
            self._task_of[slot] = task
            self._ids_of[slot] = id_list
        else:
            slot = len(self._task_of)
            self._task_of.append(task)
            self._ids_of.append(id_list)
        self._slot_of[task] = slot
        buckets = self._buckets
        try:
            for loc, w in zip(id_list, w_list):
                buckets[loc][slot] = w
        except IndexError:
            # Grow to the batch's max id and redo the loop — the stores
            # already made are idempotent re-assignments.
            for _ in range(max(id_list) + 1 - len(buckets)):
                buckets.append({})
            for loc, w in zip(id_list, w_list):
                buckets[loc][slot] = w
        return 1 + len(id_list)

    def remove(self, task: Task) -> int:
        """Unregister ``task``; returns edge ops performed (1 + locations)."""
        slot = self._slot_of.pop(task)
        id_list = self._ids_of[slot]
        buckets = self._buckets
        for loc in id_list:
            # O(1); dict deletion preserves the order of remaining members.
            del buckets[loc][slot]
        self._task_of[slot] = None
        self._ids_of[slot] = None
        self._free.append(slot)
        return 1 + len(id_list)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def slot_of(self, task: Task) -> int:
        return self._slot_of[task]

    def slot_capacity(self) -> int:
        """Number of slots ever allocated (free slots included)."""
        return len(self._task_of)

    def task_of_slot(self, slot: int) -> Task:
        task = self._task_of[slot]
        if task is None:
            raise ValueError(f"slot {slot} is free")
        return task

    def ids_of(self, task: Task) -> list[int]:
        ids = self._ids_of[self._slot_of[task]]
        assert ids is not None
        return ids

    def bucket_map(self, loc_id: int) -> dict[int, bool]:
        """The bucket as ``{slot: writer_bit}``, insertion-ordered.

        The internal dict itself (zero-copy); callers must treat it as
        read-only and not hold it across mutations.  Unknown ids get a
        shared empty dict.
        """
        buckets = self._buckets
        if loc_id >= len(buckets):
            return _EMPTY
        return buckets[loc_id]

    def bucket(self, loc_id: int) -> tuple[list[int], list[bool]]:
        """``(slots, writer_bits)`` of the bucket as fresh insertion-ordered
        lists (convenience for tests; hot paths use :meth:`bucket_map`)."""
        members = self.bucket_map(loc_id)
        return list(members), list(members.values())

    def tasks_at(self, loc_id: int) -> list[Task]:
        """Pending tasks at dense location ``loc_id`` (insertion order)."""
        task_of = self._task_of
        return [task_of[s] for s in self.bucket_map(loc_id)]
