"""Dense-id interning of abstract locations.

Applications keep their hashable location ids (``("vertex", 17)``,
``("ball", 3)``, plain ints/strings — anything hashable); the flat engine
needs dense integers so per-round marking and bucket lookups become array
indexing.  A :class:`LocationInterner` assigns each distinct location id a
dense ``int32`` exactly once per run; ids are never recycled, so an
interned id is stable for the lifetime of the run regardless of task churn.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

import numpy as np

from ..task import Task


class LocationInterner:
    """Bijection between an app's hashable location ids and dense int32 ids."""

    __slots__ = ("_ids", "_locations")

    def __init__(self) -> None:
        self._ids: dict[Any, int] = {}
        self._locations: list[Any] = []

    def __len__(self) -> int:
        return len(self._locations)

    def intern(self, location: Any) -> int:
        """The dense id for ``location``, allocating one on first sight."""
        ids = self._ids
        found = ids.get(location)
        if found is None:
            found = len(self._locations)
            ids[location] = found
            self._locations.append(location)
        return found

    def intern_all(self, locations: Iterable[Any]) -> np.ndarray:
        """Dense ids for ``locations`` in order, as an ``int32`` array."""
        locs = locations if isinstance(locations, (tuple, list)) else tuple(locations)
        out = np.empty(len(locs), dtype=np.int32)
        ids = self._ids
        interned = self._locations
        for i, loc in enumerate(locs):
            found = ids.get(loc)
            if found is None:
                found = len(interned)
                ids[loc] = found
                interned.append(loc)
            out[i] = found
        return out

    def location_of(self, dense_id: int) -> Any:
        """The original hashable id behind ``dense_id`` (inverse mapping)."""
        return self._locations[dense_id]

    def task_lists(self, task: Task) -> tuple[list[int], list[bool]]:
        """``(loc_ids, write_bits)`` for ``task``'s current rw-set, cached.

        Plain Python lists: both the per-round kernels and the per-task
        index/conflict paths iterate element-wise over small sequences,
        where lists beat numpy arrays outright (the vector kernel builds
        its round-wide arrays from these in one conversion).

        The cache lives on the task (``Task.flat_cache``) keyed by both this
        interner and the identity of the ``task.rw_set`` tuple: the rw-set
        visitor allocates a fresh tuple whenever it recomputes, so identity
        tracks staleness exactly — memoized structure-based rw-sets hit the
        cache every round, kinetic refreshes miss it.  A task that migrates
        between runs (hence interners) can never leak stale ids.
        """
        cache = task.flat_cache
        if cache is not None and cache[0] is self and cache[1] is task.rw_set:
            return cache[2], cache[3]
        return self._fill_cache(task)

    def task_arrays(self, task: Task) -> tuple[np.ndarray, np.ndarray]:
        """``(loc_ids int32, write_mask bool)`` as fresh numpy arrays.

        Convenience for tests and benchmarks; the engine itself consumes
        :meth:`task_lists` (the cached form).
        """
        id_list, w_list = self.task_lists(task)
        return (
            np.array(id_list, dtype=np.int32),
            np.array(w_list, dtype=np.bool_),
        )

    def _fill_cache(self, task: Task):
        # One pass over the rw-set builds all four cached lists at once;
        # this runs once per task (or kinetic refresh) and is the flat
        # engine's dominant setup cost.  ``dict.setdefault`` interns each
        # location with a single hash probe — most locations are
        # first-sighted here (per-item private state), where get-then-set
        # would hash the tuple twice.
        rw = task.rw_set
        interned = self._locations
        write_set = task.write_set
        nxt = len(interned)
        setdefault = self._ids.setdefault
        record = interned.append
        id_list: list[int] = []
        if write_set:
            w_list: list[bool] = []
            wids: list[int] = []
            rids: list[int] = []
            put_id = id_list.append
            put_bit = w_list.append
            put_w = wids.append
            put_r = rids.append
            for loc in rw:
                found = setdefault(loc, nxt)
                if found == nxt:
                    record(loc)
                    nxt += 1
                put_id(found)
                if loc in write_set:
                    put_bit(True)
                    put_w(found)
                else:
                    put_bit(False)
                    put_r(found)
        else:
            put_id = id_list.append
            for loc in rw:
                found = setdefault(loc, nxt)
                if found == nxt:
                    record(loc)
                    nxt += 1
                put_id(found)
            w_list = [False] * len(rw)
            wids = []
            rids = id_list
        task.flat_cache = (self, rw, id_list, w_list, wids, rids)
        return id_list, w_list
