"""OBIM-style delta-bucket worklist for the flat engine (PriorityGraph).

GraphIt/PriorityGraph (Zhang et al. 2020) get their ordered-graph wins from
three scheduling moves over the same round structure the KDG executors run:

* **delta-bucketing** — priorities are integer levels (the rank-encoder
  shape PR 7 established); bucket ``level // delta`` coarsens the order so
  one bucket holds a whole window of work and every transfer is O(1).
* **bucket fusion** — the executor drains the front bucket to fixpoint
  before advancing: children whose level lands in the bucket being served
  go straight back into the round, never through the global structure.
* **lazy bucket updates** — when an item's priority *decreases*, it is
  appended to its new bucket immediately but the stale entry in the old
  bucket is not touched; the re-bucketing work is deferred until that
  bucket is served, where the stale entry is skipped in O(1).

:class:`FlatBucketWorklist` implements the structure those moves need.
Batch pushes compute bucket ids vectorized over int64 level arrays (numpy),
buckets are dense per-id lists served through a lazy min-heap of bucket
ids, and every entry carries a ticket so a re-bucketed item loses its old
position without an eager removal.  With ``delta == 1`` and no decreases
the pop order is bit-identical to
:class:`~repro.galois.bucketed.BucketedWorklist` over the same operations
(level order, FIFO within a level) — the property suite enforces this; with
decrease churn it matches the eager :meth:`BucketedWorklist.decrease` pop
order while doing O(1) work per decrease.

An item may be queued at most once at a time (re-pushing it after it was
popped is fine); the KDG worklists only ever hold unique pending tasks.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable, Sequence
from typing import Any, Generic, TypeVar

import numpy as np

T = TypeVar("T")


class FlatBucketWorklist(Generic[T]):
    """Delta-bucketed worklist: int levels, O(1) transfers, lazy re-level."""

    def __init__(
        self,
        level_of: Callable[[T], Any],
        delta: int = 1,
        items: Iterable[T] = (),
    ):
        if delta < 1:
            raise ValueError(f"delta must be >= 1 (got {delta})")
        self.level_of = level_of
        self.delta = delta
        #: bucket id -> append-only entry list ``[(item, ticket), ...]``.
        self._buckets: dict[int, list[tuple[T, int]]] = {}
        #: read cursor per bucket (entries before it were served/skipped).
        self._heads: dict[int, int] = {}
        self._bucket_heap: list[int] = []
        #: item -> (live bucket id, live ticket); stale entries disagree.
        self._live: dict[T, tuple[int, int]] = {}
        self._ticket = 0
        self.pushes = 0
        self.pops = 0
        #: Stale entries skipped so far (the deferred re-bucketing work).
        self.lazy_skips = 0
        items = list(items)
        if items:
            self.push_batch(items)

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def bucket_of(self, level: Any) -> int:
        """The bucket an (integer) level falls in."""
        return int(level) // self.delta

    def _append(self, item: T, bucket: int) -> None:
        entries = self._buckets.get(bucket)
        if entries is None:
            entries = []
            self._buckets[bucket] = entries
            self._heads[bucket] = 0
            heapq.heappush(self._bucket_heap, bucket)
        ticket = self._ticket
        self._ticket += 1
        entries.append((item, ticket))
        self._live[item] = (bucket, ticket)

    def push(self, item: T) -> None:
        self._append(item, self.bucket_of(self.level_of(item)))
        self.pushes += 1

    def push_batch(
        self, items: Sequence[T], levels: Sequence[int] | np.ndarray | None = None
    ) -> None:
        """Push many items at once; bucket ids are computed vectorized.

        ``levels`` (int64-coercible) skips the per-item ``level_of`` calls
        when the caller already holds the levels as an array — the flat
        executors do (rank arrays come straight from the
        :class:`~repro.core.flat.ranks.RankEncoder`).
        """
        if levels is None:
            levels = [self.level_of(item) for item in items]
        ids = np.asarray(levels, dtype=np.int64) // self.delta
        if len(ids) != len(items):
            raise ValueError(
                f"push_batch: {len(items)} item(s) but {len(ids)} level(s)"
            )
        for item, bucket in zip(items, ids.tolist()):
            self._append(item, bucket)
        self.pushes += len(items)

    def decrease(self, item: T, new_level: Any) -> None:
        """Lazy re-level after ``item``'s priority decreased.

        O(1): the item is appended to its new bucket under a fresh ticket;
        the stale entry keeps its slot in the old bucket and is skipped
        (also O(1)) when that bucket is eventually served.  A decrease that
        stays inside the item's current bucket still re-tickets it — pop
        order matches the eager pop-and-repush exactly.
        """
        if item not in self._live:
            raise KeyError(f"item {item!r} is not queued")
        self._append(item, self.bucket_of(new_level))

    def _front_bucket(self) -> int:
        """Earliest bucket with a live entry (compacts drained buckets)."""
        while self._bucket_heap:
            bucket = self._bucket_heap[0]
            entries = self._buckets.get(bucket)
            if entries is not None:
                head = self._heads[bucket]
                while head < len(entries):
                    item, ticket = entries[head]
                    if self._live.get(item) == (bucket, ticket):
                        self._heads[bucket] = head
                        return bucket
                    head += 1
                    self.lazy_skips += 1
                # Only stale entries left: drop the bucket wholesale.
                del self._buckets[bucket]
                del self._heads[bucket]
            heapq.heappop(self._bucket_heap)
        raise IndexError("empty bucket worklist")

    def current_bucket(self) -> int:
        """The earliest non-empty bucket id."""
        return self._front_bucket()

    def peek(self) -> T:
        bucket = self._front_bucket()
        return self._buckets[bucket][self._heads[bucket]][0]

    def pop(self) -> T:
        bucket = self._front_bucket()
        head = self._heads[bucket]
        item, _ = self._buckets[bucket][head]
        self._heads[bucket] = head + 1
        del self._live[item]
        self.pops += 1
        return item

    def pop_bucket(self) -> tuple[int, list[T]]:
        """Remove and return the entire front bucket's live items, in order.

        This is the fusion entry point: the executor takes the whole bucket
        as its round window and drains it to fixpoint before the next call
        advances to a later bucket.
        """
        bucket = self._front_bucket()
        entries = self._buckets.pop(bucket)
        head = self._heads.pop(bucket)
        items: list[T] = []
        for item, ticket in entries[head:]:
            if self._live.get(item) == (bucket, ticket):
                del self._live[item]
                items.append(item)
            else:
                self.lazy_skips += 1
        self.pops += len(items)
        return bucket, items

    def num_buckets(self) -> int:
        """Buckets holding at least one live entry."""
        return len({bucket for bucket, _ in self._live.values()})
