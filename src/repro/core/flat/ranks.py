"""Order-preserving encoding of app priorities into int64 ranks.

Every bundled app declares *tuple* priorities (``(time, ball)``,
``(row, col, k, phase)``, …), which numpy cannot compare — so without
help the :class:`~repro.core.flat.pool.RoundPool` demotes to the scalar
kernel on the first ``add`` and the vectorized/mp mark phases never run
on real workloads.  A :class:`RankEncoder` fixes that with the
PriorityGraph move (dense integer buckets for app-level priorities) plus
DePa-style order maintenance (explicit integer ranks answering order
queries in O(1)):

* each **distinct** priority gets a stable *key id* (dense, append-only)
  and a mutable int64 *rank* whose numeric order always equals the
  priority order;
* a window build batch-encodes its priorities in one sort
  (:meth:`prime` — sort-and-dense-rank with wide gaps);
* kinetic re-adds insert incrementally at the bisected position, taking
  the midpoint of the neighboring ranks; when a gap is exhausted the
  encoder renumbers every rank with even spacing (amortized O(1) per
  insert for any sane adversary — the rank space is 2**62 wide, so a
  renumber buys ~60 consecutive midpoint splits per neighbor pair).

Pools store the *key id* per slot and gather current ranks through the
encoder at sort time, so a renumber is encoder-local: no pool array, no
buffered insertion, and no cached value ever goes stale.

Schedule invariance is the contract: for priorities the encoder admits,
``(rank(p), tid) < (rank(q), tid')`` iff ``(p, tid) < (q, tid')`` — the
scalar ``sort_key`` order, bit for bit.  To keep that airtight the
encoder only admits values whose equality agrees with their ordering:
ints, bools, strs, bytes, *finite* floats, and tuples/lists thereof
(exact types only).  NaN — whose reflexive ``==`` is False while ``<``
is never True — and every other type return ``None`` from
:meth:`key_id`, demoting the pool to the (always-correct) scalar kernel.
"""

from __future__ import annotations

from bisect import bisect_left
from math import isfinite
from typing import Any

import numpy as np

#: Usable rank space ``[0, _SPAN)`` — comfortably inside int64 so the
#: mark kernels' ``UNMARKED`` sentinel (int64 max) stays unreachable.
_SPAN = 1 << 62

#: Dict-miss sentinel (``None`` is a real value: "known unencodable").
_MISS = object()


def _encodable(priority: Any) -> bool:
    """Whether ``priority`` may enter the total order.

    Exact builtin types only: a subclass (or a numpy scalar) may override
    ``__eq__``/``__lt__`` inconsistently with the dict collapsing the
    encoder relies on.  Floats must be finite — NaN breaks both ordering
    and equality, and ±inf would still order correctly but is rejected
    alongside for simplicity of the contract (and of the tests).
    """
    t = type(priority)
    if t is int or t is str or t is bool or t is bytes:
        return True
    if t is float:
        return isfinite(priority)
    if t is tuple or t is list:
        for element in priority:
            if not _encodable(element):
                return False
        return True
    return False


class RankEncoder:
    """Order-preserving map from comparable priorities to int64 ranks.

    ``key_id`` returns a priority's stable key id (allocating one on
    first sight) or ``None`` when the priority cannot be admitted;
    ``ranks_of`` gathers the *current* ranks for an array of key ids.
    One encoder per pool (or per flat KDG); key ids are meaningless
    across encoders.
    """

    __slots__ = ("_key_of", "_keys", "_order", "_rank", "_rank_arr", "renumbers")

    def __init__(self) -> None:
        self._key_of: dict[Any, int | None] = {}  # priority -> kid (None = rejected)
        self._keys: list[Any] = []                # kid -> priority
        self._order: list[int] = []               # kids, sorted by priority
        self._rank: list[int] = []                # kid -> current rank
        self._rank_arr: np.ndarray = np.empty(64, dtype=np.int64)
        self.renumbers = 0

    def __len__(self) -> int:
        return len(self._keys)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def key_id(self, priority: Any) -> int | None:
        """Stable key id for ``priority``; ``None`` if unencodable."""
        try:
            kid = self._key_of.get(priority, _MISS)
        except TypeError:  # unhashable priority: nothing to key the dict on
            return None
        if kid is not _MISS:
            return kid
        return self._insert(priority)

    def key_id_for(self, task) -> int | None:
        """:meth:`key_id` memoized on ``task.rank_cache``.

        The cache is keyed by encoder identity (the ``flat_cache`` idiom),
        so a task migrating between runs can never leak a stale id; a
        rejection is cached too — kinetic re-adds of a demoted task stay
        O(1).
        """
        cached = task.rank_cache
        if cached is not None and cached[0] is self:
            return cached[1]
        kid = self.key_id(task.priority)
        task.rank_cache = (self, kid)
        return kid

    def prime(self, tasks: list) -> None:
        """Batch-encode a window's priorities (sets every ``rank_cache``).

        A virgin encoder dense-ranks the batch's distinct priorities in
        one sort with even gap spacing; later batches insert their new
        distinct priorities in sorted order (so midpoint gaps erode
        geometrically, not linearly).  Unencodable priorities are cached
        as rejections; the pool's ``add`` demotes on seeing them.
        """
        fresh = []
        key_of = self._key_of
        for task in tasks:
            cached = task.rank_cache
            if cached is not None and cached[0] is self:
                continue
            try:
                kid = key_of.get(task.priority, _MISS)
            except TypeError:
                task.rank_cache = (self, None)
                continue
            if kid is not _MISS:
                task.rank_cache = (self, kid)
                continue
            fresh.append(task)
        if not fresh:
            return
        distinct: dict[Any, None] = {}
        for task in fresh:
            distinct[task.priority] = None
        if not self._keys and self._dense_build(list(distinct)):
            for task in fresh:
                task.rank_cache = (self, key_of[task.priority])
            return
        # Incremental: admit new keys smallest-first so each insert lands
        # against a fresh neighbor gap instead of splitting one repeatedly.
        new_keys = list(distinct)
        try:
            new_keys.sort()
        except TypeError:
            pass  # mixed/incomparable: per-key classification below
        for priority in new_keys:
            self.key_id(priority)
        for task in fresh:
            task.rank_cache = (self, self.key_id(task.priority))

    # ------------------------------------------------------------------
    # Rank queries
    # ------------------------------------------------------------------
    def rank(self, kid: int) -> int:
        """Current rank of key id ``kid`` (valid until the next insert)."""
        return self._rank[kid]

    def ranks_of(self, kids: np.ndarray) -> np.ndarray:
        """Current int64 ranks for an array of key ids (one gather)."""
        return self._rank_arr[kids]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _dense_build(self, new_keys: list) -> bool:
        """Even-gap build of an empty encoder; False if any key is bad."""
        for priority in new_keys:
            if not _encodable(priority):
                return False
        try:
            new_keys.sort()
        except TypeError:  # admitted types, but mutually incomparable
            return False
        n = len(new_keys)
        gap = _SPAN // (n + 1)
        self._keys = new_keys
        self._order = list(range(n))
        self._rank = [(i + 1) * gap for i in range(n)]
        key_of = self._key_of
        for kid, priority in enumerate(new_keys):
            key_of[priority] = kid
        arr = self._rank_arr
        if n > len(arr):
            arr = self._rank_arr = np.empty(max(2 * len(arr), n), dtype=np.int64)
        arr[:n] = self._rank
        return True

    def _insert(self, priority: Any) -> int | None:
        if not _encodable(priority):
            self._key_of[priority] = None
            return None
        order = self._order
        keys = self._keys
        try:
            pos = bisect_left(order, priority, key=keys.__getitem__)
        except TypeError:  # incomparable with an already-admitted priority
            self._key_of[priority] = None
            return None
        rank = self._rank
        lo = rank[order[pos - 1]] if pos else -1
        hi = rank[order[pos]] if pos < len(order) else _SPAN
        if hi - lo < 2:  # gap exhausted: respace every rank evenly
            self._renumber()
            lo = rank[order[pos - 1]] if pos else -1
            hi = rank[order[pos]] if pos < len(order) else _SPAN
        kid = len(keys)
        keys.append(priority)
        self._key_of[priority] = kid
        order.insert(pos, kid)
        new_rank = (lo + hi) // 2
        rank.append(new_rank)
        arr = self._rank_arr
        if kid >= len(arr):
            grown = np.empty(2 * len(arr), dtype=np.int64)
            grown[:kid] = arr[:kid]
            arr = self._rank_arr = grown
        arr[kid] = new_rank
        return kid

    def _renumber(self) -> None:
        gap = _SPAN // (len(self._order) + 1)
        rank = self._rank
        value = 0
        for kid in self._order:
            value += gap
            rank[kid] = value
        self._rank_arr[: len(rank)] = rank
        self.renumbers += 1
