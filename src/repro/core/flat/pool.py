"""Slot-pooled window state: zero-per-task-Python mark rounds.

:func:`~repro.core.flat.kernels.mark_round` rebuilds its flattened edge
list from per-task Python lists every round, which leaves a Python-loop
residue proportional to the window size even when the marking itself is
vectorized.  For the common executor regime — structure-based rw-sets and
numeric priorities — none of that per-round work is necessary: a task's
dense-id entries and its sort key are immutable for as long as it stays in
the window, so they can be written into persistent numpy arrays *once*,
when the task enters the window, and every subsequent round is a handful
of whole-window gathers:

* rank assignment — ``np.lexsort`` over per-slot ``(rank, tid)`` arrays,
  where ranks come from the pool's order-preserving
  :class:`~repro.core.flat.ranks.RankEncoder` (bit-exact with the Python
  ``sort_key`` order: slots store stable *key ids* and the current ranks
  are gathered at sort time, see :meth:`RoundPool.window_order`);
* edge-list gather — one fancy index into the entry pool built from
  per-slot ``starts``/``lens`` by ``np.repeat``/``cumsum``;
* marking/ownership — the same reversed-assignment min and bincount
  ownership test as the vector kernel body.

Slots are recycled through a freelist; entry storage is append-only with
whole-pool compaction when the live fraction drops, so long runs stay
bounded.  Insertions are buffered as plain Python lists and flushed to the
arrays in bulk at the next round — per-insert cost stays O(1) appends.
"""

from __future__ import annotations

from itertools import chain

import numpy as np

from ..task import Task
from .kernels import UNMARKED, VECTOR_CUTOFF, MarkBuffers, MarkResult, _mark_scalar
from .ranks import RankEncoder

_I64 = np.int64


class _PrivateAllocator:
    """Default array source: ordinary process-private numpy arrays.

    The pool asks its allocator for every backing array it creates, keyed
    by a stable tag, so the mp backend can substitute
    :class:`~repro.core.flat.shm.SharedArena` and have the same arrays land
    in named shared-memory segments — the pool's logic is identical either
    way (growth and compaction allocate a fresh array and copy; nothing is
    ever resized in place).
    """

    __slots__ = ()

    def empty(self, tag: str, length: int, dtype) -> np.ndarray:
        return np.empty(length, dtype=dtype)

    def zeros(self, tag: str, length: int, dtype) -> np.ndarray:
        return np.zeros(length, dtype=dtype)


_PRIVATE = _PrivateAllocator()


class RoundPool:
    """Persistent per-window arrays, one slot per resident task.

    ``add`` returns the slot id the executor stores as the task's window
    value; ``remove`` recycles it.  ``numeric`` stays True while every
    admitted priority is accepted by the pool's
    :class:`~repro.core.flat.ranks.RankEncoder` (any comparable mix of
    ints, finite floats, strings, bytes and tuples/lists thereof — all
    seven bundled apps' tuple priorities included) — once it flips,
    :func:`pooled_mark_round` permanently falls back to the list-based
    kernel (slots still track caches, so the fallback needs no
    migration).  Per slot the pool stores the priority's stable *key id*;
    ranks are gathered through the encoder at sort time, so encoder
    renumbers never touch pool state.
    """

    __slots__ = (
        "loc",
        "starts",
        "lens",
        "wlens",
        "keyid",
        "tid",
        "caches",
        "free",
        "top",
        "live_entries",
        "max_loc",
        "numeric",
        "ranks",
        "_alloc",
        "_pending_slots",
        "_pending_entries",
    )

    def __init__(self, allocator=None, ranks: RankEncoder | None = None) -> None:
        alloc = _PRIVATE if allocator is None else allocator
        self._alloc = alloc
        self.loc = alloc.empty("loc", 1024, _I64)  # entry pool (append-only)
        n = 256
        self.starts = alloc.zeros("starts", n, _I64)
        self.lens = alloc.zeros("lens", n, _I64)
        self.wlens = alloc.zeros("wlens", n, _I64)
        self.keyid = alloc.zeros("keyid", n, _I64)
        self.tid = alloc.zeros("tid", n, _I64)
        self.caches: list = [None] * n
        self.free: list[int] = list(range(n - 1, -1, -1))
        self.top = 0  # entry-pool watermark
        self.live_entries = 0
        self.max_loc = -1
        self.numeric = True
        # The rank encoder is parent-private (workers never sort), so it
        # never goes through the allocator; sharing one across pools is
        # allowed — key ids are append-only and order-stable.
        self.ranks = RankEncoder() if ranks is None else ranks
        # (slot, n_writers, n_total, priority_key_id, tid) per buffered add.
        self._pending_slots: list[tuple[int, int, int, int, int]] = []
        self._pending_entries: list[list[int]] = []

    def add(self, task: Task, cache: tuple) -> int:
        """Register ``task`` (flat-cache entry ``cache``); returns its slot.

        Pure-Python fast path: every numpy scalar store is deferred to
        :meth:`flush` (a vector round) as buffered metadata, so runs whose
        windows never reach the vector cutoff pay only list appends here.
        """
        free = self.free
        if not free:
            self._grow_slots()
        slot = free.pop()
        wids = cache[4]
        rids = cache[5]
        n = len(wids) + len(rids)
        self.caches[slot] = cache
        self.live_entries += n
        kid = 0
        if self.numeric:
            kid = self.ranks.key_id_for(task)
            if kid is None:
                self.numeric = False
                kid = 0
        # Entries are buffered as lists and written to the pool in bulk at
        # the next flush — writers first, matching the kernel edge order.
        # The add-time lengths ride along: a slot can be recycled with a
        # different rw-set while still pending (scalar rounds defer
        # flushing), and the flush must lay out each occurrence's block by
        # the lengths it had when buffered, not the slot's current ones.
        self._pending_slots.append((slot, len(wids), n, kid, task.tid))
        self._pending_entries.append(wids)
        self._pending_entries.append(rids)
        if len(self._pending_slots) > 8192:
            self.flush()
        return slot

    def add_batch(self, tasks: list[Task], caches: list[tuple]) -> list[int]:
        """Register a batch; returns the slot per task (in order).

        Equivalent to ``[self.add(t, c) for t, c in zip(tasks, caches)]``
        but primes the rank encoder first, so a window build dense-ranks
        its distinct priorities in one sort instead of N bisected inserts.
        """
        if self.numeric:
            self.ranks.prime(tasks)
        return [self.add(task, cache) for task, cache in zip(tasks, caches)]

    def remove(self, slot: int) -> None:
        """Recycle ``slot``; its entries stay in the pool until compaction."""
        cache = self.caches[slot]
        self.live_entries -= len(cache[4]) + len(cache[5])
        self.caches[slot] = None
        self.free.append(slot)

    def flush(self) -> None:
        """Materialize buffered insertions into the entry pool."""
        pending = self._pending_slots
        if not pending:
            return
        entries = list(chain.from_iterable(self._pending_entries))
        n = len(entries)
        top = self.top
        if top + n > len(self.loc):
            cap = max(2 * len(self.loc), top + n)
            grown = self._alloc.empty("loc", cap, _I64)
            grown[:top] = self.loc[:top]
            self.loc = grown
        if n:
            block = np.array(entries, dtype=_I64)
            self.loc[top : top + n] = block
            peak = int(block.max())
            if peak > self.max_loc:
                self.max_loc = peak
        starts = self.starts
        lens = self.lens
        wlens = self.wlens
        keyid = self.keyid
        tid = self.tid
        for slot, n_w, length, kid, tid_i in pending:
            # A recycled slot's later occurrence overwrites its metadata,
            # so the slot points at its current entries; earlier blocks
            # become dead pool space reclaimed by compaction.
            starts[slot] = top
            lens[slot] = length
            wlens[slot] = n_w
            keyid[slot] = kid
            tid[slot] = tid_i
            top += length
        self.top = top
        self._pending_slots = []
        self._pending_entries = []
        # Compact when dead entries dominate, so churn-heavy runs stay
        # bounded; live slots are re-packed with one gather per slot batch.
        if top > 65536 and self.live_entries * 4 < top:
            self._compact()

    def window_order(self, slots_arr: np.ndarray) -> np.ndarray:
        """Rank order of a window's slots — the scalar ``sort_key`` order.

        Gathers the encoder's current int64 ranks through the per-slot key
        ids and lexsorts with tid as the tie-breaker; exact by the
        encoder's order-preservation contract.  Callers must have flushed
        pending insertions first (the key-id array is flush-materialized
        like every other slot column).
        """
        return np.lexsort(
            (self.tid[slots_arr], self.ranks.ranks_of(self.keyid[slots_arr]))
        )

    def _grow_slots(self) -> None:
        n = len(self.lens)
        cap = 2 * n
        for name in ("starts", "lens", "wlens", "keyid", "tid"):
            arr = getattr(self, name)
            grown = self._alloc.zeros(name, cap, _I64)
            grown[:n] = arr
            setattr(self, name, grown)
        self.caches.extend([None] * n)
        self.free.extend(range(cap - 1, n - 1, -1))

    def _compact(self) -> None:
        live = [s for s, c in enumerate(self.caches) if c is not None]
        packed = self._alloc.empty("loc", max(1024, self.live_entries), _I64)
        top = 0
        loc = self.loc
        starts = self.starts
        lens = self.lens
        for slot in live:
            n = int(lens[slot])
            start = int(starts[slot])
            packed[top : top + n] = loc[start : start + n]
            starts[slot] = top
            top += n
        self.loc = packed
        self.top = top


def pooled_mark_round(
    pool: RoundPool,
    tasks: list[Task],
    slots: list[int],
    buffers: MarkBuffers,
    rw_visit: float,
    mark_cas: float,
) -> MarkResult:
    """One mark round straight off the pool arrays.

    ``slots[i]`` is ``tasks[i]``'s pool slot (the executor's window
    values); together they must cover the pool's whole live set — the
    kernel-selection cutoff reads the pool's running entry count rather
    than summing per-slot lengths.  Results are identical to
    :func:`~repro.core.flat.kernels.mark_round` over the same tasks —
    same owners, same costs, same float64 op order — the only difference
    is that no per-task Python runs on the vector path.  Small rounds and
    non-numeric pools take the scalar kernel body instead.
    """
    w = len(tasks)
    # ``slots`` is the pool's entire live set (the executor's window), so
    # the running live-entry count *is* this round's total edge count —
    # no per-slot gather needed to pick the kernel.
    total = pool.live_entries

    if not pool.numeric or not total or total < VECTOR_CUTOFF:
        # Scalar rounds never touch the pool arrays (sizes come from the
        # caches), so buffered insertions stay pending — a run whose
        # windows never reach the cutoff skips materialization entirely.
        caches_all = pool.caches
        task_caches = [caches_all[s] for s in slots]
        lens_list = [len(cache[2]) for cache in task_caches]
        keys = [task.sort_key for task in tasks]
        order = sorted(range(w), key=keys.__getitem__)
        return _mark_scalar(
            task_caches, order, lens_list, order[0], rw_visit, mark_cas
        )

    pool.flush()
    slots_arr = np.array(slots, dtype=_I64)
    lens_w = pool.lens[slots_arr]
    wlens_w = pool.wlens[slots_arr]
    order = pool.window_order(slots_arr)
    min_index = int(order[0])

    # Gather the rank-ordered edge list from the pool: one fancy index
    # built from per-slot segment starts/lengths.
    rl = lens_w[order]
    ends = np.cumsum(rl)
    seg_starts = ends - rl
    entry_rank = np.repeat(np.arange(w, dtype=_I64), rl)
    offset = np.arange(total, dtype=_I64) - seg_starts[entry_rank]
    loc = pool.loc[pool.starts[slots_arr][order][entry_rank] + offset]
    wbit = offset < wlens_w[order][entry_rank]

    buffers.ensure(pool.max_loc + 1)
    marks_all = buffers.marks_all
    marks_writer = buffers.marks_writer

    # Reversed assignment = grouped min (see the vector kernel body).
    marks_all[loc[::-1]] = entry_rank[::-1]
    wloc = loc[wbit]
    if len(wloc):
        marks_writer[wloc[::-1]] = entry_rank[wbit][::-1]

    owner_entry = np.where(
        wbit,
        marks_all[loc] == entry_rank,
        marks_writer[loc] >= entry_rank,
    )
    failing = np.bincount(entry_rank[~owner_entry], minlength=w)
    owner_arr = np.empty(w, dtype=np.bool_)
    owner_arr[order] = failing == 0
    owner = owner_arr.tolist()

    marks_all[loc] = UNMARKED
    if len(wloc):
        marks_writer[wloc] = UNMARKED

    mark_costs = (
        rw_visit * np.maximum(lens_w, 1) + mark_cas * (lens_w + wlens_w)
    ).tolist()
    return MarkResult(owner, lens_w.tolist(), mark_costs, min_index)
