"""Per-round marking kernels over dense location ids.

The dict engine's Phase I walks every window task's rw-set and CAS-loops a
priority mark into two dict tables (all-touchers and writers-only); Phase II
re-walks every rw-set to test mark ownership.  Every probe hashes a
location id — typically a tuple, and tuples do not cache their hashes, so
the dict engine re-hashes each location several times per round.

Over interned ids both phases run on plain ints.  Priorities may be
arbitrary tuples (numpy cannot compare them), so here tasks are first
sorted by ``sort_key`` once in Python and numbered with dense per-round
*ranks*, after which every mark comparison is an integer comparison.
(The pooled path in :mod:`~repro.core.flat.pool` goes further: its
:class:`~repro.core.flat.ranks.RankEncoder` maintains persistent int64
ranks across rounds, so even the per-round Python sort disappears into a
``np.lexsort``.)  Each task's
dense ids come pre-split into writer ids and reader ids (the flat-cache
entry built by :class:`~repro.core.flat.interner.LocationInterner`), so
neither phase tests a per-entry writer bit.  Two bodies implement the same
phases:

* **scalar** (small rounds) — int-keyed dict tables walked in rank order,
  so the first toucher of a location is its minimum and marking is a
  single membership probe per entry;
* **vector** (rounds with at least :data:`VECTOR_CUTOFF` rw-entries) —
  one flattened ``(location, writer-bit)`` edge list built in rank order,
  min-marked by a *reversed* fancy assignment (with duplicate indices the
  last write wins, and reversing a rank-ascending edge list makes the last
  write per location exactly the minimum rank; an order of magnitude
  faster than ``np.minimum.at``, whose element-at-a-time inner loop never
  vectorizes), then ownership as a gather plus one ``np.bincount`` of the
  failing entries.

Both bodies are cost-model exact: per-task mark costs come out of the same
formula as the dict loop (``rw_visit * max(1, |rw|) + mark_cas * (|rw| +
|writes|)``) in float64, so simulated makespans are bit-identical across
engines and across the cutoff.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from ..task import Task

#: Mark value meaning "no task has marked this location yet" — larger than
#: any per-round rank, so an untouched writer mark never blocks a reader.
UNMARKED = np.iinfo(np.int64).max

#: Rounds with at least this many rw-entries take the vectorized body;
#: below it, numpy's fixed per-call overhead loses to the scalar loop.
VECTOR_CUTOFF = 2048

_EMPTY_I64 = np.empty(0, dtype=np.int64)


class MarkBuffers:
    """Persistent mark tables indexed by dense location id (vector body).

    Both tables live across rounds, sized to the interner, and are reset
    *sparsely* after each round — only the positions the round touched are
    restored to :data:`UNMARKED`, so per-round cost tracks the window's
    footprint rather than the whole location universe.
    """

    __slots__ = ("marks_all", "marks_writer")

    def __init__(self) -> None:
        self.marks_all: np.ndarray = _EMPTY_I64
        self.marks_writer: np.ndarray = _EMPTY_I64

    def ensure(self, n_locs: int) -> None:
        """Grow both tables to cover dense ids ``< n_locs``."""
        have = len(self.marks_all)
        if n_locs <= have:
            return
        cap = max(n_locs, 2 * have, 1024)
        grown = np.full(cap, UNMARKED, dtype=np.int64)
        grown[:have] = self.marks_all
        self.marks_all = grown
        grown_w = np.full(cap, UNMARKED, dtype=np.int64)
        grown_w[:have] = self.marks_writer
        self.marks_writer = grown_w


class MarkResult(NamedTuple):
    """Phase I/II outputs for one round, aligned with the input task order."""

    #: ``owner[i]`` — task ``i`` owns all of its marks (graph source).
    owner: list
    #: ``lens[i]`` — rw-set size of task ``i``.
    lens: list
    #: Per-task Phase I cost, dict-loop exact, in input order.
    mark_costs: list
    #: Index (into the input list) of the earliest task by ``sort_key``.
    min_index: int


def mark_round(
    tasks: list[Task],
    caches: list[tuple],
    buffers: MarkBuffers,
    rw_visit: float,
    mark_cas: float,
) -> MarkResult:
    """Priority-mark one round's tasks and test mark ownership.

    ``caches[i]`` is ``tasks[i]``'s flat-cache entry ``(interner, rw_set,
    loc_ids, write_bits, writer_ids, reader_ids)`` — what
    :meth:`OrderedAlgorithm.compute_rw_lists` returns.  A writer owns a
    location iff it holds the all-touchers mark; a reader merely needs no
    strictly-earlier writer.  Tasks with empty rw-sets own vacuously.
    """
    w = len(tasks)
    # Dense ranks: the only non-vectorizable step, one sort over sort_key
    # (tid tie-break makes ranks unique).  Keys are pulled out first so the
    # sort key is a C-level ``list.__getitem__`` instead of a lambda.
    keys = [task.sort_key for task in tasks]
    order = sorted(range(w), key=keys.__getitem__)
    min_index = order[0]

    lens = [0] * w
    total = 0
    for i, cache in enumerate(caches):
        n = len(cache[2])
        lens[i] = n
        total += n

    if total and total >= VECTOR_CUTOFF:
        return _mark_vector(
            caches, order, lens, total, min_index, buffers, rw_visit, mark_cas
        )
    return _mark_scalar(caches, order, lens, min_index, rw_visit, mark_cas)


def _mark_scalar(caches, order, lens, min_index, rw_visit, mark_cas):
    w = len(order)
    marks_all: dict[int, int] = {}
    marks_writer: dict[int, int] = {}
    # Phase I in rank order: the first toucher of a location is its
    # minimum, so a mark is set at most once per location per table.
    for rank, i in enumerate(order):
        cache = caches[i]
        for loc in cache[2]:
            if loc not in marks_all:
                marks_all[loc] = rank
        for loc in cache[4]:
            if loc not in marks_writer:
                marks_writer[loc] = rank
    # Phase II: rank-vs-mark integer comparisons.
    owner = [True] * w
    writer_mark = marks_writer.get
    for rank, i in enumerate(order):
        cache = caches[i]
        for loc in cache[4]:
            if marks_all[loc] != rank:
                owner[i] = False
                break
        else:
            for loc in cache[5]:
                held = writer_mark(loc)
                if held is not None and held < rank:
                    owner[i] = False
                    break
    mark_costs = [
        rw_visit * max(1, n) + mark_cas * (n + len(cache[4]))
        for n, cache in zip(lens, caches)
    ]
    return MarkResult(owner, lens, mark_costs, min_index)


def _mark_vector(
    caches, order, lens, total, min_index, buffers, rw_visit, mark_cas
):
    w = len(order)
    # Flattened edge list in *rank* order, writers before readers within a
    # task (within-task order is irrelevant: all entries share one rank):
    # entry ranks come out ascending.
    loc_flat: list[int] = []
    for i in order:
        cache = caches[i]
        loc_flat += cache[4]
        loc_flat += cache[5]
    lens_arr = np.array(lens, dtype=np.int64)
    wlens_arr = np.array([len(cache[4]) for cache in caches], dtype=np.int64)
    order_arr = np.array(order, dtype=np.int64)
    rank_lens = lens_arr[order_arr]
    rank_wlens = wlens_arr[order_arr]
    loc = np.array(loc_flat, dtype=np.int64)
    entry_rank = np.repeat(np.arange(w, dtype=np.int64), rank_lens)
    # Writer bit per entry: writers lead each task's entries, so an entry
    # is a write iff its offset within the task is below the writer count.
    starts = np.zeros(w, dtype=np.int64)
    np.cumsum(rank_lens[:-1], out=starts[1:])
    offset = np.arange(total, dtype=np.int64) - np.repeat(starts, rank_lens)
    wbit = offset < np.repeat(rank_wlens, rank_lens)

    buffers.ensure(int(loc.max()) + 1)
    marks_all = buffers.marks_all
    marks_writer = buffers.marks_writer

    # Reversed assignment = grouped min: ranks descend, last write wins.
    marks_all[loc[::-1]] = entry_rank[::-1]
    wloc = loc[wbit]
    if len(wloc):
        marks_writer[wloc[::-1]] = entry_rank[wbit][::-1]

    owner_entry = np.where(
        wbit,
        marks_all[loc] == entry_rank,
        marks_writer[loc] >= entry_rank,
    )
    # A task owns iff none of its entries fail; empty rw-sets own vacuously.
    failing = np.bincount(entry_rank[~owner_entry], minlength=w)
    owner_arr = np.empty(w, dtype=np.bool_)
    owner_arr[order] = failing == 0
    owner = owner_arr.tolist()

    # Sparse reset: only touched positions go back to UNMARKED.
    marks_all[loc] = UNMARKED
    if len(wloc):
        marks_writer[wloc] = UNMARKED

    # Same formula and evaluation order as the scalar body's listcomp —
    # float64 multiply-then-add either way, so results are bit-identical.
    mark_costs = (
        rw_visit * np.maximum(lens_arr, 1) + mark_cas * (lens_arr + wlens_arr)
    ).tolist()
    return MarkResult(owner, lens, mark_costs, min_index)
