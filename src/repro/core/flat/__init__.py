"""Flat (array-based) kinetic engine.

The dict engine represents the KDG's state — marks, buckets, rw-sets — as
Python dicts keyed by hashable location ids and ``Task`` objects, so every
round of a bulk-synchronous executor pays one hash + pointer chase per
location touch.  This package supplies the flat alternative the
``engine="flat"`` executor option selects:

* :class:`LocationInterner` — maps each run's hashable location ids to
  dense ``int32`` ids exactly once, so all later per-round work happens in
  integer arrays (PriorityGraph-style flat representation).
* :class:`FlatRWIndex` — the bipartite task ↔ location graph ``B`` with
  freelist slot recycling and per-location member/writer-bit buckets over
  plain ints, maintained incrementally by the R/N/A subrules.
* :mod:`kernels <repro.core.flat.kernels>` — vectorized per-round phases:
  IKDG priority-marking as one rank-ordered fancy assignment plus an
  ownership-check gather, replacing the per-task CAS loop.
* :class:`RoundPool` + :func:`pooled_mark_round` — persistent per-window
  slot arrays so steady-state mark rounds run with no per-task Python at
  all (entries and sort keys are written once, at window entry).
* :class:`RankEncoder` — order-preserving map from arbitrary comparable
  priorities (the bundled apps' tuples included) to int64 ranks, so pools
  stay numeric and the vectorized/mp mark phases engage on real apps.

The flat engine is *schedule-invariant*: simulated makespans and oracle
traces are bit-identical to the dict engine (the equivalence sweep in
``tests/test_flat_engine.py`` enforces this).
"""

from .bucketed import FlatBucketWorklist
from .index import FlatRWIndex
from .interner import LocationInterner
from .kernels import MarkBuffers, mark_round
from .pool import RoundPool, pooled_mark_round
from .ranks import RankEncoder
from .shm import SharedArena, attach_array

__all__ = [
    "FlatBucketWorklist",
    "FlatRWIndex",
    "LocationInterner",
    "MarkBuffers",
    "RankEncoder",
    "RoundPool",
    "SharedArena",
    "attach_array",
    "mark_round",
    "pooled_mark_round",
]
