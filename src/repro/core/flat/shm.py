"""Shared-memory array allocation for the real-parallel mp backend.

The flat engine's per-round state is already dense int64/float64 numpy
arrays (:mod:`repro.core.flat.pool`), which is exactly the representation
that can cross a process boundary without serialization: allocate the
backing store in named ``multiprocessing.shared_memory`` segments and hand
workers the segment names.  :class:`SharedArena` is a tag-based allocator
that plugs into :class:`~repro.core.flat.pool.RoundPool` (and the backend's
own scratch tables):

* every allocation creates a **new** named segment and bumps the arena
  ``version`` — arrays are never resized in place, so a worker holding an
  old view keeps reading valid (stale) memory until it re-attaches; the
  backend republishes the layout whenever the version moved, and workers
  swap views between rounds, never during one;
* segments are kept until :meth:`close` (geometric growth in the pool
  bounds the waste to a constant factor of the live arrays);
* :meth:`close` always **unlinks** every segment.  ``close()`` on the
  mapping can legitimately fail with :class:`BufferError` while numpy
  views are still alive — the unlink must not be skipped in that case, or
  a crashed run leaks ``/dev/shm`` space until reboot (the fault-injection
  tests pin this down).

Worker processes attach with :func:`attach_array`, which works around the
resource-tracker over-accounting wart: a plain ``SharedMemory(name=...)``
in a child registers the segment with the child's tracker, which then
"cleans it up" (unlinks it!) when the child exits — yanking the memory out
from under the parent.  Python 3.13 grew ``track=False`` for exactly this;
on 3.10–3.12 tracker registration is suppressed around the attach.  (It
must be *suppressed*, not undone with ``unregister``: under the fork start
method child and parent share one tracker process whose cache is a plain
set, so a child-side unregister would delete the parent's own registration
and the parent's later ``unlink`` would make the tracker error at exit.)
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArena", "attach_array"]


def attach_array(
    name: str, dtype: str, length: int
) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach an existing segment and view it as a 1-D array.

    Returns ``(shm, array)``; the caller owns closing ``shm`` (never
    unlinking — the creating arena does that).
    """
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    return shm, np.ndarray(length, dtype=np.dtype(dtype), buffer=shm.buf)


class SharedArena:
    """Tag-based allocator backing numpy arrays with named shm segments.

    Satisfies the :class:`~repro.core.flat.pool.RoundPool` allocator
    protocol (``empty``/``zeros``); :meth:`full` additionally pre-fills,
    which the backend uses for its UNMARKED-initialized mark tables (a
    fresh segment's contents must never be assumed — Linux zero-fills, the
    mark kernels need the sentinel).
    """

    def __init__(self, prefix: str | None = None) -> None:
        # Short names: macOS caps POSIX shm names at ~31 chars.
        self._prefix = prefix or f"kdg{os.getpid() % 100000:05d}{secrets.token_hex(3)}"
        self._seq = 0
        self._segments: list[shared_memory.SharedMemory] = []
        self._current: dict[str, tuple[str, str, int]] = {}
        self._arrays: dict[str, np.ndarray] = {}
        self.version = 0
        self.closed = False

    def _new(self, tag: str, length: int, dtype) -> np.ndarray:
        if self.closed:
            raise ValueError("allocation from a closed SharedArena")
        dt = np.dtype(dtype)
        name = f"{self._prefix}n{self._seq}"
        self._seq += 1
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, int(length) * dt.itemsize)
        )
        self._segments.append(shm)
        arr = np.ndarray(length, dtype=dt, buffer=shm.buf)
        self._current[tag] = (shm.name, dt.str, int(length))
        self._arrays[tag] = arr
        self.version += 1
        return arr

    # -- RoundPool allocator protocol ----------------------------------
    def empty(self, tag: str, length: int, dtype) -> np.ndarray:
        return self._new(tag, length, dtype)

    def zeros(self, tag: str, length: int, dtype) -> np.ndarray:
        arr = self._new(tag, length, dtype)
        arr[:] = 0
        return arr

    # -- backend extras -------------------------------------------------
    def full(self, tag: str, length: int, dtype, fill) -> np.ndarray:
        arr = self._new(tag, length, dtype)
        arr[:] = fill
        return arr

    def get(self, tag: str) -> np.ndarray:
        """The current array for ``tag`` (parent-side view)."""
        return self._arrays[tag]

    def layout(self, tags=None) -> dict[str, tuple[str, str, int]]:
        """``tag -> (segment name, dtype str, length)`` for re-attachment."""
        if tags is None:
            return dict(self._current)
        return {tag: self._current[tag] for tag in tags if tag in self._current}

    def segment_names(self) -> list[str]:
        """Names of every segment ever allocated (for leak tests)."""
        return [shm.name for shm in self._segments]

    def close(self) -> None:
        """Unlink every segment.  Idempotent.

        A mapping whose numpy views are still alive refuses ``close()``
        with BufferError; the unlink happens regardless, so no named
        segment outlives the arena (the memory itself is reclaimed when
        the last view is garbage-collected).
        """
        if self.closed:
            return
        self.closed = True
        self._arrays.clear()
        self._current.clear()
        for shm in self._segments:
            try:
                shm.close()
            except BufferError:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._segments = []

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass
