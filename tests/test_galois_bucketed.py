"""Tests for the OBIM-style bucketed worklist."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.galois import BucketedWorklist


class TestBucketedWorklist:
    def test_empty(self):
        wl = BucketedWorklist(level_of=lambda x: x)
        assert len(wl) == 0
        assert not wl
        with pytest.raises(IndexError):
            wl.pop()
        with pytest.raises(IndexError):
            wl.peek()
        with pytest.raises(IndexError):
            wl.current_level()

    def test_serves_levels_in_order(self):
        wl = BucketedWorklist(level_of=lambda x: x[0],
                              items=[(2, "c"), (1, "a"), (2, "d"), (1, "b")])
        assert wl.current_level() == 1
        level, items = wl.pop_level()
        assert level == 1
        assert items == [(1, "a"), (1, "b")]  # FIFO within the bucket
        assert wl.current_level() == 2

    def test_pop_single(self):
        wl = BucketedWorklist(level_of=lambda x: x, items=[3, 1, 2, 1])
        assert wl.pop() == 1
        assert wl.pop() == 1
        assert wl.pop() == 2
        assert len(wl) == 1

    def test_push_to_lower_level_reorders(self):
        wl = BucketedWorklist(level_of=lambda x: x, items=[5])
        wl.push(2)
        assert wl.peek() == 2

    def test_reopened_level(self):
        wl = BucketedWorklist(level_of=lambda x: x, items=[1, 2])
        wl.pop_level()
        wl.push(1)  # the level-1 bucket was removed; reopen it
        assert wl.current_level() == 1
        assert wl.pop() == 1

    def test_num_levels(self):
        wl = BucketedWorklist(level_of=lambda x: x % 3, items=[0, 1, 2, 3, 4])
        assert wl.num_levels() == 3

    @given(st.lists(st.integers(0, 9)))
    def test_pop_sequence_is_level_sorted_stable(self, values):
        wl = BucketedWorklist(level_of=lambda x: x[0],
                              items=list(enumerate_levels(values)))
        out = [wl.pop() for _ in range(len(values))]
        # Stable sort by level == expected pop order.
        assert out == sorted(enumerate_levels(values), key=lambda p: p[0])

    @given(st.lists(st.integers(0, 5), min_size=1))
    def test_pop_level_partitions(self, values):
        wl = BucketedWorklist(level_of=lambda x: x, items=values)
        seen = []
        while wl:
            level, items = wl.pop_level()
            assert all(v == level for v in items)
            seen.extend(items)
        assert sorted(seen) == sorted(values)


def enumerate_levels(values):
    return [(v, i) for i, v in enumerate(values)]
