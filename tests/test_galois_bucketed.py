"""Tests for the OBIM-style bucketed worklist."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.galois import BucketedWorklist


class TestBucketedWorklist:
    def test_empty(self):
        wl = BucketedWorklist(level_of=lambda x: x)
        assert len(wl) == 0
        assert not wl
        with pytest.raises(IndexError):
            wl.pop()
        with pytest.raises(IndexError):
            wl.peek()
        with pytest.raises(IndexError):
            wl.current_level()

    def test_serves_levels_in_order(self):
        wl = BucketedWorklist(level_of=lambda x: x[0],
                              items=[(2, "c"), (1, "a"), (2, "d"), (1, "b")])
        assert wl.current_level() == 1
        level, items = wl.pop_level()
        assert level == 1
        assert items == [(1, "a"), (1, "b")]  # FIFO within the bucket
        assert wl.current_level() == 2

    def test_pop_single(self):
        wl = BucketedWorklist(level_of=lambda x: x, items=[3, 1, 2, 1])
        assert wl.pop() == 1
        assert wl.pop() == 1
        assert wl.pop() == 2
        assert len(wl) == 1

    def test_push_to_lower_level_reorders(self):
        wl = BucketedWorklist(level_of=lambda x: x, items=[5])
        wl.push(2)
        assert wl.peek() == 2

    def test_reopened_level(self):
        wl = BucketedWorklist(level_of=lambda x: x, items=[1, 2])
        wl.pop_level()
        wl.push(1)  # the level-1 bucket was removed; reopen it
        assert wl.current_level() == 1
        assert wl.pop() == 1

    def test_num_levels(self):
        wl = BucketedWorklist(level_of=lambda x: x % 3, items=[0, 1, 2, 3, 4])
        assert wl.num_levels() == 3

    def test_decrease_relevels_item(self):
        levels = {"a": 5, "b": 5, "c": 2}
        wl = BucketedWorklist(level_of=levels.__getitem__,
                              items=["a", "b", "c"])
        levels["b"] = 2
        wl.decrease("b", 5)
        assert len(wl) == 3
        # "b" joins the level-2 bucket *behind* "c" (append semantics) and
        # its old slot in the level-5 bucket is gone.
        assert wl.pop() == "c"
        assert wl.pop() == "b"
        assert wl.pop() == "a"
        assert not wl

    def test_decrease_loses_fifo_position(self):
        levels = {"a": 3, "b": 3, "c": 3}
        wl = BucketedWorklist(level_of=levels.__getitem__,
                              items=["a", "b", "c"])
        wl.decrease("a", 3)  # same level: re-append moves it to the back
        assert [wl.pop() for _ in range(3)] == ["b", "c", "a"]

    def test_decrease_unknown_level_raises(self):
        wl = BucketedWorklist(level_of=lambda x: 1, items=["a"])
        with pytest.raises(KeyError, match="no bucket"):
            wl.decrease("a", 9)

    def test_decrease_item_not_in_bucket_raises(self):
        levels = {"a": 1, "b": 2}
        wl = BucketedWorklist(level_of=levels.__getitem__, items=["a", "b"])
        with pytest.raises(KeyError, match="not queued"):
            wl.decrease("b", 1)  # level 1 bucket exists but holds only "a"
        assert len(wl) == 2  # failed decrease leaves the worklist intact

    @given(st.lists(st.integers(0, 9)))
    def test_pop_sequence_is_level_sorted_stable(self, values):
        wl = BucketedWorklist(level_of=lambda x: x[0],
                              items=list(enumerate_levels(values)))
        out = [wl.pop() for _ in range(len(values))]
        # Stable sort by level == expected pop order.
        assert out == sorted(enumerate_levels(values), key=lambda p: p[0])

    @given(st.lists(st.integers(0, 5), min_size=1))
    def test_pop_level_partitions(self, values):
        wl = BucketedWorklist(level_of=lambda x: x, items=values)
        seen = []
        while wl:
            level, items = wl.pop_level()
            assert all(v == level for v in items)
            seen.extend(items)
        assert sorted(seen) == sorted(values)


def enumerate_levels(values):
    return [(v, i) for i, v in enumerate(values)]
