"""Property tests for the shared-memory pool substrate and shard protocol.

Two invariants carry the mp backend's bit-identity argument, and both are
stated here as hypothesis properties:

* **view coherence** — a :class:`RoundPool` allocated from a
  :class:`SharedArena` behaves exactly like a process-private pool under
  adversarial add/remove/flush/compact churn, and a "worker" that attaches
  the arena's segments by name (exactly as the worker processes do) always
  observes the parent's arrays bit for bit;
* **shard invariance** — for *any* partition of a round's entry range and
  *any* partition of its location range, the three-phase sharded protocol
  (:func:`simulate_sharded_round`, the in-process reference for the live
  workers) produces the same :class:`MarkResult` as the single-process
  :func:`pooled_mark_round`, so the worker count and shard boundaries can
  never leak into schedules.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flat import LocationInterner, MarkBuffers
from repro.core.flat.pool import RoundPool, pooled_mark_round
from repro.core.flat.shm import SharedArena, attach_array
from repro.core.task import Task
from repro.runtime.mp_backend import simulate_sharded_round

#: Small alphabets force heavy location sharing (contended marking).
TASK_SPECS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),              # priority
        st.lists(st.integers(min_value=0, max_value=23),    # locations
                 min_size=0, max_size=5, unique=True),
        st.integers(min_value=0, max_value=5),              # n written
    ),
    min_size=1,
    max_size=24,
)

#: add/remove/flush/compact churn programs for the view-coherence property.
CHURN_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(0, 7),
                  st.lists(st.integers(0, 23), max_size=5, unique=True),
                  st.integers(0, 5)),
        st.tuples(st.just("remove"), st.integers(0, 127)),
        st.tuples(st.just("flush"), st.just(0)),
        st.tuples(st.just("compact"), st.just(0)),
    ),
    max_size=40,
)


def _build_task(tid, priority, locs, n_writes, interner):
    task = Task(None, priority, tid)
    rw = tuple(("loc", loc) for loc in locs)
    task.rw_set = rw
    task.write_set = frozenset(rw[:n_writes])
    interner.task_lists(task)
    return task


def _fill(pool, specs, interner):
    tasks, slots = [], []
    for tid, (priority, locs, n_writes) in enumerate(specs):
        task = _build_task(tid, priority, locs, n_writes, interner)
        tasks.append(task)
        slots.append(pool.add(task, task.flat_cache))
    return tasks, slots


def _partition(bounds_points, total):
    """Cut points (arbitrary ints) -> a covering partition of [0, total)."""
    cuts = sorted({p % (total + 1) for p in bounds_points})
    edges = [0] + cuts + [total]
    # Duplicate edges yield zero-width shards: legal, and must be harmless.
    return list(zip(edges, edges[1:]))


class TestShardInvariance:
    @given(
        specs=TASK_SPECS,
        entry_cuts=st.lists(st.integers(min_value=0), max_size=6),
        loc_cuts=st.lists(st.integers(min_value=0), max_size=6),
    )
    @settings(max_examples=150, deadline=None)
    def test_any_partition_matches_pooled(self, specs, entry_cuts, loc_cuts):
        interner = LocationInterner()
        pool = RoundPool()
        tasks, slots = _fill(pool, specs, interner)
        # Flush before reading the ranges the partitions must cover —
        # ``max_loc`` is maintained at flush time, exactly as the live
        # backend reads it (after its own ``pool.flush()``).
        pool.flush()
        want = pooled_mark_round(pool, tasks, slots, MarkBuffers(), 3.0, 7.0)
        total = pool.live_entries
        n_locs = max(1, pool.max_loc + 1)
        got = simulate_sharded_round(
            pool, tasks, slots, 3.0, 7.0,
            entry_bounds=_partition(entry_cuts, total),
            loc_bounds=_partition(loc_cuts, n_locs),
        )
        assert got == want

    def test_non_numeric_pool_rejected(self):
        # Tuple priorities rank-encode now, so only a genuinely
        # unencodable priority (NaN) demotes the pool.
        interner = LocationInterner()
        pool = RoundPool()
        task = _build_task(0, float("nan"), [1, 2], 1, interner)
        slots = [pool.add(task, task.flat_cache)]
        assert not pool.numeric
        with pytest.raises(ValueError, match="numeric"):
            simulate_sharded_round(pool, [task], slots, 3.0, 7.0, [(0, 2)])


class TestViewCoherence:
    #: The pool-owned tags a worker-side attach must see coherently.
    POOL_TAGS = ("loc", "starts", "lens", "wlens", "keyid", "tid")

    def _run_program(self, ops, pool, interner, live):
        tid = len(live)
        for op in ops:
            if op[0] == "add":
                _, priority, locs, n_writes = op
                task = _build_task(tid, priority, locs, n_writes, interner)
                tid += 1
                live.append((task, pool.add(task, task.flat_cache)))
            elif op[0] == "remove":
                if live:
                    _, slot = live.pop(op[1] % len(live))
                    pool.remove(slot)
            elif op[0] == "flush":
                pool.flush()
            else:  # compact: flush first — pending entries reference slots
                pool.flush()
                pool._compact()

    @given(ops=CHURN_OPS)
    @settings(max_examples=60, deadline=None)
    def test_shared_pool_equals_private_pool_and_worker_view(self, ops):
        arena = SharedArena()
        try:
            shared = RoundPool(allocator=arena)
            private = RoundPool()
            interner = LocationInterner()
            live_s: list = []
            live_p: list = []
            self._run_program(ops, shared, interner, live_s)
            self._run_program(ops, private, interner, live_p)
            shared.flush()
            private.flush()

            # Shared-allocator pool is behaviorally identical to a private
            # one: same watermark, same live set, same array contents.
            assert shared.top == private.top
            assert shared.live_entries == private.live_entries
            assert shared.numeric == private.numeric
            assert np.array_equal(shared.loc[: shared.top],
                                  private.loc[: private.top])
            for tag in ("starts", "lens", "wlens", "keyid", "tid"):
                a, b = getattr(shared, tag), getattr(private, tag)
                n = min(len(a), len(b))
                assert np.array_equal(a[:n], b[:n]), tag

            # A worker attaching the arena's segments by name sees the
            # parent's arrays bit for bit — including after growth and
            # compaction retarget a tag to a fresh segment.
            layout = arena.layout(self.POOL_TAGS)
            for tag, (name, dtype, length) in layout.items():
                shm, view = attach_array(name, dtype, length)
                try:
                    parent = getattr(shared, tag)
                    assert len(view) == len(parent), tag
                    assert view.dtype == parent.dtype, tag
                    assert np.array_equal(view, parent), tag
                finally:
                    shm.close()

            # live_entries is exactly the summed rw-set sizes of the live
            # caches (add and remove count the same thing), at every point
            # of any churn program — compaction sizing depends on it.
            for pool in (shared, private):
                want = sum(
                    len(c[4]) + len(c[5]) for c in pool.caches if c is not None
                )
                assert pool.live_entries == want

            # Marking runs identically on both pools (when still usable).
            if live_s and shared.numeric:
                tasks = [t for t, _ in live_s]
                slots = [s for _, s in live_s]
                got = pooled_mark_round(
                    shared, tasks, slots, MarkBuffers(), 3.0, 7.0
                )
                want = pooled_mark_round(
                    private,
                    [t for t, _ in live_p],
                    [s for _, s in live_p],
                    MarkBuffers(), 3.0, 7.0,
                )
                assert got == want
        finally:
            arena.close()


class TestNonFinitePriorities:
    """Regression: NaN/inf float priorities must demote, not poison.

    A NaN admitted as "numeric" used to poison the vectorized ordering
    (NaN compares False against everything); the rank encoder now rejects
    every non-finite float — bare or nested inside a tuple — so such
    pools permanently take the scalar (always-correct) kernel.
    """

    @given(
        bad=st.sampled_from([float("nan"), float("inf"), float("-inf")]),
        nest=st.integers(min_value=0, max_value=2),
        prefix=st.lists(
            st.floats(allow_nan=False, allow_infinity=False), max_size=3
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_non_finite_always_demotes(self, bad, nest, prefix):
        interner = LocationInterner()
        pool = RoundPool()
        priority = bad
        for _ in range(nest):
            priority = (*prefix, priority)
        task = _build_task(0, priority, [1], 1, interner)
        pool.add(task, task.flat_cache)
        assert not pool.numeric

    @given(
        prios=st.lists(
            st.floats(allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=16,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_finite_floats_stay_numeric_and_ordered(self, prios):
        interner = LocationInterner()
        pool = RoundPool()
        tasks = [
            _build_task(tid, pr, [tid % 5], 1, interner)
            for tid, pr in enumerate(prios)
        ]
        for task in tasks:
            pool.add(task, task.flat_cache)
        assert pool.numeric
        ranks = pool.ranks
        got = sorted(tasks, key=lambda t: (ranks.rank(t.rank_cache[1]), t.tid))
        want = sorted(tasks, key=lambda t: t.sort_key)
        assert [t.tid for t in got] == [t.tid for t in want]
