"""Smoke tests: every example script runs end-to-end and self-verifies."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert "speedup" in proc.stdout or "x" in proc.stdout


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3, "the paper reproduction ships at least 3 examples"
