"""RankEncoder: order preservation, batch/incremental equivalence, renumber.

The encoder carries the whole schedule-invariance argument for rank-encoded
pools: for every priority it admits, ``(rank(p), tid)`` must order exactly
like ``(p, tid)`` — the scalar ``sort_key`` order.  These tests state that
as a hypothesis property over the apps' priority shapes (ints, floats,
strings, nested tuples), check that batched :meth:`prime` and one-at-a-time
:meth:`key_id` produce the same order, force gap exhaustion to exercise
renumbering, and pin down the rejection contract (non-finite floats, numpy
scalars, unhashables, incomparable mixes).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flat import RankEncoder
from repro.core.flat import ranks as ranks_mod
from repro.core.task import Task

#: Priority shapes drawn from what the bundled apps actually use:
#: ints (bfs/treesum levels), (float, int) pairs (avi/des/billiards-like),
#: 4-tuples (lu), plus strings and deeper nesting for good measure.
FINITE_FLOATS = st.floats(allow_nan=False, allow_infinity=False)
PRIORITIES = st.one_of(
    st.integers(),
    st.tuples(FINITE_FLOATS, st.integers()),
    st.tuples(st.integers(), st.integers(), st.integers(), st.integers()),
    st.tuples(st.text(max_size=3), st.tuples(st.integers(), FINITE_FLOATS)),
)


def _order_of(encoder, priorities):
    kids = [encoder.key_id(p) for p in priorities]
    assert all(k is not None for k in kids)
    return sorted(range(len(priorities)), key=lambda i: (encoder.rank(kids[i]), i))


class TestOrderPreservation:
    @given(prios=st.lists(st.integers(), min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_int_ranks_sort_like_values(self, prios):
        enc = RankEncoder()
        got = _order_of(enc, prios)
        want = sorted(range(len(prios)), key=lambda i: (prios[i], i))
        assert got == want

    @given(prios=st.lists(PRIORITIES, min_size=1, max_size=40))
    @settings(max_examples=150, deadline=None)
    def test_app_shaped_ranks_sort_like_values(self, prios):
        # Within one shape priorities are mutually comparable; mixed shapes
        # may or may not be — either the whole batch encodes and orders
        # exactly, or some key is rejected (never a wrong order).
        enc = RankEncoder()
        kids = []
        for p in prios:
            kid = enc.key_id(p)
            if kid is None:
                return  # incomparable mix: rejection is the contract
            kids.append(kid)
        got = sorted(range(len(prios)), key=lambda i: (enc.rank(kids[i]), i))
        want = sorted(range(len(prios)), key=lambda i: (prios[i], i))
        assert got == want

    @given(prios=st.lists(st.integers(), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_prime_equals_incremental(self, prios):
        batch = RankEncoder()
        tasks = [Task(None, p, tid) for tid, p in enumerate(prios)]
        batch.prime(tasks)
        incremental = RankEncoder()
        inc_kids = [incremental.key_id(p) for p in prios]
        order_b = sorted(
            range(len(prios)),
            key=lambda i: (batch.rank(tasks[i].rank_cache[1]), i),
        )
        order_i = sorted(
            range(len(prios)), key=lambda i: (incremental.rank(inc_kids[i]), i)
        )
        assert order_b == order_i

    def test_duplicate_priorities_share_one_key_id(self):
        enc = RankEncoder()
        a = enc.key_id((1.5, 3))
        b = enc.key_id((1.5, 3))
        assert a == b
        assert len(enc) == 1
        # Equal-by-value across int/float/bool collapses too — safe
        # because for these types dict equality == ordering equality.
        enc2 = RankEncoder()
        assert enc2.key_id(1) == enc2.key_id(1.0) == enc2.key_id(True)
        assert len(enc2) == 1

    def test_ranks_of_gathers_current_ranks(self):
        enc = RankEncoder()
        kids = [enc.key_id(p) for p in (30, 10, 20)]
        arr = enc.ranks_of(np.array(kids, dtype=np.int64))
        assert list(np.argsort(arr, kind="stable")) == [1, 2, 0]


class TestRenumber:
    def test_midpoint_exhaustion_triggers_renumber(self, monkeypatch):
        # A tiny rank space forces gap exhaustion almost immediately;
        # order must survive every renumber.
        monkeypatch.setattr(ranks_mod, "_SPAN", 1 << 6)
        enc = RankEncoder()
        prios = [0, 1000]
        for kid, p in enumerate(prios):
            assert enc.key_id(p) == kid
        # Repeated bisection of the same neighbor gap: 500, 250, 125, ...
        value = 1000
        while value > 1:
            value //= 2
            prios.append(value)
            enc.key_id(value)
        assert enc.renumbers > 0
        order = _order_of(enc, prios)
        want = sorted(range(len(prios)), key=lambda i: (prios[i], i))
        assert order == want

    @given(prios=st.lists(st.integers(0, 200), min_size=2, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_order_survives_renumbers(self, prios):
        enc = RankEncoder()
        old_span = ranks_mod._SPAN
        ranks_mod._SPAN = 1 << 8
        try:
            got = _order_of(enc, prios)
        finally:
            ranks_mod._SPAN = old_span
        want = sorted(range(len(prios)), key=lambda i: (prios[i], i))
        assert got == want


class TestRejection:
    @pytest.mark.parametrize(
        "bad",
        [
            float("nan"),
            float("inf"),
            float("-inf"),
            (1.0, float("nan")),
            [0, (1, float("inf"))],
            np.float64(1.5),  # numpy scalar: not an exact builtin type
            np.int64(3),
            (np.float64(1.5), 0),
            object(),
            None,
            {"a": 1},  # unhashable
            ([1], 2),  # hashable? no — list inside tuple is unhashable
        ],
        ids=repr,
    )
    def test_unencodable_returns_none(self, bad):
        enc = RankEncoder()
        assert enc.key_id(bad) is None

    def test_incomparable_mix_rejects_second_type(self):
        enc = RankEncoder()
        assert enc.key_id((1, 2)) is not None
        # str-vs-tuple comparison raises TypeError inside the bisect; the
        # offender is rejected, the admitted key survives.
        assert enc.key_id("zebra") is None
        assert enc.key_id((0, 9)) is not None

    def test_rejection_is_cached_on_task(self):
        enc = RankEncoder()
        task = Task(None, float("nan"), 0)
        assert enc.key_id_for(task) is None
        assert task.rank_cache == (enc, None)
        # A different encoder does not trust the stale cache entry.
        other = RankEncoder()
        assert other.key_id_for(task) is None
        assert task.rank_cache == (other, None)

    def test_prime_caches_rejections_for_unhashables(self):
        enc = RankEncoder()
        tasks = [Task(None, {"no": 1}, 0), Task(None, 5, 1)]
        enc.prime(tasks)
        assert tasks[0].rank_cache == (enc, None)
        assert tasks[1].rank_cache[1] is not None
