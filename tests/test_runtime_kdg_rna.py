"""Unit tests for the explicit KDG executor (rounds and async variants)."""

import pytest

from repro import AlgorithmProperties, SimMachine
from repro.core import LivenessViolation, OrderedAlgorithm
from repro.runtime import run_kdg_rna, run_serial

from .helpers import ChainCounter


def chain_properties(**kw):
    base = dict(stable_source=True, monotonic=True, structure_based_rw_sets=True)
    base.update(kw)
    return AlgorithmProperties(**base)


class TestRoundBased:
    def test_matches_serial_state(self):
        serial = ChainCounter(cells=4, steps=6)
        run_serial(serial.algorithm())
        parallel = ChainCounter(cells=4, steps=6)
        result = run_kdg_rna(
            parallel.algorithm(), SimMachine(3), asynchronous=False
        )
        assert parallel.sums == serial.sums
        assert result.executed == serial.steps * serial.cells
        assert result.rounds == serial.steps  # one chain step per round

    def test_independent_chains_in_same_round(self):
        app = ChainCounter(cells=6, steps=3)
        result = run_kdg_rna(app.algorithm(), SimMachine(6), asynchronous=False)
        # All 6 cells progress together: rounds = steps, not steps*cells.
        assert result.rounds == 3

    def test_safety_check_mode_passes_for_stable_app(self):
        app = ChainCounter(cells=3, steps=3)
        run_kdg_rna(app.algorithm(), SimMachine(2), asynchronous=False,
                    check_safety=True)
        assert app.sums == app.expected_sums()

    def test_unstable_app_uses_safe_source_test(self):
        # Only even cells may run (except the earliest task, kept for
        # liveness); the test records invocations.
        app = ChainCounter(cells=4, steps=2)
        tested = []

        def safe_test(task, view):
            tested.append(task.item)
            return task.item[1] % 2 == 0 or task.priority == view.min_priority

        algorithm = app.algorithm(
            properties=chain_properties(stable_source=False),
            safe_source_test=safe_test,
        )
        run_kdg_rna(algorithm, SimMachine(4), asynchronous=False)
        assert app.sums == app.expected_sums()
        assert tested, "safe-source test was never applied"

    def test_liveness_violation_raised(self):
        app = ChainCounter(cells=2, steps=1)
        algorithm = app.algorithm(
            properties=chain_properties(stable_source=False),
            safe_source_test=lambda task, view: False,
        )
        with pytest.raises(LivenessViolation):
            run_kdg_rna(algorithm, SimMachine(2), asynchronous=False)

    def test_subrule_n_recomputes_neighbor_rw_sets(self):
        """A neighbor's rw-set changes after execution; subrule N rewires."""
        # Tasks: t0 writes "x"; t1's rw-set is "x" before t0 runs and "y"
        # after.  Without subrule N, t1 would be re-run with a stale set.
        state = {"flag": False, "order": []}

        def visit(item, ctx):
            if item == 0:
                ctx.write("x")
            else:
                ctx.write("x" if not state["flag"] else "y")

        def body(item, ctx):
            state["order"].append(item)
            if item == 0:
                state["flag"] = True
            ctx.work(10)

        algorithm = OrderedAlgorithm(
            name="shifting",
            initial_items=[0, 1],
            priority=lambda x: x,
            visit_rw_sets=visit,
            apply_update=body,
            properties=AlgorithmProperties(stable_source=True, no_new_tasks=True),
        )
        result = run_kdg_rna(algorithm, SimMachine(2), asynchronous=False)
        assert state["order"] == [0, 1]
        assert result.executed == 2


class TestAsync:
    def test_auto_selects_async_for_capable_properties(self):
        app = ChainCounter()
        result = run_kdg_rna(app.algorithm(), SimMachine(2))
        assert result.executor == "kdg-rna-async"

    def test_async_rejected_without_properties(self):
        app = ChainCounter()
        algorithm = app.algorithm(properties=AlgorithmProperties(stable_source=True))
        with pytest.raises(ValueError):
            run_kdg_rna(algorithm, SimMachine(2), asynchronous=True)

    def test_async_matches_serial_state(self):
        serial = ChainCounter(cells=5, steps=7)
        run_serial(serial.algorithm())
        parallel = ChainCounter(cells=5, steps=7)
        run_kdg_rna(parallel.algorithm(), SimMachine(4))
        assert parallel.sums == serial.sums

    def test_async_faster_than_rounds_for_chains(self):
        """Chains of unequal length: rounds wait at barriers, async doesn't."""
        rounds_app = ChainCounter(cells=8, steps=10, work=500.0)
        rounds = run_kdg_rna(rounds_app.algorithm(), SimMachine(8),
                             asynchronous=False)
        async_app = ChainCounter(cells=8, steps=10, work=500.0)
        asynchronous = run_kdg_rna(async_app.algorithm(), SimMachine(8))
        assert asynchronous.elapsed_cycles < rounds.elapsed_cycles

    def test_async_scales_with_threads(self):
        one = ChainCounter(cells=8, steps=8, work=400.0)
        r1 = run_kdg_rna(one.algorithm(), SimMachine(1))
        eight = ChainCounter(cells=8, steps=8, work=400.0)
        r8 = run_kdg_rna(eight.algorithm(), SimMachine(8))
        assert r8.elapsed_cycles < r1.elapsed_cycles / 3

    def test_async_with_local_safe_test(self):
        app = ChainCounter(cells=3, steps=4)
        calls = []

        def local_test(task, view):
            calls.append(task.item)
            return True

        algorithm = app.algorithm(
            properties=chain_properties(
                stable_source=False, local_safe_source_test=True
            ),
            safe_source_test=local_test,
        )
        result = run_kdg_rna(algorithm, SimMachine(2))
        assert result.executor == "kdg-rna-async"
        assert app.sums == app.expected_sums()
        assert calls

    def test_async_stall_raises_liveness(self):
        app = ChainCounter(cells=2, steps=1)
        algorithm = app.algorithm(
            properties=chain_properties(
                stable_source=False, local_safe_source_test=True
            ),
            safe_source_test=lambda task, view: False,
        )
        with pytest.raises(LivenessViolation):
            run_kdg_rna(algorithm, SimMachine(2))

    def test_dependence_hint_skips_rw_sets(self):
        """§4.7: explicit dependences wire the DAG without rw-set visits."""
        visits = []
        done = []

        def visit(item, ctx):
            visits.append(item)
            ctx.write(("n", item))

        algorithm = OrderedAlgorithm(
            name="chain-dag",
            initial_items=[0, 1, 2],
            priority=lambda x: x,
            visit_rw_sets=visit,
            apply_update=lambda item, ctx: done.append(item),
            properties=AlgorithmProperties(
                stable_source=True,
                no_new_tasks=True,
                structure_based_rw_sets=True,
            ),
            dependences=lambda item: [item - 1] if item > 0 else [],
        )
        run_kdg_rna(algorithm, SimMachine(2))
        assert done == [0, 1, 2]
        assert visits == [], "rw-sets computed despite the dependence hint"
