"""The central correctness oracle (§3.3 serializability).

Every parallel executor must leave the application state *bit-for-bit*
identical to the serial priority-order execution, for every application,
at several thread counts.  This is the property the KDG's Safety and
Liveness conditions exist to guarantee.
"""

import pytest

from repro import SimMachine
from repro.apps import APPS

from .helpers import TINY_STATES

EXECUTOR_MATRIX = [
    ("kdg-auto", 1),
    ("kdg-auto", 3),
    ("kdg-auto", 8),
    ("kdg-rna", 3),       # forced explicit KDG (round-based or async)
    ("ikdg", 3),          # forced implicit KDG
    ("level-by-level", 3),
    ("speculation", 3),
    ("kdg-manual", 3),
    ("kdg-manual", 8),
]


@pytest.fixture(scope="module")
def serial_snapshots():
    """Serial-run snapshot per app (computed once)."""
    snapshots = {}
    for name, make in TINY_STATES.items():
        state = make()
        APPS[name].run(state, "serial", SimMachine(1))
        APPS[name].validate(state)
        snapshots[name] = APPS[name].snapshot(state)
    return snapshots


@pytest.mark.parametrize("app_name", sorted(TINY_STATES))
@pytest.mark.parametrize("impl,threads", EXECUTOR_MATRIX)
def test_executor_serializable(app_name, impl, threads, serial_snapshots):
    spec = APPS[app_name]
    if not spec.has_impl(impl):
        pytest.skip(f"{app_name} has no {impl}")
    state = TINY_STATES[app_name]()
    result = spec.run(state, impl, SimMachine(threads))
    spec.validate(state)
    assert spec.snapshot(state) == serial_snapshots[app_name], (
        f"{app_name}/{impl}@{threads} diverged from the serial execution"
    )
    assert result.executed > 0


@pytest.mark.parametrize("app_name", sorted(TINY_STATES))
def test_other_implementation_valid(app_name, serial_snapshots):
    """Third-party comparators must compute the same answer.

    DES's Chandy–Misra comparator processes extra null messages, so it is
    compared on final wire values (its snapshot covers exactly those).
    """
    spec = APPS[app_name]
    if not spec.has_impl("other"):
        pytest.skip(f"{app_name} has no third-party comparator")
    state = TINY_STATES[app_name]()
    spec.run(state, "other", SimMachine(4))
    spec.validate(state)
    assert spec.snapshot(state) == serial_snapshots[app_name]


@pytest.mark.parametrize("app_name", sorted(TINY_STATES))
def test_checked_mode_accepts_all_apps(app_name):
    """Every app's body touches only its declared rw-set (cautiousness)."""
    spec = APPS[app_name]
    state = TINY_STATES[app_name]()
    spec.run(state, "ikdg", SimMachine(2), checked=True)
    spec.validate(state)
