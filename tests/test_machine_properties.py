"""Property tests for the simulated machine (conservation laws)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Category, CostModel, SimMachine, simulate_async

FLAT = CostModel(barrier_base=0.0, barrier_per_thread=0.0)

costs = st.lists(st.floats(1.0, 1000.0), max_size=30)


class TestRunPhaseProperties:
    @given(costs, st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_busy_cycles_conserved(self, items, threads):
        """Every charged cycle lands in exactly one category."""
        m = SimMachine(threads, FLAT)
        m.run_phase([{Category.EXECUTE: c} for c in items])
        assert m.stats.total(Category.EXECUTE) == pytest.approx(sum(items))

    @given(costs, st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounds(self, items, threads):
        """max(item, total/threads) <= makespan <= total."""
        m = SimMachine(threads, FLAT)
        m.run_phase([{Category.EXECUTE: c} for c in items])
        total = sum(items)
        longest = max(items) if items else 0.0
        assert m.elapsed_cycles() <= total + 1e-6
        assert m.elapsed_cycles() >= max(longest, total / threads) - 1e-6

    @given(costs)
    @settings(max_examples=30, deadline=None)
    def test_single_thread_is_serial_sum(self, items):
        m = SimMachine(1, FLAT)
        m.run_phase([{Category.EXECUTE: c} for c in items])
        assert m.elapsed_cycles() == pytest.approx(sum(items))

    @given(costs, st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_idle_accounts_for_imbalance(self, items, threads):
        """threads x makespan = busy + idle (+barrier overhead, zero here)."""
        m = SimMachine(threads, FLAT)
        m.run_phase([{Category.EXECUTE: c} for c in items])
        lhs = threads * m.elapsed_cycles()
        rhs = m.stats.total()
        assert lhs == pytest.approx(rhs)


class TestAsyncProperties:
    @given(
        st.dictionaries(st.integers(0, 15), st.floats(1.0, 500.0), min_size=1),
        st.integers(1, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_independent_tasks_conservation(self, durations, threads):
        m = SimMachine(threads)

        def step(task):
            return {Category.EXECUTE: durations[task]}, []

        n = simulate_async(m, list(durations), key=lambda t: t, step=step)
        assert n == len(durations)
        assert m.stats.total(Category.EXECUTE) == pytest.approx(sum(durations.values()))
        total = sum(durations.values())
        longest = max(durations.values())
        assert m.elapsed_cycles() >= max(longest, total / threads) - 1e-6
        assert m.elapsed_cycles() <= total + 1e-6

    @given(
        st.lists(st.floats(1.0, 100.0), min_size=1, max_size=12),
        st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_chain_takes_exactly_sum(self, durations, threads):
        """A dependence chain cannot be sped up by threads."""
        m = SimMachine(threads)
        table = dict(enumerate(durations))

        def step(task):
            children = [task + 1] if task + 1 in table else []
            return {Category.EXECUTE: table[task]}, children

        simulate_async(m, [0], key=lambda t: t, step=step)
        assert m.elapsed_cycles() == pytest.approx(sum(durations))
