"""Property-based serializability: random ordered task systems.

Hypothesis generates small random ordered algorithms — random rw-sets over
a handful of cells, random (unique) priorities, random task creation — and
every executor must produce exactly the per-cell access sequences of the
serial priority-order execution.  This hunts interleaving bugs the
hand-written apps might never trigger.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AlgorithmProperties, SimMachine
from repro.core import OrderedAlgorithm
from repro.runtime import (
    run_ikdg,
    run_kdg_rna,
    run_level_by_level,
    run_serial,
    run_speculation,
)

NUM_CELLS = 5


@st.composite
def task_systems(draw):
    """A list of root tasks: (priority, rw-cells, children).

    The generated systems *actually satisfy* the properties they declare:
    children carry strictly later priorities (monotonic) and their rw-sets
    are non-empty subsets of the parent's (structure-based), which together
    make the system stable-source.  Every priority is unique, so the serial
    order is well defined.
    """
    n_roots = draw(st.integers(1, 8))
    counter = [0]

    def fresh_priority(lo):
        counter[0] += 1
        return lo + counter[0]

    def make_task(depth, lo, allowed_cells):
        priority = fresh_priority(lo)
        cells = draw(
            st.lists(st.sampled_from(allowed_cells), min_size=1, max_size=3,
                     unique=True)
        )
        children = []
        if depth < 2:
            for _ in range(draw(st.integers(0, 2))):
                # Structure-based: the child's rw-set nests in the parent's.
                children.append(make_task(depth + 1, priority, cells))
        return {"priority": priority, "cells": cells, "children": children}

    all_cells = list(range(NUM_CELLS))
    return [make_task(0, 0, all_cells) for _ in range(n_roots)]


class Recorder:
    """Executes a task system, logging accesses per cell."""

    def __init__(self, roots):
        self.roots = roots
        self.logs = [[] for _ in range(NUM_CELLS)]

    def algorithm(self) -> OrderedAlgorithm:
        def visit(task, ctx):
            for cell in task["cells"]:
                ctx.write(("cell", cell))

        def body(task, ctx):
            ctx.work(20 + 10 * task["priority"] % 50)
            for cell in task["cells"]:
                ctx.access(("cell", cell))
                self.logs[cell].append(task["priority"])
            for child in task["children"]:
                ctx.push(child)

        return OrderedAlgorithm(
            name="random-system",
            initial_items=self.roots,
            priority=lambda task: task["priority"],
            visit_rw_sets=visit,
            apply_update=body,
            properties=AlgorithmProperties(
                stable_source=True, monotonic=True,
                structure_based_rw_sets=True,
            ),
        )


def serial_logs(roots):
    recorder = Recorder(roots)
    run_serial(recorder.algorithm())
    return recorder.logs


@settings(max_examples=40, deadline=None)
@given(task_systems(), st.integers(1, 6))
def test_kdg_rna_async_serializable(roots, threads):
    expected = serial_logs(roots)
    recorder = Recorder(roots)
    run_kdg_rna(recorder.algorithm(), SimMachine(threads), check_safety=True)
    assert recorder.logs == expected


@settings(max_examples=40, deadline=None)
@given(task_systems(), st.integers(1, 6))
def test_kdg_rna_rounds_serializable(roots, threads):
    expected = serial_logs(roots)
    recorder = Recorder(roots)
    run_kdg_rna(
        recorder.algorithm(), SimMachine(threads),
        asynchronous=False, check_safety=True,
    )
    assert recorder.logs == expected


@settings(max_examples=40, deadline=None)
@given(task_systems(), st.integers(1, 6))
def test_ikdg_serializable(roots, threads):
    expected = serial_logs(roots)
    recorder = Recorder(roots)
    run_ikdg(recorder.algorithm(), SimMachine(threads), checked=True)
    assert recorder.logs == expected


@settings(max_examples=25, deadline=None)
@given(task_systems(), st.integers(1, 4))
def test_level_by_level_serializable(roots, threads):
    expected = serial_logs(roots)
    recorder = Recorder(roots)
    run_level_by_level(recorder.algorithm(), SimMachine(threads))
    assert recorder.logs == expected


@settings(max_examples=25, deadline=None)
@given(task_systems(), st.integers(1, 4))
def test_speculation_serializable(roots, threads):
    expected = serial_logs(roots)
    recorder = Recorder(roots)
    run_speculation(recorder.algorithm(), SimMachine(threads))
    assert recorder.logs == expected


@settings(max_examples=25, deadline=None)
@given(task_systems())
def test_executed_counts_agree(roots):
    def count(task):
        return 1 + sum(count(c) for c in task["children"])

    total = sum(count(r) for r in roots)
    recorder = Recorder(roots)
    result = run_ikdg(recorder.algorithm(), SimMachine(3))
    assert result.executed == total
