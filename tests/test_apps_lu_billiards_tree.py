"""Domain tests for LU, Billiards and tree traversal."""

import math

import numpy as np
import pytest

from repro import SimMachine
from repro.apps import billiards, lu, treesum
from repro.apps.lu import kernels
from repro.inputs import sparse_blocked_matrix, symbolic_fill
from repro.runtime import run_serial


class TestLUKernels:
    def test_lu0_factorization(self):
        rng = np.random.RandomState(0)
        a = rng.rand(6, 6) + 6 * np.eye(6)
        packed = a.copy()
        kernels.lu0(packed)
        lower, upper = kernels.unpack_lu(packed)
        assert np.allclose(lower @ upper, a)

    def test_lu0_zero_pivot_raises(self):
        with pytest.raises(ZeroDivisionError):
            kernels.lu0(np.zeros((3, 3)))

    def test_fwd_solves_lower_system(self):
        rng = np.random.RandomState(1)
        a = rng.rand(5, 5) + 5 * np.eye(5)
        packed = a.copy()
        kernels.lu0(packed)
        lower, _ = kernels.unpack_lu(packed)
        b = rng.rand(5, 5)
        x = b.copy()
        kernels.fwd(packed, x)
        assert np.allclose(lower @ x, b)

    def test_bdiv_solves_upper_system(self):
        rng = np.random.RandomState(2)
        a = rng.rand(5, 5) + 5 * np.eye(5)
        packed = a.copy()
        kernels.lu0(packed)
        _, upper = kernels.unpack_lu(packed)
        b = rng.rand(5, 5)
        x = b.copy()
        kernels.bdiv(packed, x)
        assert np.allclose(x @ upper, b)

    def test_bmod_update(self):
        rng = np.random.RandomState(3)
        a_ik, a_kj = rng.rand(4, 4), rng.rand(4, 4)
        a_ij = rng.rand(4, 4)
        expected = a_ij - a_ik @ a_kj
        kernels.bmod(a_ik, a_kj, a_ij)
        assert np.allclose(a_ij, expected)


class TestLUApp:
    def test_symbolic_fill_allocates(self):
        mat = sparse_blocked_matrix(10, 4, bandwidth=1, extra_density=0.2, seed=1)
        before = mat.nnz_blocks()
        fill = symbolic_fill(mat)
        assert mat.nnz_blocks() == before + fill

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_factorization_residual(self, seed):
        state = lu.make_state(8, 5, seed=seed)
        run_serial(lu.make_algorithm(state), SimMachine(1))
        state.validate()  # checks ||LU - A|| small

    def test_task_mix(self):
        state = lu.make_state(6, 4, seed=0)
        result = run_serial(lu.make_algorithm(state), SimMachine(1))
        assert state.tasks_run["lu0"] == 6
        assert result.executed == sum(state.tasks_run.values())
        assert state.tasks_run["bmod"] >= state.tasks_run["fwd"]

    def test_manual_matches_serial_factors(self):
        a = lu.make_state(7, 4, seed=4)
        run_serial(lu.make_algorithm(a), SimMachine(1))
        b = lu.make_state(7, 4, seed=4)
        lu.run_manual(b, SimMachine(4))
        assert a.snapshot() == b.snapshot()

    def test_rw_set_nesting(self):
        """Child rw-sets must be subsets of the parent's (structure-based)."""
        state = lu.make_state(6, 4, seed=0)
        algorithm = lu.make_algorithm(state)
        factory = algorithm.task_factory()
        parent = factory.make(("lu0", 2))
        parent_rw = set(algorithm.compute_rw_set(parent))
        for j in state.row_blocks(2):
            child = factory.make(("fwd", 2, j))
            assert set(algorithm.compute_rw_set(child)) <= parent_rw
        for i in state.col_blocks(2):
            child = factory.make(("bdiv", 2, i))
            assert set(algorithm.compute_rw_set(child)) <= parent_rw

    def test_priorities_order_stages_and_types(self):
        state = lu.make_state(5, 4, seed=0)
        algorithm = lu.make_algorithm(state)
        p = algorithm.priority
        assert p(("lu0", 0)) < p(("fwd", 0, 1)) < p(("bmod", 0, 1, 1)) < p(("lu0", 1))


class TestBilliards:
    @pytest.fixture()
    def state(self):
        return billiards.make_state(16, end_time=8.0, seed=2)

    def test_energy_conserved(self, state):
        initial = float((state.vel**2).sum())
        run_serial(billiards.make_algorithm(state), SimMachine(1))
        assert float((state.vel**2).sum()) == pytest.approx(initial)

    def test_balls_stay_on_table(self, state):
        run_serial(billiards.make_algorithm(state), SimMachine(1))
        state.validate()

    def test_collisions_happen(self, state):
        run_serial(billiards.make_algorithm(state), SimMachine(1))
        assert state.collisions + state.wall_bounces > 0

    def test_momentum_changes_only_via_walls(self):
        # On a huge table (no wall hits within the horizon), total momentum
        # is conserved by ball-ball collisions.
        state = billiards.BilliardsState(
            12, table_size=200.0, end_time=5.0, seed=3
        )
        initial = state.vel.sum(axis=0).copy()
        run_serial(billiards.make_algorithm(state), SimMachine(1))
        if state.wall_bounces == 0:
            assert np.allclose(state.vel.sum(axis=0), initial)

    def test_pair_hit_symmetry(self, state):
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert state._pair_hit(a, b) == state._pair_hit(b, a)

    def test_pair_hit_separating_never(self):
        state = billiards.BilliardsState(2, table_size=50.0, end_time=10.0, seed=0)
        state.pos[0] = [10.0, 10.0]
        state.pos[1] = [12.0, 10.0]
        state.vel[0] = [-1.0, 0.0]
        state.vel[1] = [1.0, 0.0]
        assert state._pair_hit(0, 1) == math.inf

    def test_head_on_collision_time(self):
        state = billiards.BilliardsState(2, table_size=50.0, end_time=10.0, seed=0)
        state.pos[0] = [10.0, 10.0]
        state.pos[1] = [15.0, 10.0]
        state.vel[0] = [1.0, 0.0]
        state.vel[1] = [-1.0, 0.0]
        # Gap = 5 - 2r = 4, closing speed 2 -> hit at t = 2.
        assert state._pair_hit(0, 1) == pytest.approx(2.0)

    def test_stale_event_voids_and_repredicts(self):
        state = billiards.make_state(8, end_time=15.0, seed=4)
        event = state.predict(0)
        assert event is not None
        state.stamp[event[2]] += 1  # invalidate
        new_events, _ = state.process(event)
        assert state.void_events == 1
        # The owner's stamp did not change only if owner != event[2]...
        # either way processing must not crash and may re-predict.
        assert isinstance(new_events, list)

    def test_safe_against_sources_blocks_nearby(self):
        state = billiards.BilliardsState(3, table_size=60.0, end_time=50.0, seed=0)
        state.pos[:] = [[10.0, 10.0], [12.0, 10.0], [40.0, 40.0]]
        state.vel[:] = [[0.5, 0.0], [0.0, 0.0], [0.0, 0.1]]
        near = (5.0, billiards.simulation.BALL, 0, 1, 0, 0, 0)
        far_early = (1.0, billiards.simulation.WALL, 2, 0, 0, 0, 2)
        # Ball 2 is 40 units away; it cannot disturb the (0,1) event at t=5.
        assert state.is_safe_against_sources(near, [far_early])
        # But an earlier event *right next to* the pair is disqualifying.
        close_early = (4.9, billiards.simulation.WALL, 1, 0, 0, 0, 1)
        later = (5.0, billiards.simulation.BALL, 0, 1, 0, 0, 0)
        assert not state.is_safe_against_sources(later, [close_early])


class TestTreeSum:
    def test_tree_partitions_bodies(self):
        state = treesum.make_state(500, leaf_size=4, seed=1)
        leaf_members = np.concatenate(
            [state.tree.bodies[n] for n in state.tree.leaves()]
        )
        assert sorted(leaf_members.tolist()) == list(range(500))

    def test_leaf_size_respected(self):
        state = treesum.make_state(300, leaf_size=4, seed=2)
        for n in state.tree.leaves():
            assert len(state.tree.bodies[n]) <= 4

    def test_serial_summary_correct(self):
        state = treesum.make_state(400, leaf_size=8, seed=3)
        run_serial(treesum.make_algorithm(state), SimMachine(1))
        state.validate()

    def test_manual_matches_serial(self):
        a = treesum.make_state(400, leaf_size=8, seed=3)
        run_serial(treesum.make_algorithm(a), SimMachine(1))
        b = treesum.make_state(400, leaf_size=8, seed=3)
        treesum.run_manual(b, SimMachine(4))
        assert a.snapshot() == b.snapshot()

    def test_cilk_other_matches_serial(self):
        a = treesum.make_state(400, leaf_size=8, seed=3)
        run_serial(treesum.make_algorithm(a), SimMachine(1))
        b = treesum.make_state(400, leaf_size=8, seed=3)
        treesum.run_other(b, SimMachine(4))
        assert a.snapshot() == b.snapshot()

    def test_priority_is_deeper_first(self):
        state = treesum.make_state(200, leaf_size=4, seed=0)
        algorithm = treesum.make_algorithm(state)
        deepest = max(range(state.tree.num_nodes), key=lambda n: state.tree.depth[n])
        assert algorithm.priority(deepest) < algorithm.priority(0)  # root last

    def test_conventional_task_graph_properties(self):
        assert treesum.TREE_PROPERTIES.conventional_task_graph
        assert treesum.TREE_PROPERTIES.supports_asynchronous


class TestBilliardsPerBallTest:
    """The stricter per-ball bounded-lag test (kept as an alternative P)."""

    def test_earliest_event_always_safe(self):
        state = billiards.make_state(12, end_time=10.0, seed=1)
        event = min(state.initial_events())
        assert state.is_safe_event(event, min_time=event[0])

    def test_far_future_event_unsafe(self):
        state = billiards.make_state(12, end_time=50.0, seed=1)
        events = sorted(state.initial_events())
        if len(events) > 1 and events[-1][0] > events[0][0] + 5.0:
            assert not state.is_safe_event(events[-1], min_time=events[0][0])

    def test_reach_gap_decreases_with_lag(self):
        state = billiards.make_state(12, end_time=20.0, seed=2)
        event = sorted(state.initial_events())[-1]
        tight = state.reach_gap(event, min_time=event[0])
        loose = state.reach_gap(event, min_time=event[0] - 5.0)
        assert loose <= tight
