"""Unit tests for cycle accounting (repro.machine.stats)."""

import pytest

from repro.machine import Category, CycleStats


class TestCategory:
    def test_labels_match_paper_figures(self):
        assert Category.SAFETY_TEST.value == "SAFETY_TEST"
        assert Category.EXECUTE.value == "EXECUTE"
        assert Category.SCHEDULE.value == "SCHEDULE"
        assert Category.COMMIT.value == "COMMIT"
        assert Category.ABORT.value == "ABORT"

    def test_is_string_enum(self):
        assert isinstance(Category.EXECUTE, str)


class TestCycleStats:
    def test_requires_positive_thread_count(self):
        with pytest.raises(ValueError):
            CycleStats(0)

    def test_initial_totals_zero(self):
        stats = CycleStats(4)
        assert stats.total() == 0.0
        assert all(v == 0.0 for v in stats.breakdown().values())

    def test_charge_accumulates(self):
        stats = CycleStats(2)
        stats.charge(0, Category.EXECUTE, 100.0)
        stats.charge(0, Category.EXECUTE, 50.0)
        stats.charge(1, Category.SCHEDULE, 30.0)
        assert stats.total(Category.EXECUTE) == 150.0
        assert stats.total(Category.SCHEDULE) == 30.0
        assert stats.total() == 180.0

    def test_negative_charge_rejected(self):
        stats = CycleStats(1)
        with pytest.raises(ValueError):
            stats.charge(0, Category.EXECUTE, -1.0)

    def test_thread_total_excluding_idle(self):
        stats = CycleStats(1)
        stats.charge(0, Category.EXECUTE, 10.0)
        stats.charge(0, Category.IDLE, 5.0)
        assert stats.thread_total(0) == 15.0
        assert stats.thread_total(0, include_idle=False) == 10.0

    def test_breakdown_sums_threads(self):
        stats = CycleStats(3)
        for tid in range(3):
            stats.charge(tid, Category.EXECUTE, 10.0)
        assert stats.breakdown()[Category.EXECUTE] == 30.0

    def test_fractions_sum_to_one(self):
        stats = CycleStats(2)
        stats.charge(0, Category.EXECUTE, 75.0)
        stats.charge(1, Category.COMMIT, 25.0)
        fractions = stats.fractions()
        assert fractions[Category.EXECUTE] == pytest.approx(0.75)
        assert fractions[Category.COMMIT] == pytest.approx(0.25)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_fractions_restricted_categories(self):
        stats = CycleStats(1)
        stats.charge(0, Category.EXECUTE, 60.0)
        stats.charge(0, Category.IDLE, 40.0)
        only_exec = stats.fractions([Category.EXECUTE, Category.COMMIT])
        assert only_exec[Category.EXECUTE] == pytest.approx(1.0)
        assert Category.IDLE not in only_exec

    def test_fractions_of_empty_stats(self):
        stats = CycleStats(1)
        assert all(v == 0.0 for v in stats.fractions().values())

    def test_reclassify_moves_cycles(self):
        stats = CycleStats(1)
        stats.charge(0, Category.EXECUTE, 100.0)
        stats.reclassify(0, Category.EXECUTE, Category.ABORT, 40.0)
        assert stats.total(Category.EXECUTE) == 60.0
        assert stats.total(Category.ABORT) == 40.0
        assert stats.total() == 100.0

    def test_reclassify_clamps_to_available(self):
        stats = CycleStats(1)
        stats.charge(0, Category.EXECUTE, 10.0)
        stats.reclassify(0, Category.EXECUTE, Category.ABORT, 99.0)
        assert stats.total(Category.EXECUTE) == 0.0
        assert stats.total(Category.ABORT) == 10.0

    def test_merge(self):
        a = CycleStats(2)
        b = CycleStats(2)
        a.charge(0, Category.EXECUTE, 10.0)
        b.charge(0, Category.EXECUTE, 5.0)
        b.charge(1, Category.SCHEDULE, 7.0)
        a.merge(b)
        assert a.total(Category.EXECUTE) == 15.0
        assert a.total(Category.SCHEDULE) == 7.0

    def test_merge_rejects_mismatched_threads(self):
        with pytest.raises(ValueError):
            CycleStats(2).merge(CycleStats(3))


class TestCommitCounters:
    def test_initially_zero(self):
        stats = CycleStats(3)
        assert stats.commits_by_thread() == [0, 0, 0]
        assert stats.total_commits() == 0

    def test_record_commit_accumulates_per_thread(self):
        stats = CycleStats(2)
        stats.record_commit(0)
        stats.record_commit(1, count=3)
        stats.record_commit(1)
        assert stats.commits_by_thread() == [1, 4]
        assert stats.total_commits() == 5

    def test_negative_count_rejected(self):
        stats = CycleStats(1)
        with pytest.raises(ValueError):
            stats.record_commit(0, count=-1)

    def test_commits_by_thread_returns_copy(self):
        stats = CycleStats(1)
        stats.record_commit(0)
        snapshot = stats.commits_by_thread()
        snapshot[0] = 99
        assert stats.commits_by_thread() == [1]

    def test_merge_adds_commits(self):
        a, b = CycleStats(2), CycleStats(2)
        a.record_commit(0)
        b.record_commit(0)
        b.record_commit(1, count=2)
        a.merge(b)
        assert a.commits_by_thread() == [2, 2]
