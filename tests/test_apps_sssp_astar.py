"""Tests for the relaxed-executor flagship apps: SSSP and A*.

Both apps validate against the textbook Dijkstra reference, so the
reference itself gets direct coverage here (hand-checked graphs, grid
symmetry, unreachable nodes), then the ordered formulations are checked
against it under the serial executor and the relaxed modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import astar, sssp
from repro.apps.sssp import dijkstra_distances, make_grid_state
from repro.galois.graphs import CSRGraph
from repro.machine import SimMachine
from repro.runtime import run_serial
from repro.runtime.base import RunConfig


def _graph(num_nodes, edges):
    """Build a CSRGraph from (src, dst, weight) triples (directed)."""
    adjacency = [[] for _ in range(num_nodes)]
    for src, dst, weight in edges:
        adjacency[src].append((dst, weight))
    indptr = [0]
    column_ids = []
    weights = []
    for row in adjacency:
        for dst, weight in row:
            column_ids.append(dst)
            weights.append(weight)
        indptr.append(len(column_ids))
    return CSRGraph(
        num_nodes,
        np.asarray(indptr, dtype=np.int64),
        np.asarray(column_ids, dtype=np.int64),
        edge_weights=np.asarray(weights, dtype=np.int64),
    )


class TestDijkstraReference:
    def test_hand_checked_graph(self):
        # 0 -> 1 (4), 0 -> 2 (1), 2 -> 1 (2), 1 -> 3 (1): best 0->1 is 3.
        graph = _graph(4, [(0, 1, 4), (0, 2, 1), (2, 1, 2), (1, 3, 1)])
        dist = dijkstra_distances(graph, 0)
        assert dist.tolist() == [0, 3, 1, 4]

    def test_unreachable_nodes_stay_minus_one(self):
        graph = _graph(3, [(0, 1, 5)])
        assert dijkstra_distances(graph, 0).tolist() == [0, 5, -1]

    def test_unweighted_grid_is_manhattan(self):
        # max_weight=1 degenerates to BFS hop counts on the grid.
        state = make_grid_state(5, 4, max_weight=1, seed=0)
        dist = dijkstra_distances(state.graph, 0)
        for node in range(20):
            assert dist[node] == node % 5 + node // 5


class TestSSSPApp:
    def test_spec_flags(self):
        algorithm = sssp.SPEC.algorithm(sssp.SPEC.make_tiny_fn())
        assert algorithm.relaxable
        assert algorithm.level_of is not None
        assert sssp.SPEC.relaxed_delta == sssp.DEFAULT_DELTA

    def test_serial_run_matches_dijkstra(self):
        state = make_grid_state(12, 9, seed=2)
        run_serial(sssp.SPEC.algorithm(state), SimMachine(1))
        state.validate()  # labels == Dijkstra, checked internally

    def test_validate_rejects_wrong_labels(self):
        state = make_grid_state(6, 6, seed=0)
        run_serial(sssp.SPEC.algorithm(state), SimMachine(1))
        state.dist[7] += 1
        with pytest.raises(AssertionError, match="differ from Dijkstra"):
            state.validate()


class TestAStarApp:
    def test_spec_flags(self):
        algorithm = astar.SPEC.algorithm(astar.SPEC.make_tiny_fn())
        assert algorithm.relaxable
        assert algorithm.level_of is not None
        assert not astar.SPEC.deterministic_task_set

    def test_heuristic_is_consistent_on_grid(self):
        state = astar.SPEC.make_tiny_fn()
        graph = state.graph
        for node in range(graph.num_nodes):
            h = state.heuristic(node)
            for eid in graph.edge_range(node):
                neighbor = int(graph.column_ids[eid])
                w = int(graph.edge_weights[eid])
                assert h <= w + state.heuristic(neighbor)
        assert state.heuristic(state.goal) == 0

    def test_goal_label_is_shortest_path(self):
        state = astar.make_grid_state(12, 12, seed=4)
        run_serial(astar.SPEC.algorithm(state), SimMachine(1))
        expect = dijkstra_distances(state.graph, state.start)
        assert state.g[state.goal] == expect[state.goal]
        state.validate()

    def test_goal_pruning_drops_unimprovable_tasks(self):
        # Once the goal is labelled, a task whose f-value meets or exceeds
        # that label must neither write its node nor push children.
        state = astar.make_grid_state(6, 6, seed=4)
        algorithm = astar.SPEC.algorithm(state)
        state.g[state.goal] = 10

        class Ctx:
            pushed = []

            def access(self, loc):
                pass

            def work(self, cycles):
                pass

            def push(self, item):
                self.pushed.append(item)

        node = 1  # h(1) = manhattan to the far corner = 9
        algorithm.apply_update((node, 1), Ctx())  # f = 1 + 9 >= 10: pruned
        assert state.g[node] == -1
        assert Ctx.pushed == []
        algorithm.apply_update((node, 0), Ctx())  # f = 9 < 10: expands
        assert state.g[node] == 0
        assert Ctx.pushed != []

    def test_relaxed_modes_preserve_goal_optimality(self):
        from repro.runtime import run_relaxed

        for config in (RunConfig(relaxation=4), RunConfig(delta=astar.DEFAULT_DELTA)):
            state = astar.make_grid_state(16, 16, seed=3)
            run_relaxed(astar.SPEC.algorithm(state), SimMachine(4), config)
            state.validate()
