"""Smoke tests for the benchmark harness, especially baseline loading.

``benchmarks/results/*.json`` are build artifacts — a fresh clone has
none, and a previously-aborted benchmark can leave a truncated file.
:func:`benchmarks.harness.load_baseline` must tolerate both instead of
raising mid-collection.
"""

from __future__ import annotations

import pytest

from benchmarks import harness


class TestLoadBaseline:
    def test_missing_baseline_returns_none(self, tmp_path, monkeypatch):
        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        assert harness.load_baseline("fig99") is None

    def test_missing_baseline_required_skips_with_message(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        with pytest.raises(pytest.skip.Exception, match="fig99"):
            harness.load_baseline("fig99", required=True)

    def test_roundtrip_through_save_results(self, tmp_path, monkeypatch):
        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        payload = {"threads": [1, 4], "series": {"serial": [1.0, 1.0]}}
        path = harness.save_results("fig42", payload)
        assert path.parent == tmp_path
        assert harness.load_baseline("fig42") == payload
        assert harness.load_baseline("fig42", required=True) == payload

    def test_corrupt_baseline_returns_none(self, tmp_path, monkeypatch):
        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        (tmp_path / "fig13.json").write_text('{"truncated": ')
        assert harness.load_baseline("fig13") is None
        with pytest.raises(pytest.skip.Exception, match="unreadable"):
            harness.load_baseline("fig13", required=True)

    def test_directory_shadowing_name_returns_none(self, tmp_path, monkeypatch):
        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        (tmp_path / "fig7.json").mkdir()
        assert harness.load_baseline("fig7") is None


class TestHarnessRun:
    def test_run_validates_and_returns_result(self):
        result = harness.run("treesum", "serial", 1)
        assert result.executed > 0
        assert result.executor == "serial"

    def test_make_state_sizes_differ(self):
        small = harness.make_state("lu", "small")
        large = harness.make_state("lu", "large")
        assert small.snapshot() != large.snapshot()
