"""Fixture: a non-cautious body — it writes shared state before declaring
its accesses, so the read-only prefix does not cover the update."""

from repro.core.algorithm import OrderedAlgorithm
from repro.core.properties import AlgorithmProperties


def make_algorithm(state):
    def priority(item):
        return item

    def visit_rw_sets(item, ctx):
        ctx.write(("node", item))

    def apply_update(item, ctx):
        state.value[item] += 1
        ctx.access(("node", item))  # LINT-ANCHOR
        ctx.work(1.0)

    return OrderedAlgorithm(
        name="fixture-cautious-bad",
        initial_items=list(state.nodes),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=AlgorithmProperties(stable_source=True),
    )
