"""Fixture: a safe-source test on a ``stable_source`` algorithm — the test
is dead code (Definition 1 declares every source safe)."""

from repro.core.algorithm import OrderedAlgorithm
from repro.core.properties import AlgorithmProperties


def make_algorithm(state):
    def priority(item):
        return item

    def visit_rw_sets(item, ctx):
        ctx.write(("node", item))

    def apply_update(item, ctx):
        ctx.access(("node", item))
        state.value[item] += 1
        ctx.work(1.0)

    def always_safe(task, view):
        return True

    return OrderedAlgorithm(
        name="fixture-unused-bad",
        initial_items=list(state.nodes),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=AlgorithmProperties(stable_source=True),
        safe_source_test=always_safe,  # LINT-ANCHOR
    )
