"""Fixture: a ``max(...)`` clamp that does *not* include the parent's
time-stamp — every arm subtracts from it, so the child can still precede
its parent although the algorithm declares ``monotonic`` (Definition 2)."""

from repro.core.algorithm import OrderedAlgorithm
from repro.core.properties import AlgorithmProperties


def make_algorithm(state):
    def priority(item):
        return item[0]

    def visit_rw_sets(item, ctx):
        time, node = item
        ctx.write(("node", node))

    def apply_update(item, ctx):
        time, node = item
        ctx.access(("node", node))
        state.done[node] = time
        ctx.work(1.0)
        ctx.push((max(time - 1, time - state.delay), node + 1))  # LINT-ANCHOR

    return OrderedAlgorithm(
        name="fixture-monotonic-max-bad",
        initial_items=list(state.events),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=AlgorithmProperties(stable_source=True, monotonic=True),
    )
