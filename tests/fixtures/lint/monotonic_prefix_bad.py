"""Fixture: the pushed item decrements the priority-determining component —
the child *provably* precedes its parent (Definition 2), no heuristic
needed; the symbolic comparator fires the rule on its own."""

from repro.core.algorithm import OrderedAlgorithm
from repro.core.properties import AlgorithmProperties


def make_algorithm(state):
    def priority(item):
        return item[0]

    def visit_rw_sets(item, ctx):
        time, node = item
        ctx.write(("node", node))

    def apply_update(item, ctx):
        time, node = item
        ctx.access(("node", node))
        state.done[node] = time
        ctx.work(1.0)
        ctx.push((time - 1, node))  # LINT-ANCHOR

    return OrderedAlgorithm(
        name="fixture-monotonic-prefix-bad",
        initial_items=list(state.events),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=AlgorithmProperties(stable_source=True, monotonic=True),
    )
