"""Fixture: structure-based rw-sets — the visitor reads only immutable
structure (``state.links`` is never written by the body)."""

from repro.core.algorithm import OrderedAlgorithm
from repro.core.properties import AlgorithmProperties


def make_algorithm(state):
    def priority(item):
        return item

    def visit_rw_sets(item, ctx):
        ctx.write(("node", item))
        for other in state.links[item]:
            ctx.read(("node", other))

    def apply_update(item, ctx):
        ctx.access(("node", item))
        for other in state.links[item]:
            ctx.access(("node", other))
        state.value[item] += 1
        ctx.work(1.0)

    return OrderedAlgorithm(
        name="fixture-structure-good",
        initial_items=list(state.nodes),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=AlgorithmProperties(
            stable_source=True, structure_based_rw_sets=True
        ),
    )
