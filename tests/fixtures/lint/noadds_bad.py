"""Fixture: a body that pushes a new task although the algorithm declares
``no_new_tasks`` (No-Adds, §3.6.2)."""

from repro.core.algorithm import OrderedAlgorithm
from repro.core.properties import AlgorithmProperties


def make_algorithm(state):
    def priority(item):
        return item

    def visit_rw_sets(item, ctx):
        ctx.write(("node", item))

    def apply_update(item, ctx):
        ctx.access(("node", item))
        state.value[item] += 1
        ctx.work(1.0)
        ctx.push(item + 1)  # LINT-ANCHOR

    return OrderedAlgorithm(
        name="fixture-noadds-bad",
        initial_items=list(state.nodes),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=AlgorithmProperties(stable_source=True, no_new_tasks=True),
    )
