"""Fixture: the pushed item copies the priority-determining tuple prefix
verbatim — the child's priority provably equals its parent's, although the
subtraction heuristic alone would flag the payload's ``node - 1``."""

from repro.core.algorithm import OrderedAlgorithm
from repro.core.properties import AlgorithmProperties


def make_algorithm(state):
    def priority(item):
        return item[0]

    def visit_rw_sets(item, ctx):
        time, node = item
        ctx.write(("node", node))

    def apply_update(item, ctx):
        time, node = item
        ctx.access(("node", node))
        state.done[node] = time
        ctx.work(1.0)
        ctx.push((time, node - 1))

    return OrderedAlgorithm(
        name="fixture-monotonic-prefix-good",
        initial_items=list(state.events),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=AlgorithmProperties(stable_source=True, monotonic=True),
    )
