"""Fixture: an unstable-source algorithm whose safe-source test is real —
every declared property takes effect."""

from repro.core.algorithm import OrderedAlgorithm
from repro.core.properties import AlgorithmProperties


def make_algorithm(state):
    def priority(item):
        return item

    def visit_rw_sets(item, ctx):
        ctx.write(("node", item))

    def apply_update(item, ctx):
        ctx.access(("node", item))
        state.value[item] += 1
        ctx.work(1.0)

    def earliest_only(task, view):
        return view.min_priority is None or task.priority <= view.min_priority

    return OrderedAlgorithm(
        name="fixture-unused-good",
        initial_items=list(state.nodes),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=AlgorithmProperties(stable_source=False),
        safe_source_test=earliest_only,
    )
