"""Unsound fixture: declares ``structure_based_rw_sets`` but the body
rewrites the adjacency structure the rw-set visitor reads — rw-sets are
data-dependent, so neither clause of Definition 4 can hold."""

from repro.core.algorithm import OrderedAlgorithm
from repro.core.properties import AlgorithmProperties


def make_algorithm(state):
    def priority(item):
        return item[0]

    def visit_rw_sets(item, ctx):
        time, node = item
        for other in state.adj[node]:
            ctx.write(("node", other))

    def apply_update(item, ctx):
        time, node = item
        ctx.access(("node", node))
        state.adj[node] = []  # INFER-ANCHOR
        state.done[node] = time
        ctx.work(1.0)

    return OrderedAlgorithm(
        name="fixture-unsound-structure",
        initial_items=list(state.events),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=AlgorithmProperties(structure_based_rw_sets=True),
    )
