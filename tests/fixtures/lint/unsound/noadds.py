"""Unsound fixture: declares ``no_new_tasks`` but pushes a child through an
interprocedural helper the abstract interpreter must follow (the syntactic
linter only sees ``ctx.push`` spelled out in the body itself)."""

from repro.core.algorithm import OrderedAlgorithm
from repro.core.properties import AlgorithmProperties


def schedule_child(ctx, time, node):
    ctx.push((time + 1, node + 1))  # INFER-ANCHOR


def make_algorithm(state):
    def priority(item):
        return item[0]

    def visit_rw_sets(item, ctx):
        time, node = item
        ctx.write(("node", node))

    def apply_update(item, ctx):
        time, node = item
        ctx.access(("node", node))
        state.done[node] = time
        ctx.work(1.0)
        schedule_child(ctx, time, node)

    return OrderedAlgorithm(
        name="fixture-unsound-noadds",
        initial_items=list(state.events),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=AlgorithmProperties(
            structure_based_rw_sets=True, no_new_tasks=True
        ),
    )
