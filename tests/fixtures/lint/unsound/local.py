"""Unsound fixture: declares ``local_safe_source_test`` but the test reads
``view.min_priority`` — it consults global source information, so it cannot
be fused with execution (§3.6.3)."""

from repro.core.algorithm import OrderedAlgorithm
from repro.core.properties import AlgorithmProperties


def make_algorithm(state):
    def priority(item):
        return item[0]

    def safe_source_test(task, view):
        return task.item[0] <= view.min_priority  # INFER-ANCHOR

    def visit_rw_sets(item, ctx):
        time, node = item
        ctx.write(("node", node))

    def apply_update(item, ctx):
        time, node = item
        ctx.access(("node", node))
        state.done[node] = time
        ctx.work(1.0)
        ctx.push((time + state.delay, node + 1))

    return OrderedAlgorithm(
        name="fixture-unsound-local",
        initial_items=list(state.events),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        safe_source_test=safe_source_test,
        properties=AlgorithmProperties(
            local_safe_source_test=True, structure_based_rw_sets=True
        ),
    )
