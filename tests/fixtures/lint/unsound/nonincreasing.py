"""Unsound fixture: declares ``non_increasing_rw_sets`` but the body grows
the edge lists the rw-set visitor iterates — a pending task's rw-set can
gain locations when this task commits (Definition 3 is refuted)."""

from repro.core.algorithm import OrderedAlgorithm
from repro.core.properties import AlgorithmProperties


def make_algorithm(state):
    def priority(item):
        return item[0]

    def visit_rw_sets(item, ctx):
        time, node = item
        for other in state.edges[node]:
            ctx.write(("node", other))

    def apply_update(item, ctx):
        time, node = item
        ctx.access(("node", node))
        state.done[node] = time
        ctx.work(1.0)
        state.edges[node + 1].append(node)  # INFER-ANCHOR

    return OrderedAlgorithm(
        name="fixture-unsound-nonincreasing",
        initial_items=list(state.events),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=AlgorithmProperties(non_increasing_rw_sets=True),
    )
