"""Unsound fixture: declares ``monotonic`` but every child is scheduled one
tick *before* its parent — the symbolic comparator proves the decrease."""

from repro.core.algorithm import OrderedAlgorithm
from repro.core.properties import AlgorithmProperties


def make_algorithm(state):
    def priority(item):
        return item[0]

    def visit_rw_sets(item, ctx):
        time, node = item
        ctx.write(("node", node))

    def apply_update(item, ctx):
        time, node = item
        ctx.access(("node", node))
        state.done[node] = time
        ctx.work(1.0)
        ctx.push((time - 1, node + 1))  # INFER-ANCHOR

    return OrderedAlgorithm(
        name="fixture-unsound-monotonic",
        initial_items=list(state.events),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=AlgorithmProperties(
            monotonic=True, structure_based_rw_sets=True
        ),
    )
