"""Unsound fixture: declares ``stable_source`` but pushes a child that
provably precedes its parent — an executing source can retroactively gain a
predecessor, so sources are not safe at scheduling time (Definition 1)."""

from repro.core.algorithm import OrderedAlgorithm
from repro.core.properties import AlgorithmProperties


def make_algorithm(state):
    def priority(item):
        return item[0]

    def visit_rw_sets(item, ctx):
        time, node = item
        ctx.write(("node", node))

    def apply_update(item, ctx):
        time, node = item
        ctx.access(("node", node))
        state.done[node] = time
        ctx.work(1.0)
        ctx.push((time - 1, node + 1))  # INFER-ANCHOR

    return OrderedAlgorithm(
        name="fixture-unsound-stable",
        initial_items=list(state.events),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=AlgorithmProperties(
            stable_source=True, structure_based_rw_sets=True
        ),
    )
