"""Fixture: a body that pushes a child scheduled *before* its parent's
time-stamp although the algorithm declares ``monotonic`` (Definition 2)."""

from repro.core.algorithm import OrderedAlgorithm
from repro.core.properties import AlgorithmProperties


def make_algorithm(state):
    def priority(item):
        return item

    def visit_rw_sets(item, ctx):
        time, node = item
        ctx.write(("node", node))

    def apply_update(item, ctx):
        time, node = item
        ctx.access(("node", node))
        state.done[node] = time
        ctx.work(1.0)
        ctx.push((time - state.delay, node + 1))  # LINT-ANCHOR

    return OrderedAlgorithm(
        name="fixture-monotonic-bad",
        initial_items=list(state.events),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=AlgorithmProperties(stable_source=True, monotonic=True),
    )
