"""Unit tests for the implicit KDG executor and its windowing."""

import pytest

from repro import AlgorithmProperties, SimMachine
from repro.core import LivenessViolation, OrderedAlgorithm
from repro.runtime import AdaptiveWindow, run_ikdg, run_serial

from .helpers import ChainCounter


class TestAdaptiveWindow:
    def test_first_size_targets_per_thread_occupancy(self):
        # The first window must already meet the starvation threshold of
        # next_size: target_per_thread × threads, not merely one per thread.
        policy = AdaptiveWindow(initial=4)
        assert policy.first_size(16) == 64
        assert policy.first_size(1) == 4

    def test_first_size_keeps_larger_initial(self):
        policy = AdaptiveWindow(initial=256)
        assert policy.first_size(8) == 256

    def test_first_size_clamped_to_max(self):
        policy = AdaptiveWindow(initial=4, max_size=24)
        assert policy.first_size(16) == 24

    def test_grows_when_starved(self):
        policy = AdaptiveWindow()
        assert policy.next_size(64, committed=2, num_threads=8) == 128

    def test_stays_when_fed(self):
        policy = AdaptiveWindow(target_per_thread=4)
        assert policy.next_size(64, committed=64, num_threads=8) == 64

    def test_committed_exactly_at_target_stays(self):
        policy = AdaptiveWindow(target_per_thread=4)
        assert policy.next_size(64, committed=32, num_threads=8) == 64

    def test_one_below_target_grows(self):
        policy = AdaptiveWindow(target_per_thread=4)
        assert policy.next_size(64, committed=31, num_threads=8) == 128

    def test_capped_at_max(self):
        policy = AdaptiveWindow(max_size=100)
        assert policy.next_size(80, committed=0, num_threads=8) == 100

    def test_growth_truncates_toward_zero(self):
        policy = AdaptiveWindow(growth=1.5)
        assert policy.next_size(3, committed=0, num_threads=8) == 4

    def test_at_max_stays_at_max(self):
        policy = AdaptiveWindow(max_size=128)
        assert policy.next_size(128, committed=0, num_threads=8) == 128

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveWindow(initial=0)
        with pytest.raises(ValueError):
            AdaptiveWindow(growth=1.0)


class TestIKDG:
    def test_matches_serial_state(self):
        serial = ChainCounter(cells=4, steps=6)
        run_serial(serial.algorithm())
        parallel = ChainCounter(cells=4, steps=6)
        result = run_ikdg(parallel.algorithm(), SimMachine(3))
        assert parallel.sums == serial.sums
        assert result.executed == 24

    def test_conflicting_tasks_serialize_in_priority_order(self):
        app = ChainCounter(cells=1, steps=5)
        run_ikdg(app.algorithm(), SimMachine(4))
        assert app.history == sorted(app.history)

    def test_small_window_forces_more_rounds(self):
        few = ChainCounter(cells=16, steps=1)
        many = ChainCounter(cells=16, steps=1)
        small = run_ikdg(
            few.algorithm(), SimMachine(2),
            window_policy=AdaptiveWindow(initial=2, growth=1.001, max_size=2),
        )
        large = run_ikdg(
            many.algorithm(), SimMachine(2),
            window_policy=AdaptiveWindow(initial=64),
        )
        assert small.rounds > large.rounds

    def test_prefix_condition_pulls_child_into_window(self):
        """A child earlier than the window max must run inside the window."""
        # Cell chains with interleaved priorities: children (step+1) have
        # priority below other cells' initial tasks when steps differ.
        app = ChainCounter(cells=2, steps=3)
        result = run_ikdg(app.algorithm(), SimMachine(2))
        assert app.sums == app.expected_sums()
        assert result.metrics["tasks_created"] == 6

    def test_unstable_safe_test_filters(self):
        app = ChainCounter(cells=4, steps=2)

        def safe_test(task, view):
            return task.item[1] % 2 == 0 or task.priority == view.min_priority

        algorithm = app.algorithm(
            properties=AlgorithmProperties(
                monotonic=True, structure_based_rw_sets=True
            ),
            safe_source_test=safe_test,
        )
        run_ikdg(algorithm, SimMachine(4))
        assert app.sums == app.expected_sums()

    def test_liveness_violation(self):
        app = ChainCounter(cells=2, steps=1)
        algorithm = app.algorithm(
            properties=AlgorithmProperties(monotonic=True),
            safe_source_test=lambda task, view: False,
        )
        with pytest.raises(LivenessViolation):
            run_ikdg(algorithm, SimMachine(2))

    def test_read_read_sharing_executes_in_one_round(self):
        """Pure readers of one location must not serialize."""
        done = []
        algorithm = OrderedAlgorithm(
            name="readers",
            initial_items=list(range(8)),
            priority=lambda x: x,
            visit_rw_sets=lambda item, ctx: ctx.read("shared"),
            apply_update=lambda item, ctx: done.append(item),
            properties=AlgorithmProperties(stable_source=True, no_new_tasks=True),
        )
        result = run_ikdg(algorithm, SimMachine(8))
        assert len(done) == 8
        assert result.rounds == 1

    def test_writer_blocks_later_readers(self):
        order = []

        def visit(item, ctx):
            if item == 0:
                ctx.write("shared")
            else:
                ctx.read("shared")

        algorithm = OrderedAlgorithm(
            name="write-then-read",
            initial_items=[0, 1, 2],
            priority=lambda x: x,
            visit_rw_sets=visit,
            apply_update=lambda item, ctx: order.append(item),
            properties=AlgorithmProperties(stable_source=True, no_new_tasks=True),
        )
        run_ikdg(algorithm, SimMachine(4))
        assert order[0] == 0

    def test_earlier_reader_blocks_writer(self):
        order = []

        def visit(item, ctx):
            if item == 2:
                ctx.write("shared")
            else:
                ctx.read("shared")

        algorithm = OrderedAlgorithm(
            name="read-then-write",
            initial_items=[0, 1, 2],
            priority=lambda x: x,
            visit_rw_sets=visit,
            apply_update=lambda item, ctx: order.append(item),
            properties=AlgorithmProperties(stable_source=True, no_new_tasks=True),
        )
        run_ikdg(algorithm, SimMachine(4))
        assert order[-1] == 2

    def test_level_windows(self):
        app = ChainCounter(cells=4, steps=3)
        algorithm = app.algorithm(level_of=lambda item: item[0])
        result = run_ikdg(algorithm, SimMachine(4), level_windows=True)
        assert app.sums == app.expected_sums()
        # One window per chain step.
        assert result.rounds == 3

    def test_level_windows_drain_levels_in_order(self):
        """BucketedWorklist must hand out whole levels, earliest first.

        Children land one level above their parents while same-level work
        is still pending; the commit history must still be grouped by level
        — no task of level k+1 may run before level k is fully drained.
        """
        app = ChainCounter(cells=3, steps=4)
        algorithm = app.algorithm(level_of=lambda item: item[0])
        result = run_ikdg(algorithm, SimMachine(2), level_windows=True)
        steps = [step for step, _cell in app.history]
        assert steps == sorted(steps)
        assert result.rounds == 4
        assert app.sums == app.expected_sums()

    def test_empty_window_raises_liveness_violation(self):
        """A window policy that yields no window must fail diagnosably."""
        app = ChainCounter(cells=2, steps=1)
        policy = AdaptiveWindow()
        policy.first_size = lambda num_threads: 0
        with pytest.raises(LivenessViolation, match="empty window"):
            run_ikdg(app.algorithm(), SimMachine(2), window_policy=policy)

    def test_metrics_reported(self):
        app = ChainCounter(cells=2, steps=2)
        result = run_ikdg(app.algorithm(), SimMachine(2))
        assert result.metrics["tasks_created"] == 4
        assert result.metrics["final_window_size"] >= 1
        assert result.metrics["mean_round_size"] > 0
