"""Tests for the empirical property verifier — and CI-level verification
that every bundled application's declared properties hold on a sample."""

import pytest

from repro import AlgorithmProperties
from repro.core import OrderedAlgorithm
from repro.core.verify import verify_properties
from repro.apps import APPS

from .helpers import TINY_STATES, ChainCounter


class TestVerifier:
    def test_honest_algorithm_is_consistent(self):
        report = verify_properties(ChainCounter().algorithm())
        assert report.consistent
        assert report.violations() == {}

    def test_detects_non_monotonic_children(self):
        def body(item, ctx):
            if item == 5:
                ctx.push(1)

        algorithm = OrderedAlgorithm(
            name="back-in-time",
            initial_items=[5],
            priority=lambda x: x,
            visit_rw_sets=lambda item, ctx: ctx.write("c"),
            apply_update=body,
            properties=AlgorithmProperties(stable_source=True, monotonic=True),
        )
        report = verify_properties(algorithm)
        assert report.monotonic
        assert not report.consistent

    def test_detects_false_no_new_tasks(self):
        def body(item, ctx):
            if item == 0:
                ctx.push(1)

        algorithm = OrderedAlgorithm(
            name="secret-spawner",
            initial_items=[0],
            priority=lambda x: x,
            visit_rw_sets=lambda item, ctx: ctx.write("c"),
            apply_update=body,
            properties=AlgorithmProperties(stable_source=True, no_new_tasks=True),
        )
        assert verify_properties(algorithm).no_new_tasks

    def test_detects_growing_rw_sets(self):
        # Executing task 0 flips a switch that grows task 1's rw-set.
        state = {"grown": False}

        def visit(item, ctx):
            ctx.write(("c", item))
            if item == 1 and state["grown"]:
                ctx.write(("c", 99))

        def body(item, ctx):
            if item == 0:
                state["grown"] = True

        algorithm = OrderedAlgorithm(
            name="grower",
            initial_items=[0, 1],
            priority=lambda x: x,
            visit_rw_sets=visit,
            apply_update=body,
            properties=AlgorithmProperties(
                stable_source=True, non_increasing_rw_sets=True,
            ),
        )
        assert verify_properties(algorithm).non_increasing_rw_sets

    def test_detects_state_dependent_nonsubset_rw(self):
        # Child rw is neither a subset of the parent's nor state-independent.
        state = {"flip": False}

        def visit(item, ctx):
            if item == "child" and state["flip"]:
                ctx.write("elsewhere")
            else:
                ctx.write(("c", item))

        def body(item, ctx):
            if item == "root":
                ctx.push("child")
            if item == "bystander":
                state["flip"] = True

        algorithm = OrderedAlgorithm(
            name="shapeshifter",
            initial_items=["root", "bystander"],
            priority=lambda x: {"root": 0, "bystander": 1, "child": 2}[x],
            visit_rw_sets=visit,
            apply_update=body,
            properties=AlgorithmProperties(
                stable_source=True, structure_based_rw_sets=True,
            ),
        )
        assert verify_properties(algorithm).structure_based_rw_sets

    def _growing_rw_algorithm(self, bystanders: int) -> OrderedAlgorithm:
        """Task 0's execution grows task 1's rw-set; ``bystanders`` extra
        independent tasks pad the pending set."""
        state = {"grown": False}

        def visit(item, ctx):
            ctx.write(("c", item))
            if item == 1 and state["grown"]:
                ctx.write(("c", 99))

        def body(item, ctx):
            if item == 0:
                state["grown"] = True

        return OrderedAlgorithm(
            name="grower",
            initial_items=list(range(2 + bystanders)),
            priority=lambda x: x,
            visit_rw_sets=visit,
            apply_update=body,
            properties=AlgorithmProperties(
                stable_source=True, non_increasing_rw_sets=True,
            ),
        )

    def test_rw_watch_runs_below_pending_cap(self):
        # 2 + 60 initial tasks: 61 pending when task 0 executes — watched.
        report = verify_properties(self._growing_rw_algorithm(60), max_tasks=2)
        assert report.non_increasing_rw_sets

    def test_rw_watch_capped_above_64_pending(self):
        # 2 + 70 initial tasks: 71 pending when task 0 executes — the
        # verifier caps the O(pending²) snapshotting at 64 pending tasks,
        # so the same growth goes unobserved (a falsifier, not a prover).
        report = verify_properties(self._growing_rw_algorithm(70), max_tasks=2)
        assert not report.non_increasing_rw_sets
        assert report.consistent

    def test_state_independent_nonsubset_child_rw_accepted(self):
        # Definition 4, clause (i): the child's rw-set is *not* covered by
        # its parent's, but it is state-independent — recorded at creation
        # and unchanged at execution, so the declaration stands.
        def visit(item, ctx):
            ctx.write(("c", item))

        def body(item, ctx):
            if item == "root":
                ctx.push("child")

        algorithm = OrderedAlgorithm(
            name="clause-i",
            initial_items=["root"],
            priority=lambda x: {"root": 0, "child": 1}[x],
            visit_rw_sets=visit,
            apply_update=body,
            properties=AlgorithmProperties(
                stable_source=True, structure_based_rw_sets=True,
            ),
        )
        report = verify_properties(algorithm)
        assert report.consistent, report.violations()

    def test_detects_unstable_source(self):
        # Item 10 pushes -1, which precedes the already-executed 0 and
        # conflicts with it: 0 was never a safe source (Definition 1).
        def body(item, ctx):
            if item == 10:
                ctx.push(-1)

        algorithm = OrderedAlgorithm(
            name="retroactive",
            initial_items=[0, 10],
            priority=lambda x: x,
            visit_rw_sets=lambda item, ctx: ctx.write("c"),
            apply_update=body,
            properties=AlgorithmProperties(stable_source=True),
        )
        report = verify_properties(algorithm)
        assert report.stable_source
        assert not report.consistent

    def test_stable_source_accepts_forward_conflicts(self):
        # Children conflict but never precede an executed task.
        def body(item, ctx):
            if item < 3:
                ctx.push(item + 1)

        algorithm = OrderedAlgorithm(
            name="forward-chain",
            initial_items=[0],
            priority=lambda x: x,
            visit_rw_sets=lambda item, ctx: ctx.write("c"),
            apply_update=body,
            properties=AlgorithmProperties(stable_source=True),
        )
        assert verify_properties(algorithm).consistent

    def test_detects_nonlocal_safe_source_test(self):
        # The test's answer flips between the global view and a view
        # reduced to the probed task itself.
        algorithm = OrderedAlgorithm(
            name="view-reader",
            initial_items=list(range(6)),
            priority=lambda x: x,
            visit_rw_sets=lambda item, ctx: ctx.write(("c", item)),
            apply_update=lambda item, ctx: ctx.access(("c", item)),
            safe_source_test=lambda task, view: task.priority <= view.min_priority + 1,
            properties=AlgorithmProperties(local_safe_source_test=True),
        )
        report = verify_properties(algorithm)
        assert report.local_safe_source_test
        assert not report.consistent

    def test_local_safe_source_test_accepts_task_local_test(self):
        algorithm = OrderedAlgorithm(
            name="task-local",
            initial_items=list(range(6)),
            priority=lambda x: x,
            visit_rw_sets=lambda item, ctx: ctx.write(("c", item)),
            apply_update=lambda item, ctx: ctx.access(("c", item)),
            safe_source_test=lambda task, view: task.item >= 0,
            properties=AlgorithmProperties(local_safe_source_test=True),
        )
        assert verify_properties(algorithm).consistent

    def test_properties_override_probes_undeclared_flags(self):
        # ChainCounter pushes on every step; it never declares no_new_tasks,
        # but `repro infer --dynamic` probes statically-unknown flags by
        # passing an override — the falsifier must then refute the flag.
        app = ChainCounter()
        probe = AlgorithmProperties(stable_source=True, no_new_tasks=True)
        report = verify_properties(app.algorithm(), properties=probe)
        assert report.no_new_tasks

    def test_sample_limit_respected(self):
        app = ChainCounter(cells=2, steps=100)
        verify_properties(app.algorithm(), max_tasks=10)
        # Only ~10 of 200 chain steps ran.
        assert sum(app.sums) < 2 * 100 * 101 // 2


@pytest.mark.parametrize("app", sorted(TINY_STATES))
def test_bundled_apps_declarations_hold(app):
    """Every shipped application's declared properties survive sampling."""
    algorithm = APPS[app].algorithm(TINY_STATES[app]())
    report = verify_properties(algorithm, max_tasks=400)
    assert report.consistent, report.violations()
