"""Static linter tests: fixtures fire their rule at the anchored line,
shipped apps lint clean, and the CLI emits the machine-readable report."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    RULE_CAUTIOUSNESS,
    RULE_MONOTONIC,
    RULE_NO_ADDS,
    RULE_STRUCTURE_BASED,
    RULE_UNUSED_PROPERTY,
    RULES,
    lint_app,
    lint_file,
)
from repro.apps import APPS
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

#: fixture stem -> the rule its *_bad variant must fire (and nothing else).
FIXTURE_RULES = {
    "cautious": RULE_CAUTIOUSNESS,
    "noadds": RULE_NO_ADDS,
    "monotonic": RULE_MONOTONIC,
    # Blind-spot regressions: max(parent, ...) clamps and tuple-prefix
    # copies are provably non-decreasing (good variants lint clean despite
    # containing subtractions); a clamp missing the parent arm and a
    # decremented priority prefix still fire.
    "monotonic_max": RULE_MONOTONIC,
    "monotonic_prefix": RULE_MONOTONIC,
    "structure": RULE_STRUCTURE_BASED,
    "unused": RULE_UNUSED_PROPERTY,
}


def anchor_line(path: Path) -> int:
    """1-based line of the fixture's ``# LINT-ANCHOR`` marker."""
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if "LINT-ANCHOR" in line:
            return lineno
    raise AssertionError(f"{path} has no LINT-ANCHOR marker")


def test_every_rule_has_a_fixture_pair():
    assert set(FIXTURE_RULES.values()) == set(RULES)
    for stem in FIXTURE_RULES:
        assert (FIXTURES / f"{stem}_good.py").is_file()
        assert (FIXTURES / f"{stem}_bad.py").is_file()


@pytest.mark.parametrize("stem", sorted(FIXTURE_RULES))
def test_bad_fixture_fires_its_rule_at_the_anchor(stem):
    path = FIXTURES / f"{stem}_bad.py"
    findings = lint_file(path)
    assert len(findings) == 1, [str(f) for f in findings]
    finding = findings[0]
    assert finding.rule == FIXTURE_RULES[stem]
    assert finding.line == anchor_line(path)
    assert finding.file == str(path)


@pytest.mark.parametrize("stem", sorted(FIXTURE_RULES))
def test_good_fixture_is_clean(stem):
    assert lint_file(FIXTURES / f"{stem}_good.py") == []


@pytest.mark.parametrize("stem", ["monotonic_max", "monotonic_prefix"])
def test_monotonic_good_fixture_defeats_the_heuristic(stem):
    """The good variants contain subtractions the syntactic heuristic alone
    would flag; only the symbolic priority comparison exonerates them."""
    import ast

    from repro.analysis.linter import (
        _BodyScan,
        _decreasing_subexpr,
        _extract_units,
        _item_derived_names,
    )

    path = FIXTURES / f"{stem}_good.py"
    (unit,) = _extract_units(ast.parse(path.read_text()))
    scan = _BodyScan(unit.update_fn, str(path))
    scan.scan()
    derived, rhs = _item_derived_names(unit.update_fn)
    hits = [
        _decreasing_subexpr(arg, derived, rhs)
        for push in scan.pushes
        for arg in push.args
    ]
    assert any(hit is not None for hit in hits)
    assert lint_file(path) == []


def test_monotonic_provable_decrease_fires_without_heuristic():
    """A conclusive child < parent comparison anchors on the push itself."""
    findings = lint_file(FIXTURES / "monotonic_prefix_bad.py")
    assert len(findings) == 1
    assert "provably lower" in findings[0].message


@pytest.mark.parametrize("app", sorted(APPS))
def test_shipped_apps_lint_clean(app):
    assert lint_app(app) == [], [str(f) for f in lint_app(app)]


def test_finding_to_dict_roundtrip():
    findings = lint_file(FIXTURES / "cautious_bad.py")
    payload = findings[0].to_dict()
    assert payload["rule"] == RULE_CAUTIOUSNESS
    assert set(payload) == {"rule", "message", "file", "line", "col"}


def test_cli_lint_all_apps_clean(capsys):
    assert main(["lint", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["schema"] == "repro-lint/v1"
    assert report["ok"] is True
    assert set(report["targets"]) == set(APPS)
    for entry in report["targets"].values():
        assert entry["findings"] == []


def test_cli_lint_fixture_fails_with_anchored_finding(capsys):
    path = FIXTURES / "noadds_bad.py"
    assert main(["lint", "--path", str(path), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is False
    (finding,) = report["targets"][str(path)]["findings"]
    assert finding["rule"] == RULE_NO_ADDS
    assert finding["line"] == anchor_line(path)


def test_cli_lint_rules_table(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


def test_cli_lint_dynamic_uses_shared_findings_schema(capsys):
    assert main(["lint", "lu", "--dynamic", "--max-tasks", "50", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    dynamic = report["targets"]["lu"]["dynamic"]
    assert dynamic["schema"] == "repro-findings/v1"
    assert dynamic["consistent"] is True
    assert dynamic["findings"] == []


def test_property_report_to_json_carries_violations():
    from repro.core.verify import PropertyReport

    report = PropertyReport(monotonic=["child precedes parent"])
    payload = report.to_json()
    assert payload["schema"] == "repro-findings/v1"
    assert payload["consistent"] is False
    assert payload["findings"] == [
        {"rule": "dynamic-monotonic", "message": "child precedes parent"}
    ]
    assert PropertyReport().to_json()["consistent"] is True
