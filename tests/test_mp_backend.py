"""The mp execution backend: bit-identity, lifecycle, fault injection.

Four layers of defense for ``backend="mp"``:

* kernel-level: :meth:`MPMarkBackend.mark_round` against
  :func:`pooled_mark_round` on the same pool, under add/remove churn,
  at 1/2/4 workers with every round forced onto the workers;
* executor-level: ``run_ikdg``/``run_level_by_level`` with real mp rounds
  (int-priority synthetic workloads) bit-identical to inline runs, and
  the validated no-op/refusal paths (kdg-rna, dict engine, speculation);
* lifecycle: lazy spawn, context manager, idempotent close, use-after-close;
* fault injection: a SIGKILLed worker must surface as a structured
  :class:`WorkerDied` — promptly, with no hang — and teardown must always
  unlink every shared-memory segment (no leaks even on the failure path).
"""

from __future__ import annotations

import os
import random
import signal
import time

import pytest

from repro import SimMachine
from repro.core.flat import LocationInterner, MarkBuffers
from repro.core.flat.pool import pooled_mark_round
from repro.core.flat.shm import attach_array
from repro.core.task import Task
from repro.runtime import run_ikdg, run_kdg_rna, run_level_by_level
from repro.runtime.mp_backend import (
    MPMarkBackend,
    WorkerDied,
    resolve_backend,
    shard_bounds,
)


def _make_tasks(rng, interner, w, *, numeric=True, max_loc=40):
    tasks = []
    for tid in range(w):
        pr = rng.randrange(6)
        task = Task(None, pr if numeric else (pr, tid), tid)
        n = rng.randrange(0, 6)
        rw = tuple(dict.fromkeys(("loc", rng.randrange(max_loc)) for _ in range(n)))
        task.rw_set = rw
        task.write_set = frozenset(loc for loc in rw if rng.random() < 0.5)
        interner.task_lists(task)
        tasks.append(task)
    return tasks


def _chain_workload(n: int, chains: int = 12):
    """Int-priority workload with long conflict chains: windows carry many
    tasks across rounds, so pooled marking (and mp dispatch) engages."""
    from repro.core.algorithm import OrderedAlgorithm
    from repro.core.properties import AlgorithmProperties

    def visit(item, ctx):
        ctx.write(("lock", item % chains))
        ctx.write(("cell", item))
        ctx.read(("ro", item))

    return OrderedAlgorithm(
        name="mp-test-chains",
        initial_items=list(range(n)),
        priority=lambda x: x,
        visit_rw_sets=visit,
        apply_update=lambda item, ctx: ctx.work(4.0),
        properties=AlgorithmProperties(
            stable_source=True,
            monotonic=True,
            no_new_tasks=True,
            structure_based_rw_sets=True,
        ),
    )


class TestKernelEquality:
    """backend.mark_round == pooled_mark_round, bit for bit, under churn."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_pooled_under_churn(self, workers):
        rng = random.Random(workers)
        interner = LocationInterner()
        with MPMarkBackend(workers=workers, threshold=0) as backend:
            pool = backend.new_pool()
            live: list[tuple[Task, int]] = []
            for _ in range(12):
                for task in _make_tasks(rng, interner, rng.randrange(1, 12)):
                    live.append((task, pool.add(task, task.flat_cache)))
                rng.shuffle(live)
                for _ in range(rng.randrange(0, len(live))):
                    _, slot = live.pop()
                    pool.remove(slot)
                if not live:
                    continue
                tasks = [t for t, _ in live]
                slots = [s for _, s in live]
                got = backend.mark_round(
                    pool, tasks, slots, MarkBuffers(), 3.0, 7.0
                )
                want = pooled_mark_round(
                    pool, tasks, slots, MarkBuffers(), 3.0, 7.0
                )
                assert got == want
            assert backend.mp_rounds > 0

    def test_non_numeric_pool_falls_back_inline(self):
        # Tuple priorities rank-encode (they no longer demote), so a
        # genuinely unencodable NaN priority stands in for "non-numeric".
        rng = random.Random(7)
        interner = LocationInterner()
        with MPMarkBackend(workers=2, threshold=0) as backend:
            pool = backend.new_pool()
            tasks = _make_tasks(rng, interner, 8)
            poison = Task(None, float("nan"), len(tasks))
            poison.rw_set = (("loc", 0),)
            poison.write_set = frozenset()
            interner.task_lists(poison)
            tasks.append(poison)
            slots = [pool.add(t, t.flat_cache) for t in tasks]
            assert not pool.numeric
            got = backend.mark_round(pool, tasks, slots, MarkBuffers(), 3.0, 7.0)
            want = pooled_mark_round(pool, tasks, slots, MarkBuffers(), 3.0, 7.0)
            assert got == want
            assert backend.mp_rounds == 0
            assert backend.fallback_rounds == 1
            # Lazy start: a run that never crosses the threshold spawns
            # no worker processes at all.
            assert not backend._procs

    def test_threshold_gates_dispatch(self):
        rng = random.Random(11)
        interner = LocationInterner()
        with MPMarkBackend(workers=2, threshold=10**9) as backend:
            pool = backend.new_pool()
            tasks = _make_tasks(rng, interner, 8)
            slots = [pool.add(t, t.flat_cache) for t in tasks]
            backend.mark_round(pool, tasks, slots, MarkBuffers(), 3.0, 7.0)
            assert backend.mp_rounds == 0
            assert backend.fallback_rounds == 1

    def test_foreign_pool_rejected(self):
        from repro.core.flat.pool import RoundPool

        with MPMarkBackend(workers=1, threshold=0) as backend:
            foreign = RoundPool()  # private allocator, not the arena
            with pytest.raises(ValueError, match="new_pool"):
                backend.mark_round(foreign, [], [], MarkBuffers(), 3.0, 7.0)

    def test_shard_bounds_cover_and_partition(self):
        for total in (0, 1, 7, 64, 1000):
            for workers in (1, 2, 3, 4, 7):
                bounds = shard_bounds(total, workers)
                assert bounds[0][0] == 0 and bounds[-1][1] == total
                for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                    assert hi == lo


class TestExecutorLevel:
    """Real mp rounds inside real executors, bit-identical to inline."""

    def _run(self, executor, backend):
        machine = SimMachine(4)
        if executor == "ikdg":
            result = run_ikdg(
                _chain_workload(400), machine, engine="flat", backend=backend
            )
        else:
            result = run_level_by_level(
                _chain_workload(400), machine, engine="flat", backend=backend
            )
        return result

    @pytest.mark.parametrize("executor", ["ikdg", "level-by-level"])
    def test_mp_bit_identical_with_real_rounds(self, executor):
        inline = self._run(executor, None)
        with MPMarkBackend(workers=2, threshold=0) as backend:
            mp_result = self._run(executor, backend)
            assert backend.mp_rounds > 0
        assert mp_result.executed == inline.executed
        assert mp_result.rounds == inline.rounds
        assert mp_result.elapsed_cycles == inline.elapsed_cycles
        assert mp_result.breakdown() == inline.breakdown()
        # The run reports its wall-clock accounting through the metrics.
        assert mp_result.metrics["mp"]["mp_rounds"] == backend.mp_rounds
        assert mp_result.metrics["mp_workers"] == 2
        assert "mp" not in inline.metrics

    def test_owned_backend_string_form_closes_itself(self):
        result = run_ikdg(
            _chain_workload(200), SimMachine(4), engine="flat",
            backend="mp", workers=2,
        )
        inline = run_ikdg(_chain_workload(200), SimMachine(4), engine="flat")
        assert result.elapsed_cycles == inline.elapsed_cycles
        assert result.metrics["mp_workers"] == 2

    def test_kdg_rna_accepts_mp_as_validated_noop(self):
        # The incremental-graph executor has no bulk mark phase; mp must be
        # accepted (the CLI offers it) and change nothing.
        inline = run_kdg_rna(_chain_workload(200), SimMachine(4), engine="flat")
        mp_result = run_kdg_rna(
            _chain_workload(200), SimMachine(4), engine="flat",
            backend="mp", workers=2,
        )
        assert mp_result.elapsed_cycles == inline.elapsed_cycles
        assert mp_result.executed == inline.executed

    def test_dict_engine_refuses_mp(self):
        with pytest.raises(ValueError, match="requires engine='flat'"):
            run_ikdg(
                _chain_workload(50), SimMachine(4), engine="dict", backend="mp"
            )

    def test_speculation_refuses_mp(self):
        from repro.runtime import run_speculation

        with pytest.raises(ValueError, match="speculation"):
            run_speculation(
                _chain_workload(50), SimMachine(4), backend="mp"
            )

    def test_resolve_backend_contract(self):
        assert resolve_backend(None, "dict", 2, "x") == (None, False)
        assert resolve_backend("inline", "dict", 2, "x") == (None, False)
        backend, owns = resolve_backend("mp", "flat", 3, "x")
        try:
            assert owns and backend.workers == 3
        finally:
            backend.close()
        shared = MPMarkBackend(workers=1)
        try:
            assert resolve_backend(shared, "flat", 2, "x") == (shared, False)
            with pytest.raises(ValueError, match="requires engine='flat'"):
                resolve_backend(shared, "dict", 2, "x")
        finally:
            shared.close()
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("threads", "flat", 2, "x")


def _spin_up(backend):
    """One real round: starts the workers and allocates every segment."""
    rng = random.Random(3)
    interner = LocationInterner()
    pool = backend.new_pool()
    tasks = _make_tasks(rng, interner, 16)
    slots = [pool.add(t, t.flat_cache) for t in tasks]
    backend.mark_round(pool, tasks, slots, MarkBuffers(), 3.0, 7.0)
    return pool, tasks, slots


def _assert_all_unlinked(names):
    for name, dtype, length in names:
        with pytest.raises(FileNotFoundError):
            attach_array(name, dtype, length)


class TestLifecycleAndFaults:
    def test_close_unlinks_every_segment(self):
        backend = MPMarkBackend(workers=2, threshold=0)
        _spin_up(backend)
        layout = backend._arena.layout()
        assert layout  # the round really allocated shared segments
        backend.close()
        backend.close()  # idempotent
        _assert_all_unlinked(layout.values())

    def test_context_manager_unlinks_on_exception(self):
        layout = {}
        with pytest.raises(RuntimeError, match="boom"):
            with MPMarkBackend(workers=2, threshold=0) as backend:
                _spin_up(backend)
                layout = backend._arena.layout()
                raise RuntimeError("boom")
        _assert_all_unlinked(layout.values())

    def test_use_after_close_raises(self):
        backend = MPMarkBackend(workers=1, threshold=0)
        pool, tasks, slots = _spin_up(backend)
        backend.close()
        with pytest.raises(ValueError, match="closed"):
            backend.new_pool()
        with pytest.raises(WorkerDied):
            backend.mark_round(pool, tasks, slots, MarkBuffers(), 3.0, 7.0)

    def test_killed_worker_raises_structured_error_without_hanging(self):
        backend = MPMarkBackend(workers=2, threshold=0, barrier_timeout=30.0)
        try:
            pool, tasks, slots = _spin_up(backend)
            layout = backend._arena.layout()
            victim = backend._procs[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10.0)
            start = time.monotonic()
            with pytest.raises(WorkerDied) as excinfo:
                backend.mark_round(pool, tasks, slots, MarkBuffers(), 3.0, 7.0)
            # Promptly — via the liveness check, not the deadlock deadline.
            assert time.monotonic() - start < 20.0
            err = excinfo.value
            assert err.worker == 0
            assert err.round_no == 2
            assert err.phase is not None
            # The failure path tears everything down: no leaked segments,
            # no hung workers, and the backend refuses further rounds.
            _assert_all_unlinked(layout.values())
            for proc in backend._procs:
                assert not proc.is_alive()
            with pytest.raises(WorkerDied):
                backend.mark_round(pool, tasks, slots, MarkBuffers(), 3.0, 7.0)
        finally:
            backend.close()

    def test_wall_stats_survive_close(self):
        backend = MPMarkBackend(workers=2, threshold=0)
        _spin_up(backend)
        stats = backend.wall_stats()
        assert stats.mp_rounds == 1
        assert sum(stats.rounds) == 2  # both workers saw the round
        summary = stats.summary()
        assert summary["workers"] == 2
        assert len(summary["per_worker"]) == 2
        backend.close()
        # After close the shared array is gone; stats still summarize.
        post = backend.wall_stats()
        assert post.mp_rounds == 1
        assert sum(post.rounds) == 0
