"""Unit and property tests for the task graph G."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Task, TaskGraph


def tasks(n):
    return [Task(i, i, i) for i in range(n)]


class TestTaskGraph:
    def test_empty(self):
        g = TaskGraph()
        assert len(g) == 0
        assert not g.notEmpty()
        assert g.sources() == []

    def test_add_node_becomes_source(self):
        g = TaskGraph()
        (t,) = tasks(1)
        g.add_node(t)
        assert g.sources() == [t]
        assert g.is_source(t)
        assert t in g

    def test_duplicate_node_rejected(self):
        g = TaskGraph()
        (t,) = tasks(1)
        g.add_node(t)
        with pytest.raises(ValueError):
            g.add_node(t)

    def test_edge_removes_target_from_sources(self):
        g = TaskGraph()
        a, b = tasks(2)
        g.add_node(a)
        g.add_node(b)
        g.add_edge(a, b)
        assert g.sources() == [a]
        assert g.in_degree(b) == 1

    def test_edge_idempotent(self):
        g = TaskGraph()
        a, b = tasks(2)
        g.add_node(a)
        g.add_node(b)
        assert g.add_edge(a, b) == 1
        assert g.add_edge(a, b) == 0
        assert g.in_degree(b) == 1

    def test_self_edge_rejected(self):
        g = TaskGraph()
        (a,) = tasks(1)
        g.add_node(a)
        with pytest.raises(ValueError):
            g.add_edge(a, a)

    def test_edge_with_unknown_source_names_it(self):
        g = TaskGraph()
        a, b = tasks(2)
        g.add_node(b)
        with pytest.raises(ValueError, match="source task not in graph"):
            g.add_edge(a, b)

    def test_edge_with_unknown_destination_names_it(self):
        g = TaskGraph()
        a, b = tasks(2)
        g.add_node(a)
        with pytest.raises(ValueError, match="destination task not in graph"):
            g.add_edge(a, b)

    def test_in_degree_of_unknown_task_raises_value_error(self):
        g = TaskGraph()
        (a,) = tasks(1)
        with pytest.raises(ValueError, match="task not in graph"):
            g.in_degree(a)

    def test_neighbors_of_unknown_task_raises_value_error(self):
        g = TaskGraph()
        (a,) = tasks(1)
        with pytest.raises(ValueError, match="task not in graph"):
            g.neighbors(a)

    def test_remove_node_exposes_successors(self):
        g = TaskGraph()
        a, b, c = tasks(3)
        for t in (a, b, c):
            g.add_node(t)
        g.add_edge(a, b)
        g.add_edge(a, c)
        neighbors, _ = g.remove_node(a)
        assert set(neighbors) == {b, c}
        assert set(g.sources()) == {b, c}

    def test_remove_node_with_shared_successor(self):
        g = TaskGraph()
        a, b, c = tasks(3)
        for t in (a, b, c):
            g.add_node(t)
        g.add_edge(a, c)
        g.add_edge(b, c)
        g.remove_node(a)
        assert not g.is_source(c)
        g.remove_node(b)
        assert g.is_source(c)

    def test_neighbors_union_of_directions(self):
        g = TaskGraph()
        a, b, c = tasks(3)
        for t in (a, b, c):
            g.add_node(t)
        g.add_edge(a, b)
        g.add_edge(b, c)
        assert set(g.neighbors(b)) == {a, c}
        assert g.predecessors(b) == [a]
        assert g.successors(b) == [c]

    def test_check_acyclic_true_for_dag(self):
        g = TaskGraph()
        ts = tasks(4)
        for t in ts:
            g.add_node(t)
        g.add_edge(ts[0], ts[1])
        g.add_edge(ts[1], ts[2])
        g.add_edge(ts[0], ts[3])
        assert g.check_acyclic()

    def test_check_acyclic_false_for_cycle(self):
        g = TaskGraph()
        a, b = tasks(2)
        g.add_node(a)
        g.add_node(b)
        g.add_edge(a, b)
        g.add_edge(b, a)  # the graph type allows it; the checker catches it
        assert not g.check_acyclic()

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=40))
    def test_key_ordered_edges_always_acyclic(self, pairs):
        """Wiring every edge from earlier key to later key keeps G a DAG."""
        g = TaskGraph()
        ts = tasks(10)
        for t in ts:
            g.add_node(t)
        for i, j in pairs:
            if i == j:
                continue
            a, b = (ts[i], ts[j]) if ts[i].key() < ts[j].key() else (ts[j], ts[i])
            g.add_edge(a, b)
        assert g.check_acyclic()

    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=30))
    def test_sources_match_in_degree(self, pairs):
        g = TaskGraph()
        ts = tasks(8)
        for t in ts:
            g.add_node(t)
        for i, j in pairs:
            if i < j:
                g.add_edge(ts[i], ts[j])
        expected = {t for t in ts if g.in_degree(t) == 0}
        assert set(g.sources()) == expected
